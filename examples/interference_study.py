#!/usr/bin/env python3
"""Memory-interference characterization across workload envelopes.

Reproduces (in miniature) the interference study that motivates the
paper: how much does each class of critical task suffer, per class of
co-running accelerator traffic?  Victims differ in memory-level
parallelism and locality; aggressors differ in burstiness and
row-buffer behaviour.

Run:  python examples/interference_study.py
"""

import dataclasses

from repro import run_experiment, slowdown, zcu102
from repro.analysis.sweep import format_table

VICTIMS = ("latency_probe", "pointer_chase", "stencil")
AGGRESSORS = ("stream_read", "stream_write", "memcpy", "fft_stride",
              "matmul_stream")
HOGS = 4
WORK = 2_000


def runtime_for(cpu_workload, accel_workload, num_accels):
    config = zcu102(
        num_accels=num_accels,
        cpu_workload=cpu_workload,
        accel_workload=accel_workload,
        cpu_work=WORK,
    )
    return run_experiment(config).critical_runtime()


def main():
    rows = []
    for victim in VICTIMS:
        solo = runtime_for(victim, "stream_read", 0)
        row = {"victim": victim, "solo_cycles": solo}
        for aggressor in AGGRESSORS:
            loaded = runtime_for(victim, aggressor, HOGS)
            row[aggressor] = round(slowdown(loaded, solo), 2)
        rows.append(row)
    print(format_table(
        rows,
        title=(
            f"Critical-task slowdown under {HOGS} co-running accelerators "
            "(columns = aggressor workload, values = x slower than solo)"
        ),
    ))
    print()
    print("Reading the table:")
    print(" * pointer_chase (MLP=1) suffers most -- every miss meets the")
    print("   full queueing delay, nothing overlaps.")
    print(" * write-heavy and strided aggressors hurt more per byte than")
    print("   clean streaming reads (bus turnarounds, row conflicts).")
    print(" * matmul_stream has a 50% DMA duty cycle, so it interferes")
    print("   roughly half as much as the always-on hogs.")


if __name__ == "__main__":
    main()
