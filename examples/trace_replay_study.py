#!/usr/bin/env python3
"""Trace-driven what-if analysis.

A workflow real deployments use: capture a transaction trace from the
system as it runs today, then replay the *same* traffic under a
candidate regulation scheme to predict the effect before touching the
hardware.

1. Run the unregulated system with tracing on; save the critical
   core's trace.
2. Replay that trace (open-loop, at recorded arrival times) next to
   the same hogs, unregulated -- validating that replay reproduces
   the congestion.
3. Replay it again with the hogs under tightly-coupled regulation --
   the what-if.

Run:  python examples/trace_replay_study.py
"""

import os
import tempfile

from repro import Platform, RegulatorSpec, zcu102
from repro.analysis.sweep import format_table
from repro.soc.experiment import PlatformResult
from repro.traffic.trace import TraceReplayMaster

HOGS = 4
WORK = 2_000


def capture_trace():
    """Step 1: trace the critical core in the congested system."""
    config = zcu102(num_accels=HOGS, cpu_work=WORK)
    config = config.__class__(
        masters=config.masters,
        clock=config.clock,
        interconnect=config.interconnect,
        dram=config.dram,
        seed=config.seed,
        trace_masters=("cpu0",),
    )
    platform = Platform(config)
    platform.run(8_000_000)
    return list(platform.trace)


def replay(records, accel_regulator):
    """Steps 2/3: replay the trace against (un)regulated hogs."""
    config = zcu102(num_accels=HOGS, cpu_work=WORK,
                    accel_regulator=accel_regulator)
    # Drop the synthetic cpu0 master; we drive its port from the trace.
    masters = tuple(m for m in config.masters if m.name != "cpu0")
    platform = Platform(config.with_masters(masters))
    from repro.axi.port import MasterPort, PortConfig

    port = MasterPort(
        platform.sim, PortConfig(name="cpu0_replay", max_outstanding=4)
    )
    platform.interconnect.attach_port(port)
    replayer = TraceReplayMaster(platform.sim, port, records, mode="timed")
    replayer.start()
    platform.run(8_000_000, stop_when_critical_done=False)
    latency = port.stats.sampler("latency")
    return {
        "completed": port.stats.counter("completed").value,
        "lat_mean": latency.mean,
        "lat_p99": float(latency.percentile(99)),
        "finished_at": replayer.finished_at,
    }


def main():
    print(f"Capturing the critical core's trace under {HOGS} hogs ...")
    records = capture_trace()
    print(f"  {len(records)} transactions captured "
          f"(span {records[-1].created - records[0].created:,} cycles)\n")

    with tempfile.TemporaryDirectory() as tmp:
        # Persist + reload, as a real capture/replay pipeline would.
        from repro.sim.trace import TraceRecorder

        path = os.path.join(tmp, "cpu0.csv")
        recorder = TraceRecorder()
        for record in records:
            recorder.record(record)
        recorder.write_csv(path)
        records = TraceRecorder.read_csv(path)
        print(f"Trace persisted to CSV and reloaded ({len(records)} rows).\n")

    rows = []
    baseline = replay(records, None)
    baseline["scenario"] = "replay vs unregulated hogs"
    rows.append(baseline)
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=410
    )
    whatif = replay(records, spec)
    whatif["scenario"] = "replay vs regulated hogs (what-if)"
    rows.append(whatif)
    print(format_table(
        rows,
        columns=["scenario", "completed", "lat_mean", "lat_p99",
                 "finished_at"],
        title="Same traffic, two worlds:",
    ))
    print()
    improvement = baseline["lat_p99"] / max(1.0, whatif["lat_p99"])
    print(f"Predicted p99 improvement from deploying the IP: "
          f"{improvement:.1f}x -- before touching the hardware.")


if __name__ == "__main__":
    main()
