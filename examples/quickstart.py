#!/usr/bin/env python3
"""Quickstart: protect a critical core with the tightly-coupled regulator.

Builds the ZCU102-like platform three times:

1. the critical core alone (the isolation baseline);
2. with four unregulated FPGA DMA hogs (the problem);
3. with the same hogs each held to 10% of the DRAM channel peak by
   the tightly-coupled bandwidth regulator (the paper's fix).

Run:  python examples/quickstart.py
"""

from repro import RegulatorSpec, run_experiment, slowdown, zcu102
from repro.telemetry import MetricsRegistry, use_registry


def describe(tag, result, solo_runtime):
    critical = result.critical()
    print(f"  {tag}:")
    print(f"    critical runtime : {result.critical_runtime():>9,} cycles "
          f"(slowdown {slowdown(result.critical_runtime(), solo_runtime):.2f}x)")
    print(f"    miss latency     : mean {critical.latency_mean:6.1f}  "
          f"p99 {critical.latency_p99:6.0f} cycles")
    hogs = [name for name in result.masters if name.startswith("acc")]
    if hogs:
        total = sum(result.master(h).bandwidth_bytes_per_cycle for h in hogs)
        print(f"    hog bandwidth    : {total:5.2f} B/cycle total "
              f"({result.bandwidth_gbps(hogs[0]):.2f} GB/s each)")
    print(f"    DRAM utilization : {result.dram.utilization:.1%}")
    print()


def main():
    print("=== 1. Critical core alone (isolation baseline) ===")
    solo = run_experiment(zcu102(num_accels=0))
    solo_runtime = solo.critical_runtime()
    describe("solo", solo, solo_runtime)

    print("=== 2. Four unregulated DMA hogs (the problem) ===")
    loaded = run_experiment(zcu102(num_accels=4))
    describe("unregulated", loaded, solo_runtime)

    print("=== 3. Hogs regulated to 10% of peak each, 256-cycle window ===")
    # 10% of the 16 B/cycle channel peak = 1.6 B/cycle; over a
    # 256-cycle window that is a 410-byte budget.
    spec = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256, budget_bytes=410
    )
    # Force the telemetry registry on for this run so the summary
    # below is populated regardless of REPRO_TELEMETRY.
    metrics = MetricsRegistry(enabled=True)
    with use_registry(metrics):
        regulated = run_experiment(zcu102(num_accels=4, accel_regulator=spec))
    describe("tightly-coupled", regulated, solo_runtime)

    print("The regulator bounds each hog to its reservation, so the")
    print("critical core runs near isolation speed while the hogs")
    print("still consume a controlled share of the DRAM bandwidth.")

    print()
    print("=== Telemetry: metrics of the regulated run ===")
    print(metrics.format_summary(limit=20))


if __name__ == "__main__":
    main()
