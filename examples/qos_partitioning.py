#!/usr/bin/env python3
"""QoS partitioning: reserve bandwidth shares for a mixed workload.

Scenario (an ADAS-style SoC): a critical control task on the host
core, a camera-input DMA writing frames, an FFT-style accelerator and
a bulk-copy engine all share the DRAM channel.  The QoS manager
partitions the channel with a policy -- the critical task protected
by construction, the camera pipeline guaranteed 20% (it must never
drop frames), the other accelerators sharing a best-effort 20%.

Run:  python examples/qos_partitioning.py
"""

from repro import (
    MasterSpec,
    Platform,
    PlatformConfig,
    PlatformResult,
    RegulatorSpec,
    proportional_shares,
)
from repro.analysis.sweep import format_table

WINDOW = 256
MB = 1 << 20


def build_config():
    # Every accelerator gets a tightly-coupled regulator; budgets are
    # placeholders that the QoS manager reprograms before the run.
    reg = RegulatorSpec(
        kind="tightly_coupled", window_cycles=WINDOW, budget_bytes=WINDOW
    )
    masters = (
        MasterSpec(
            name="control", workload="compute_mix",
            region_base=0x1000_0000, region_extent=4 * MB,
            work=3_000, max_outstanding=4, critical=True,
        ),
        MasterSpec(
            name="camera", workload="stream_write",
            region_base=0x1040_0000, region_extent=8 * MB,
            regulator=reg,
        ),
        MasterSpec(
            name="fft", workload="fft_stride",
            region_base=0x10C0_0000, region_extent=8 * MB,
            regulator=reg,
        ),
        MasterSpec(
            name="copy", workload="memcpy",
            region_base=0x1140_0000, region_extent=8 * MB,
            regulator=reg,
        ),
    )
    return PlatformConfig(masters=masters)


def main():
    policy = proportional_shares(
        {"camera": 0.20, "fft": 0.10, "copy": 0.10}, name="adas"
    )
    platform = Platform(build_config())
    events = platform.qos_manager.apply_policy(policy)
    print(f"Applied policy {policy.name!r} "
          f"({policy.total_share:.0%} of peak reserved):")
    for event in events:
        print(f"  {event.master:7s} -> {event.budget_bytes:5d} B per "
              f"{WINDOW}-cycle window (live at cycle {event.effective_at})")
    print()

    elapsed = platform.run(4_000_000, stop_when_critical_done=False)
    result = PlatformResult(platform, elapsed)

    peak = platform.config.peak_bytes_per_cycle
    rows = []
    for name in ("control", "camera", "fft", "copy"):
        m = result.master(name)
        share = m.bandwidth_bytes_per_cycle / peak
        reserved = policy.shares.get(name)
        rows.append(
            {
                "master": name,
                "reserved_share": f"{reserved:.0%}" if reserved else "(none)",
                "achieved_share": f"{share:.1%}",
                "bandwidth_GBs": result.bandwidth_gbps(name),
                "p99_latency": m.latency_p99,
            }
        )
    print(format_table(rows, title=f"After {elapsed:,} cycles:"))
    print()
    print(f"DRAM utilization {result.dram.utilization:.1%}; "
          f"critical task finished at cycle "
          f"{result.master('control').finished_at:,}.")
    print("Each regulated actor achieves (at most) its reservation; the")
    print("unreserved headroom keeps the critical task near isolation.")


if __name__ == "__main__":
    main()
