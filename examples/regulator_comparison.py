#!/usr/bin/env python3
"""One-stop comparison of every regulation scheme in the library.

Runs the standard 1-critical-core / 4-hog scenario under each scheme
at (where applicable) the same 10%-of-peak per-hog reservation, and
prints a single summary table: victim protection, hog throughput,
DRAM utilization, and the mechanism cost each scheme pays.

Run:  python examples/regulator_comparison.py
"""

from repro import RegulatorSpec, run_experiment, slowdown, zcu102
from repro.analysis.calibration import calibrate
from repro.analysis.sweep import format_table

HOGS = 4
SHARE = 0.10
WINDOW = 256
CPU_WORK = 3_000


def scheme_specs(calibration):
    budget = calibration.budget_for_fraction(SHARE, WINDOW)
    mg_period = 100_000
    mg_budget = calibration.budget_for_fraction(SHARE, mg_period)
    return [
        ("unregulated", None, {}),
        ("static_qos", RegulatorSpec(kind="static_qos", qos=0),
         dict(arbiter="qos", scheduler="frfcfs_qos",
              cpu_regulator=RegulatorSpec(kind="static_qos", qos=15))),
        ("memguard", RegulatorSpec(
            kind="memguard", period_cycles=mg_period, budget_bytes=mg_budget
        ), {}),
        ("memguard+reclaim", RegulatorSpec(
            kind="memguard", period_cycles=mg_period, budget_bytes=mg_budget,
            reclaim=True,
        ), {}),
        ("tdma", RegulatorSpec(
            kind="tdma", window_cycles=WINDOW, tdma_slots=HOGS * 2
        ), {}),
        ("prem", RegulatorSpec(kind="prem", prem_hold_cycles=1024), {}),
        ("tightly_coupled", RegulatorSpec(
            kind="tightly_coupled", window_cycles=WINDOW, budget_bytes=budget
        ), {}),
        ("tc+work_conserving", RegulatorSpec(
            kind="tightly_coupled", window_cycles=WINDOW, budget_bytes=budget,
            work_conserving=True,
        ), {}),
    ]


def main():
    base = zcu102(num_accels=0, cpu_work=CPU_WORK)
    calibration = calibrate(base, horizon=100_000)
    print(f"Calibration: achievable peak "
          f"{calibration.achievable_peak:.1f} B/cycle "
          f"({calibration.efficiency:.0%} of theoretical), "
          f"solo miss latency {calibration.solo_latency_mean:.0f} cycles\n")
    solo = run_experiment(base)
    solo_runtime = solo.critical_runtime()

    rows = []
    for name, spec, extra in scheme_specs(calibration):
        config = zcu102(
            num_accels=HOGS, cpu_work=CPU_WORK, accel_regulator=spec, **extra
        )
        result = run_experiment(config)
        hog_bw = sum(
            result.master(f"acc{i}").bandwidth_bytes_per_cycle
            for i in range(HOGS)
        )
        rows.append(
            {
                "scheme": name,
                "slowdown": slowdown(result.critical_runtime(), solo_runtime),
                "victim_p99": result.critical().latency_p99,
                "hog_bw_B_cyc": hog_bw,
                "dram_util": result.dram.utilization,
                "rate_guarantee": "yes" if spec is not None and spec.kind in (
                    "tightly_coupled", "memguard"
                ) else "no",
            }
        )
    print(format_table(
        rows,
        title=(
            f"All schemes, {HOGS} hogs vs 1 critical core "
            f"(reservations at {SHARE:.0%} of peak per hog where applicable)"
        ),
    ))
    print()
    print("How to read it: 'rate_guarantee' marks schemes that can promise")
    print("an accelerator a bandwidth floor. Only the tightly-coupled IP")
    print("combines a guarantee, a bounded victim tail, and (with")
    print("work-conserving injection) PREM-class utilization.")


if __name__ == "__main__":
    main()
