#!/usr/bin/env python3
"""QoS contracts: calibrate, admit, enforce, verify.

The full contract workflow a QoS-managed SoC runs at integration
time:

1. **calibrate** the platform (achievable bandwidth, latency floor);
2. **admit** reservation requests against the calibrated capacity and
   the analytic worst-case latency bound of the critical task;
3. **enforce** the admitted reservations with tightly-coupled
   regulators;
4. **verify** by simulation that every admitted actor achieved its
   reservation and the critical bound held.

Run:  python examples/admission_control.py
"""

from repro import (
    AdmissionController,
    BandwidthBudget,
    CoRunnerEnvelope,
    RegulatorSpec,
    run_experiment,
    zcu102,
)
from repro.analysis.calibration import calibrate
from repro.analysis.sweep import format_table
from repro.soc.presets import zcu102_dram, zcu102_interconnect

WINDOW = 256

#: Reservation requests arriving at integration time:
#: (name, requested GB/s-equivalent rate in B/cycle, envelope).
REQUESTS = (
    ("camera", 2.0, CoRunnerEnvelope(max_outstanding=8, burst_beats=16)),
    ("cnn", 2.0, CoRunnerEnvelope(max_outstanding=8, burst_beats=16)),
    ("logger", 1.0, CoRunnerEnvelope(max_outstanding=4, burst_beats=16)),
    ("bulk_copy", 4.0, CoRunnerEnvelope(max_outstanding=16, burst_beats=16)),
)


def main():
    base = zcu102(num_accels=0, cpu_work=3_000)
    calibration = calibrate(base, horizon=100_000)
    print(f"Calibration: achievable {calibration.achievable_peak:.1f} B/cyc, "
          f"solo p99 {calibration.solo_latency_p99:.0f} cycles\n")

    controller = AdmissionController(
        achievable_peak=calibration.achievable_peak,
        protected_headroom=5.0,           # kept free for the CPU
        latency_target=4_000,             # critical worst-case tolerance
        timing=zcu102_dram().timing,
        interconnect=zcu102_interconnect(),
        critical_outstanding=2,
    )

    rows = []
    admitted = {}
    for name, rate, envelope in REQUESTS:
        decision = controller.admit(name, BandwidthBudget(rate), envelope)
        rows.append(
            {
                "actor": name,
                "requested_B_cyc": rate,
                "admitted": decision.admitted,
                "reason": decision.reason if not decision.admitted else
                f"ok (wc bound {decision.projected_latency_bound} cyc)",
            }
        )
        if decision.admitted:
            admitted[name] = rate
    print(format_table(rows, title="Admission decisions"))
    print()

    # Enforce the admitted contracts and verify by simulation: build
    # one regulated hog per admitted reservation.
    num = len(admitted)
    config = zcu102(num_accels=num, cpu_work=3_000)
    masters = list(config.masters)
    for index, (name, rate) in enumerate(sorted(admitted.items())):
        spec = RegulatorSpec(
            kind="tightly_coupled",
            window_cycles=WINDOW,
            budget_bytes=max(1, round(rate * WINDOW)),
        )
        import dataclasses
        masters[1 + index] = dataclasses.replace(
            masters[1 + index], regulator=spec
        )
    result = run_experiment(config.with_masters(masters))

    verify_rows = []
    for index, (name, rate) in enumerate(sorted(admitted.items())):
        achieved = result.master(f"acc{index}").bandwidth_bytes_per_cycle
        verify_rows.append(
            {
                "actor": name,
                "reserved_B_cyc": rate,
                "achieved_B_cyc": achieved,
                "within_contract": achieved <= rate * 1.05,
            }
        )
    verify_rows.append(
        {
            "actor": "cpu0 (critical)",
            "reserved_B_cyc": "-",
            "achieved_B_cyc": result.critical().latency_max,
            "within_contract": result.critical().latency_max <= 4_000,
        }
    )
    print(format_table(
        verify_rows,
        title="Verification run (last row: critical max latency vs bound)",
    ))


if __name__ == "__main__":
    main()
