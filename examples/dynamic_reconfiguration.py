#!/usr/bin/env python3
"""Run-time QoS retargeting: mode change in microseconds.

Scenario: an autonomous platform switches from *cruise* mode (the
perception DMA may use half the memory channel) to *emergency* mode
(the control core needs the channel; perception is squeezed to 10%).
The mode switch is a single budget register write to the
tightly-coupled IP; we trace the DMA's per-microsecond bandwidth
around the switch and compare with the software MemGuard baseline,
which can only retarget at its next period.

Run:  python examples/dynamic_reconfiguration.py
"""

from repro import (
    BandwidthBudget,
    MasterSpec,
    Platform,
    PlatformConfig,
    RegulatorSpec,
    WindowedBandwidthMonitor,
)
from repro.analysis.ascii_plot import sparkline

MB = 1 << 20
BIN = 250           # 1 us at 250 MHz
SWITCH_AT = 50_000  # 200 us into the run
HORIZON = 100_000
CRUISE_SHARE, EMERGENCY_SHARE = 0.5, 0.1
PEAK = 16.0


def run_mode_switch(reg_spec, label):
    config = PlatformConfig(
        masters=(
            MasterSpec(
                name="perception", workload="stream_read",
                region_base=0x1000_0000, region_extent=8 * MB,
                regulator=reg_spec,
            ),
        ),
    )
    platform = Platform(config)
    monitor = WindowedBandwidthMonitor(platform.ports["perception"], BIN)
    emergency = BandwidthBudget.from_fraction_of_peak(EMERGENCY_SHARE, PEAK)

    def switch():
        event = platform.qos_manager.set_budget("perception", emergency)
        print(f"  [{label}] switch requested at {event.requested_at:,}, "
              f"register live at {event.effective_at:,} "
              f"(+{event.latency} cycles)")

    platform.sim.schedule_at(SWITCH_AT, switch)
    platform.run(HORIZON, stop_when_critical_done=False)
    return monitor


def show_timeline(label, monitor):
    bins = monitor.window_bytes(HORIZON)
    rates = [b / BIN for b in bins]
    # Downsample to 100 points for display.
    step = len(rates) // 100
    sampled = [max(rates[i:i + step]) for i in range(0, len(rates), step)]
    print(f"  [{label}] perception bandwidth (B/cycle, 1 point = "
          f"{step} us, '|' = mode switch):")
    switch_point = SWITCH_AT // BIN // step
    line = sparkline(sampled, lo=0, hi=PEAK)
    print("    " + line[:switch_point] + "|" + line[switch_point:])
    before = sum(rates[:SWITCH_AT // BIN]) / (SWITCH_AT // BIN)
    after_start = (SWITCH_AT + 10_000) // BIN
    after = sum(rates[after_start:]) / max(1, len(rates) - after_start)
    print(f"    mean rate before: {before:5.2f} B/cyc   "
          f"settled rate after: {after:5.2f} B/cyc "
          f"(target {EMERGENCY_SHARE * PEAK:.2f})")
    print()


def main():
    print(f"Mode switch at cycle {SWITCH_AT:,}: perception DMA budget "
          f"{CRUISE_SHARE:.0%} -> {EMERGENCY_SHARE:.0%} of channel peak\n")

    tc = RegulatorSpec(
        kind="tightly_coupled", window_cycles=256,
        budget_bytes=round(CRUISE_SHARE * PEAK * 256), reconfig_latency=4,
    )
    show_timeline("tightly-coupled", run_mode_switch(tc, "tightly-coupled"))

    mg = RegulatorSpec(
        kind="memguard", period_cycles=25_000,
        budget_bytes=round(CRUISE_SHARE * PEAK * 25_000),
    )
    show_timeline("memguard", run_mode_switch(mg, "memguard"))

    print("The IP enforces the new budget within a couple of windows")
    print("(microseconds); MemGuard keeps serving the old budget until")
    print("its next period tick, and still overshoots within periods.")


if __name__ == "__main__":
    main()
