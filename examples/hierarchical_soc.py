#!/usr/bin/env python3
"""Two-level topology: where should the regulator live?

Real Zynq-class SoCs funnel all FPGA masters through a few shared HP
ports.  This example builds that topology -- a critical CPU on the PS
side, three well-behaved accelerators and one misbehaving DMA hog
behind one HP port -- and compares the two places a regulator can
sit, at the same 40% total accelerator budget:

* one aggregate regulator at the HP port (cheap: one IP);
* per-master IPs at the fabric ports (the paper's design).

Run:  python examples/hierarchical_soc.py
"""

from repro import MasterSpec, RegulatorSpec
from repro.analysis.sweep import format_table
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform

MB = 1 << 20
PEAK = 16.0
TOTAL_SHARE = 0.40
WINDOW = 1024
HORIZON = 500_000


def build(per_master_reg, bridge_reg):
    accels = []
    for index, name in enumerate(("viz", "radar", "lidar")):
        accels.append(
            MasterSpec(
                name=name, workload="matmul_stream",
                region_base=0x2000_0000 + index * 4 * MB,
                region_extent=4 * MB, max_outstanding=4,
                regulator=per_master_reg,
            )
        )
    accels.append(
        MasterSpec(
            name="rogue", workload="stream_read",
            region_base=0x3000_0000, region_extent=4 * MB,
            max_outstanding=16,  # a misbehaving IP with deep queues
            regulator=per_master_reg,
        )
    )
    return TwoLevelConfig(
        cpus=(
            MasterSpec(
                name="control", workload="compute_mix",
                region_base=0x1000_0000, region_extent=4 * MB,
                work=2_000, max_outstanding=4, critical=True,
            ),
        ),
        accels=tuple(accels),
        bridge_regulator=bridge_reg,
        bridge_outstanding=16,
    )


def run(label, per_master_reg, bridge_reg):
    platform = TwoLevelPlatform(build(per_master_reg, bridge_reg))
    platform.run(HORIZON, stop_when_critical_done=False)
    row = {"placement": label}
    for name in ("viz", "radar", "lidar", "rogue"):
        row[name] = (
            platform.ports[name].stats.counter("bytes").value / HORIZON
        )
    row["control_done_at"] = platform.masters["control"].finished_at
    return row


def main():
    aggregate = RegulatorSpec(
        kind="tightly_coupled", window_cycles=WINDOW,
        budget_bytes=round(TOTAL_SHARE * PEAK * WINDOW),
    )
    per_master = RegulatorSpec(
        kind="tightly_coupled", window_cycles=WINDOW,
        budget_bytes=round(TOTAL_SHARE / 4 * PEAK * WINDOW),
    )
    rows = [
        run("aggregate @ hp0", None, aggregate),
        run("per-master @ fabric", per_master, None),
    ]
    print(format_table(
        rows,
        title=(
            "Per-accelerator bandwidth (B/cycle) under each regulator "
            f"placement ({TOTAL_SHARE:.0%} of peak total in both)"
        ),
    ))
    print()
    print("With the aggregate regulator, the rogue DMA's deep queues let")
    print("it win most fabric arbitration rounds and eat the shared")
    print("budget; per-master IPs cap it at its own reservation, so the")
    print("well-behaved pipelines keep their shares. The critical CPU is")
    print("protected either way -- isolation *among* accelerators is what")
    print("per-master placement buys.")


if __name__ == "__main__":
    main()
