#!/usr/bin/env python
"""End-to-end smoke for the live probe plane, as CI runs it.

Drives the real CLI surfaces as subprocesses, exactly as a user
would:

1. starts ``python -m repro serve --jobs 1 --max-requests 1`` with an
   injected SLO (``REPRO_SLO``) that any run violates immediately;
2. subscribes ``python -m repro watch --socket ... --once --json``;
3. submits a regulated run over the socket with the sync client;
4. asserts the watcher printed one live probe frame as JSON, the
   server exited after its one request, and the violated SLO left a
   flight-recorder dump containing pre-violation history.

Usage::

    PYTHONPATH=src python scripts/watch_smoke.py [--flightrec DIR]

Exit code 0 = frame received and dump present.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.runner import RunSpec  # noqa: E402
from repro.runner.serve import request_runs  # noqa: E402
from repro.soc.presets import zcu102  # noqa: E402

#: A run long enough that the watcher reliably sees in-flight frames.
HOGS = 2
CPU_WORK = 400
MAX_CYCLES = 400_000
SAMPLE_PERIOD = 256


def _wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise TimeoutError(f"timed out waiting for {what}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--flightrec",
        default=None,
        help="flight-recorder output dir (default: a temp dir)",
    )
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="watch_smoke_")
    sock = os.path.join(tmp, "serve.sock")
    flightrec = args.flightrec or os.path.join(tmp, "flightrec")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_HERE, "..", "src")
    env["REPRO_PROBE_PERIOD"] = str(SAMPLE_PERIOD)
    # Total DRAM traffic exceeds one byte on the first sampled frame:
    # a guaranteed violation that exercises the dump path.
    env["REPRO_SLO"] = '["dram/bytes<=1"]'
    env["REPRO_FLIGHTREC"] = flightrec

    serve = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", sock,
            "--jobs", "1",
            "--max-requests", "1",
            "--no-cache",
        ],
        env=env,
    )
    watch = None
    try:
        _wait_for(lambda: os.path.exists(sock), 30, "serve socket")
        watch = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "watch",
                "--socket", sock,
                "--once", "--json",
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        time.sleep(0.5)  # let the watcher subscribe before the run

        spec = RunSpec(
            config=zcu102(num_accels=HOGS, cpu_work=CPU_WORK),
            max_cycles=MAX_CYCLES,
        )
        summaries = request_runs(sock, [spec], timeout=300)
        assert len(summaries) == 1, "serve must answer the one request"

        out, _ = watch.communicate(timeout=60)
        assert watch.returncode == 0, f"watch exited {watch.returncode}"
        frame = json.loads(out.strip().splitlines()[-1])
        assert frame["event"] == "frame", frame
        assert frame["values"], "frame must carry probe values"
        assert any(name.startswith("port/") for name in frame["values"])
        print(
            f"watch_smoke: frame at cycle {frame['time']} with "
            f"{len(frame['values'])} probe values"
        )

        serve.wait(timeout=60)  # --max-requests 1: exits on its own

        dump = os.path.join(flightrec, "dump_000")
        for name in ("violation.json", "history.json", "trace.json"):
            path = os.path.join(dump, name)
            assert os.path.isfile(path), f"missing {path}"
        with open(os.path.join(dump, "history.json")) as fh:
            history = json.load(fh)
        assert history, "dump must retain pre-violation history"
        print(
            f"watch_smoke: flight recorder dumped {len(history)} "
            f"frames to {dump}"
        )
        return 0
    finally:
        for proc in (watch, serve):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait()


if __name__ == "__main__":
    sys.exit(main())
