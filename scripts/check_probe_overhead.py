#!/usr/bin/env python
"""Probe-sampler overhead gate for CI.

Runs a fixed regulated hog scenario with a :class:`ProbeSampler`
attached (full platform probe set, default sampling period) and
detached in the same process and fails when the *attached*
configuration is more than ``--tolerance`` slower than the detached
one.  Probe reads are pull-based and allocation-free by design (see
``docs/observability.md``); sampling cost creeping onto the hot path
shows up as the attached run falling behind the detached one, which
is exactly the gap this gate rejects.

Same-run comparison is deliberate: absolute wall times track the box
the gate runs on and cannot gate CI runners.  The measurement is
*paired* in ABBA order: after a discarded warm-up each repeat times
attached, detached, detached, attached and judges the **median ratio
of the pair sums** -- linear drift (frequency scaling, noisy
neighbours) and first-position bias (the second run of a back-to-back
pair sees a warmed allocator) hit both halves equally and cancel, so
shared-box noise does not masquerade as probe overhead.

Usage::

    PYTHONPATH=src python scripts/check_probe_overhead.py \
        [--repeats 5] [--tolerance 0.02] [--period 4096]

Exit code 0 = within tolerance.
"""

from __future__ import annotations

import argparse
import gc
import os
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))

from repro.probes.sampler import DEFAULT_PROBE_PERIOD, ProbeSampler  # noqa: E402
from repro.soc.platform import Platform  # noqa: E402
from repro.soc.presets import zcu102  # noqa: E402

#: Fixed workload: the hog scenario, sized so one run takes a stable
#: fraction of a second without stretching the gate.
HOGS = 2
CPU_WORK = 2_000
MAX_CYCLES = 400_000


def _sample(attach: bool, period: int) -> float:
    """Wall seconds for one platform run, sampler attached or not.

    Collector pauses land randomly and would dominate the percent-level
    signal this gate judges, so the timed region runs with GC off.
    """
    platform = Platform(zcu102(num_accels=HOGS, cpu_work=CPU_WORK))
    if attach:
        ProbeSampler(platform.sim, platform.probes, period=period).attach()
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        platform.run(MAX_CYCLES)
        return time.perf_counter() - start
    finally:
        gc.enable()


def measure_probe_overhead(repeats: int, period: int):
    """Interleaved ABBA-paired measurement.

    Returns ``(ratio, attached_s, detached_s)``: the median
    attached/detached ratio of pair sums over ``repeats`` ABBA
    rounds plus the best-of single-run times (the latter only for
    display -- the gate judges the paired ratio).
    """
    _sample(False, period)  # discarded warm-up
    ratios = []
    attached_times = []
    detached_times = []
    for _ in range(repeats):
        a1 = _sample(True, period)
        d1 = _sample(False, period)
        d2 = _sample(False, period)
        a2 = _sample(True, period)
        attached_times += [a1, a2]
        detached_times += [d1, d2]
        ratios.append((a1 + a2) / (d1 + d2))
    return statistics.median(ratios), min(attached_times), min(detached_times)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved attached/detached pairs "
                             "(median ratio)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional slowdown attached vs "
                             "detached")
    parser.add_argument("--period", type=int, default=DEFAULT_PROBE_PERIOD,
                        help="sampling period in cycles")
    args = parser.parse_args(argv)

    ratio, attached_s, detached_s = measure_probe_overhead(
        args.repeats, args.period
    )
    print(
        f"probe overhead: attached {attached_s:.3f}s, "
        f"detached {detached_s:.3f}s at period {args.period} "
        f"(median paired attached/detached {ratio:.3f}, "
        f"tolerance {args.tolerance:.0%})"
    )
    if ratio > 1.0 + args.tolerance:
        print(
            f"FAIL: attached-sampler run regressed {ratio - 1.0:.1%} "
            "vs detached (same run, paired)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
