#!/usr/bin/env python
"""Fast-forward differential gate for CI.

Runs a reduced regulation sweep -- E2-style tightly-coupled points on
the standard platform, E3-style window-granularity points, plus the
open-loop steady-streaming scenarios the macro-stepper targets -- with
``REPRO_FASTFORWARD`` off and on, under both scheduler backends, and
fails unless every scenario's full result table is byte-identical
across all four runs.  The engine's whole contract is "faster, not
different": any analytic shortcut that diverges from the
event-accurate kernel must turn the build red.

Engagement is asserted too: on the steady scenarios the engine must
actually macro-step (``ff_regions > 0``), otherwise the identity
check silently passes on a detector that declines everything.

Usage::

    PYTHONPATH=src python scripts/check_fastforward_diff.py

Exit code 0 = byte-identical everywhere and engaged where expected.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, os.path.join(_HERE, ".."))

from repro.regulation.factory import RegulatorSpec  # noqa: E402
from repro.sim.kernel import FASTFORWARD_ENV, SCHED_ENV  # noqa: E402
from repro.soc.experiment import PlatformResult  # noqa: E402
from repro.soc.platform import MasterSpec, Platform, PlatformConfig  # noqa: E402
from repro.soc.presets import zcu102  # noqa: E402

PEAK = 16.0

#: Horizon of the open-loop steady scenarios (cycles).
STEADY_HORIZON = 60_000

#: Reduced E2 points: two shares at the paper's default window.
E2_SHARES = (0.05, 0.20)

#: Reduced E3 points: one share across two window granularities.
E3_WINDOWS = (256, 2048)

SCHEDULERS = ("heap", "calendar")


def _tc(share, window):
    return RegulatorSpec(
        kind="tightly_coupled",
        window_cycles=window,
        budget_bytes=max(1, round(share * PEAK * window)),
    )


def _steady(num_streams, regulator):
    masters = tuple(
        MasterSpec(
            name=f"olp{i}",
            workload="open_loop_stream",
            region_base=0x1000_0000 + i * (4 << 20),
            region_extent=4 << 20,
            regulator=regulator,
        )
        for i in range(num_streams)
    )
    return PlatformConfig(masters=masters, seed=3)


def scenarios():
    """``(label, config, horizon, stop_when_critical_done, must_engage)``."""
    rows = [
        (
            "steady_tc_x1",
            _steady(1, _tc(0.01, 1024)),
            STEADY_HORIZON,
            False,
            True,
        ),
        (
            "steady_tc_x2",
            _steady(2, _tc(0.005, 2048)),
            STEADY_HORIZON,
            False,
            True,
        ),
        (
            "steady_memguard",
            _steady(
                1,
                RegulatorSpec(
                    kind="memguard",
                    period_cycles=2048,
                    budget_bytes=max(1, round(0.01 * PEAK * 2048)),
                ),
            ),
            STEADY_HORIZON,
            False,
            True,
        ),
    ]
    for share in E2_SHARES:
        rows.append(
            (
                f"e2_share_{share}",
                zcu102(num_accels=2, cpu_work=800, accel_regulator=_tc(share, 1024)),
                400_000,
                True,
                False,
            )
        )
    for window in E3_WINDOWS:
        rows.append(
            (
                f"e3_window_{window}",
                zcu102(num_accels=2, cpu_work=800, accel_regulator=_tc(0.10, window)),
                400_000,
                True,
                False,
            )
        )
    return rows


def run_table(config, scheduler, fastforward, horizon, stop):
    """One run -> ``(summary json, ff_regions)``."""
    saved = {
        key: os.environ.get(key) for key in (SCHED_ENV, FASTFORWARD_ENV)
    }
    os.environ[SCHED_ENV] = scheduler
    os.environ[FASTFORWARD_ENV] = "1" if fastforward else "0"
    try:
        platform = Platform(config)
        elapsed = platform.run(horizon, stop_when_critical_done=stop)
        table = PlatformResult(platform, elapsed).summary().to_json()
        regions = platform.sim.kernel_stats().get("ff_regions", 0)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return table, regions


def main() -> int:
    failures = 0
    for label, config, horizon, stop, must_engage in scenarios():
        reference, _ = run_table(config, "heap", False, horizon, stop)
        engaged = 0
        identical = True
        for scheduler in SCHEDULERS:
            for fastforward in (False, True):
                table, regions = run_table(
                    config, scheduler, fastforward, horizon, stop
                )
                if fastforward:
                    engaged += regions
                if table != reference:
                    identical = False
                    print(
                        f"FAIL: {label} [{scheduler}, "
                        f"ff={'on' if fastforward else 'off'}] diverges "
                        "from the event-accurate heap reference",
                        file=sys.stderr,
                    )
        status = "identical" if identical else "DIVERGED"
        print(
            f"fastforward diff: {label}: {status} across "
            f"{len(SCHEDULERS) * 2} runs, {engaged} regions macro-stepped"
        )
        if not identical:
            failures += 1
        if must_engage and engaged == 0:
            print(
                f"FAIL: {label} never engaged the fast-forward engine "
                "(identity check is vacuous)",
                file=sys.stderr,
            )
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
