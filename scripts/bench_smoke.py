#!/usr/bin/env python
"""Runner smoke benchmark: serial vs parallel on a fixed 8-point sweep.

Runs the same small regulation sweep twice -- once forced in-process
serial, once through the process pool -- asserts the two produce
byte-identical summaries, and appends the timing to
``BENCH_runner.json`` so successive PRs accumulate a performance
trajectory for the experiment engine.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--out BENCH_runner.json]

Exit code 0 = rows identical (the speedup itself is reported, not
asserted: CI boxes with one core legitimately see ~1x).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner import ParallelRunner, RunSpec  # noqa: E402
from repro.soc.presets import zcu102  # noqa: E402

#: The fixed 8-point grid: 4 shares x 2 windows, small critical work
#: so the whole smoke run stays in seconds.
SHARES = (0.05, 0.10, 0.20, 0.40)
WINDOWS = (256, 2048)
CPU_WORK = 1_000
HOGS = 2
PEAK = 16.0


def build_specs():
    """The fixed 8-point sweep, one spec per (share, window)."""
    from repro.regulation.factory import RegulatorSpec

    specs = []
    for share in SHARES:
        for window in WINDOWS:
            reg = RegulatorSpec(
                kind="tightly_coupled",
                window_cycles=window,
                budget_bytes=max(1, round(share * PEAK * window)),
            )
            specs.append(
                RunSpec(
                    config=zcu102(
                        num_accels=HOGS,
                        cpu_work=CPU_WORK,
                        accel_regulator=reg,
                    )
                )
            )
    return specs


def timed_run(max_workers):
    """Run the sweep uncached; return (rows-as-json, seconds, mode)."""
    runner = ParallelRunner(max_workers=max_workers, cache=None)
    start = time.perf_counter()
    summaries = runner.run(build_specs())
    elapsed = time.perf_counter() - start
    return [s.to_json() for s in summaries], elapsed, runner.last_stats.mode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_runner.json"
        ),
        help="timing log to append to (JSON list)",
    )
    args = parser.parse_args(argv)

    serial_rows, serial_s, _ = timed_run(max_workers=1)
    parallel_rows, parallel_s, mode = timed_run(max_workers=None)

    if serial_rows != parallel_rows:
        print("FAIL: serial and parallel summaries differ", file=sys.stderr)
        return 1

    workers = ParallelRunner().max_workers
    record = {
        "points": len(serial_rows),
        "workers": workers,
        "parallel_mode": mode,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "rows_identical": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }

    out = os.path.abspath(args.out)
    history = []
    if os.path.exists(out):
        try:
            with open(out) as fh:
                history = json.load(fh)
            if not isinstance(history, list):
                history = []
        except (OSError, ValueError):
            history = []
    history.append(record)
    with open(out, "w") as fh:
        json.dump(history, fh, indent=2)

    print(
        f"bench_smoke: {record['points']} points, "
        f"serial {record['serial_s']}s, "
        f"{mode} {record['parallel_s']}s "
        f"(x{record['speedup']}, {workers} workers) -> {out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
