#!/usr/bin/env python
"""Runner smoke benchmark: the experiment engine's trajectory log.

Runs a fixed 8-point regulation sweep four ways -- in-process serial
under each scheduler backend (``REPRO_SCHED=calendar|heap``), under
the adaptive selector (``REPRO_SCHED=auto``), and once through the
process pool -- asserts all four produce byte-identical summaries,
then times the kernel's scheduler-stress and batched-dispatch probes.
The timings are appended to ``BENCH_runner.json`` so successive PRs
accumulate a performance trajectory for the experiment engine and the
simulation kernel under it.

Appended records carry ``schema: 7`` and a ``kind`` discriminator:

* ``runner_sweep``      -- serial vs process-pool wall time (plus the
  scheduler label the sweep ran under and, for serial fallbacks, the
  runner's ``fallback_reason``);
* ``sched_sweep``       -- the same sweep, heap vs calendar backend:
  the measured end-to-end scheduler comparison;
* ``auto_sched``        -- the same sweep under ``REPRO_SCHED=auto``
  vs the better static backend, best-of-``AUTO_REPEATS`` wall times;
  this record backs the perf gate (see below);
* ``kernel_throughput`` -- raw scheduler events/s at a 128k-event
  resident population, heap vs calendar (the E22 headline probe),
  plus the batched dispatch loop's same-run Simulator-level rates at
  the same population;
* ``batch_dispatch``    -- batched vs per-event dispatch
  (``REPRO_BATCH``) through ``Simulator.run`` at a tiny and at the
  stress population, both backends, with same-run ratios; since
  schema 7 each row also carries the population-aware ``auto`` mode's
  rate and its ratio vs the better static mode -- the parity proof
  that auto pays neither the tiny-population batching tax nor the
  stress-population per-event tax;
* ``fastforward``       -- the steady-state macro-stepper
  (``REPRO_FASTFORWARD``, new in schema 7): wall time of a
  regulation-bound open-loop streaming scenario with the engine off
  vs on under both scheduler backends (same-run speedup, gated at
  ``FF_MIN_SPEEDUP``), byte-identity of the result tables across all
  four runs, and the engine's paired overhead ratio on an irregular
  scenario where it always declines (gated at ``FF_MAX_OVERHEAD``);
* ``runner_telemetry``  -- the pool run's execution report
  (:class:`repro.telemetry.RunnerTelemetry`: per-spec seconds,
  worker utilization, cache accounting), nested under ``telemetry``;
  since schema 6 the measured pool runs under an explicit
  ``max_workers="auto"`` (the runner's automatic resolution), so the
  trajectory tracks the real pool rather than a serial fallback;
* ``probe_overhead``    -- the live probe plane's cost (new in schema
  6): ABBA-paired wall times of the fixed hog scenario with a
  :class:`repro.probes.ProbeSampler` attached vs detached (the same
  harness ``scripts/check_probe_overhead.py`` gates CI with);
* ``runner_parallel``   -- the forced-parallel proof (schema 5):
  the automatically resolved worker count with its provenance
  (affinity mask / cgroup quota / ``REPRO_JOBS``), plus the same
  sweep under a forced ``REPRO_JOBS=2``, which must engage the pool
  (no ``max_workers=1`` fallback) and stay byte-identical to the
  serial rows -- this record backs the forced-parallel gate (see
  below).

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--out BENCH_runner.json]

Exit code 0 = all row sets identical AND the auto gate holds (auto's
best-of wall time may not exceed the better static backend's by more
than ``AUTO_GATE_SLACK``) AND the forced-parallel gate holds (under
``REPRO_JOBS=2`` the runner must actually use the pool and produce
byte-identical rows) AND the fast-forward gates hold (byte-identical
tables, >= ``FF_MIN_SPEEDUP`` same-run speedup on the steady
scenario, <= ``FF_MAX_OVERHEAD`` paired overhead where the engine
declines).  Raw cross-mode speedups remain reported, not asserted:
CI boxes with one core legitimately see ~1x, and tiny populations
legitimately favour the C-implemented heap.

A pre-existing ``--out`` file that cannot be parsed as a JSON list is
quarantined (renamed to ``<out>.corrupt-N``) and a fresh history is
started, so one corrupted write never silently discards the
trajectory nor blocks future appends.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, os.path.join(_HERE, ".."))

from repro.runner import ParallelRunner, RunSpec, resolve_workers  # noqa: E402
from repro.sim.kernel import (  # noqa: E402
    FASTFORWARD_ENV,
    SCHED_ENV,
    resolve_scheduler,
)
from repro.soc.presets import zcu102  # noqa: E402

#: Schema version stamped on every appended record.
SCHEMA = 7

#: ABBA rounds for the probe-overhead record (the CI gate uses its
#: own, stricter repeat count).
PROBE_REPEATS = 3

#: Worker count forced (via ``REPRO_JOBS``) for the parallel proof.
FORCED_JOBS = 2

#: Sweep repetitions per scheduler for the auto gate; best-of filters
#: the VM noise that single runs are hostage to.
AUTO_REPEATS = 3

#: The auto gate: auto's best-of wall time may exceed the better
#: static backend's by at most this factor.
AUTO_GATE_SLACK = 1.10

#: Fast-forward gate: same-run wall-time speedup the macro-stepper
#: must deliver on the steady regulation-bound scenario, per backend.
#: (Measured headroom is ~4x; the floor guards the engine's whole
#: point -- skipping regular regions analytically.)
FF_MIN_SPEEDUP = 3.0

#: Fast-forward gate: paired wall-time ratio (engine attached vs
#: knob off) allowed on the irregular scenario where the detector
#: declines every cycle -- probing must stay almost free.
FF_MAX_OVERHEAD = 1.05

#: ABBA sample pairs for the fast-forward overhead measurement.
FF_OVERHEAD_REPEATS = 3

#: Horizon of the steady fast-forward scenario (cycles): long enough
#: that thousands of refill windows amortize attach/teardown costs.
FF_STEADY_HORIZON = 600_000

#: Horizon of the irregular (always-declining) scenario.
FF_IRREGULAR_HORIZON = 120_000

#: The fixed 8-point grid: 4 shares x 2 windows, small critical work
#: so the whole smoke run stays in seconds.
SHARES = (0.05, 0.10, 0.20, 0.40)
WINDOWS = (256, 2048)
CPU_WORK = 1_000
HOGS = 2
PEAK = 16.0


def build_specs():
    """The fixed 8-point sweep, one spec per (share, window)."""
    from repro.regulation.factory import RegulatorSpec

    specs = []
    for share in SHARES:
        for window in WINDOWS:
            reg = RegulatorSpec(
                kind="tightly_coupled",
                window_cycles=window,
                budget_bytes=max(1, round(share * PEAK * window)),
            )
            specs.append(
                RunSpec(
                    config=zcu102(
                        num_accels=HOGS,
                        cpu_work=CPU_WORK,
                        accel_regulator=reg,
                    )
                )
            )
    return specs


def timed_run(max_workers, scheduler=None):
    """Run the sweep uncached; return (rows-as-json, seconds, runner)."""
    previous = os.environ.get(SCHED_ENV)
    if scheduler is not None:
        os.environ[SCHED_ENV] = scheduler
    try:
        runner = ParallelRunner(max_workers=max_workers, cache=None)
        start = time.perf_counter()
        summaries = runner.run(build_specs())
        elapsed = time.perf_counter() - start
        runner.close()
    finally:
        if scheduler is not None:
            if previous is None:
                os.environ.pop(SCHED_ENV, None)
            else:
                os.environ[SCHED_ENV] = previous
    return [s.to_json() for s in summaries], elapsed, runner


def forced_parallel_run():
    """The sweep under a forced ``REPRO_JOBS`` pool.

    Environment-driven on purpose: this exercises the same resolution
    path (`resolve_workers`) a user's ``REPRO_JOBS=N`` would, not the
    explicit-argument shortcut.
    """
    previous = os.environ.get("REPRO_JOBS")
    os.environ["REPRO_JOBS"] = str(FORCED_JOBS)
    try:
        runner = ParallelRunner(cache=None)
        start = time.perf_counter()
        summaries = runner.run(build_specs())
        elapsed = time.perf_counter() - start
        runner.close()
    finally:
        if previous is None:
            os.environ.pop("REPRO_JOBS", None)
        else:
            os.environ["REPRO_JOBS"] = previous
    return [s.to_json() for s in summaries], elapsed, runner.last_stats


def kernel_throughput():
    """The E22 scheduler-stress probe: events/s per backend."""
    from benchmarks.bench_e22_kernel import (
        BACKENDS,
        STRESS_POPULATION,
        _bench_scheduler_stress,
    )

    rates = {}
    for name, queue_cls in BACKENDS:
        rate, _ = _bench_scheduler_stress(queue_cls)
        rates[name] = rate
    return rates, STRESS_POPULATION


def batch_dispatch_rates():
    """Batched vs per-event vs population-aware ``auto`` Simulator
    dispatch, both backends, at a tiny and at the stress population
    (same-run ratios).

    The ``auto`` columns are the parity proof for the adaptive mode:
    at the tiny population it must track the per-event rate (schema-4
    rows showed static batching costs 13-21% there), at the stress
    population it must track the batched rate.
    """
    from repro.sim.kernel import AUTO_BATCH
    from benchmarks.bench_e22_kernel import (
        BACKENDS,
        BATCH_POPULATIONS,
        dispatch_throughput,
    )

    rows = []
    for label, population in BATCH_POPULATIONS:
        # Tiny populations finish instantly; give them enough events
        # for a stable rate without stretching the stress run.
        events = 100_000
        for name, _ in BACKENDS:
            batched = dispatch_throughput(name, True, population, events)
            per_event = dispatch_throughput(name, False, population, events)
            auto = dispatch_throughput(name, AUTO_BATCH, population, events)
            best_static = max(batched, per_event)
            rows.append(
                {
                    "population_label": label,
                    "population": population,
                    "backend": name,
                    "batched_events_s": round(batched),
                    "per_event_events_s": round(per_event),
                    "batched_vs_per_event": round(batched / per_event, 3),
                    "auto_events_s": round(auto),
                    "auto_vs_best_static": round(auto / best_static, 3),
                }
            )
    return rows


def _ff_steady_config():
    """The steady-streaming regulation-bound scenario: one open-loop
    Poisson stream under a tight tightly-coupled budget -- the shape
    the macro-stepper advances analytically."""
    from repro.regulation.factory import RegulatorSpec
    from repro.soc.platform import MasterSpec, PlatformConfig

    window = 4096
    return PlatformConfig(
        masters=(
            MasterSpec(
                name="olp0",
                workload="open_loop_stream",
                region_base=0x1000_0000,
                region_extent=4 << 20,
                regulator=RegulatorSpec(
                    kind="tightly_coupled",
                    window_cycles=window,
                    budget_bytes=max(1, round(0.002 * PEAK * window)),
                ),
            ),
        ),
        seed=3,
    )


def _ff_irregular_config():
    """An irregular scenario the detector must decline every cycle:
    the open-loop stream is unregulated (never analytically blocked)
    and a closed-loop CPU reader shares the fabric."""
    from repro.soc.platform import MasterSpec, PlatformConfig

    return PlatformConfig(
        masters=(
            MasterSpec(
                name="cpu0",
                workload="latency_probe",
                region_base=0x2000_0000,
                region_extent=4 << 20,
            ),
            MasterSpec(
                name="olp0",
                workload="open_loop_stream",
                region_base=0x1000_0000,
                region_extent=4 << 20,
            ),
        ),
        seed=3,
    )


def _ff_run(config, scheduler, fastforward, horizon):
    """One platform run -> ``(table, seconds, ff_regions)``."""
    from repro.soc.experiment import PlatformResult
    from repro.soc.platform import Platform

    saved = {key: os.environ.get(key) for key in (SCHED_ENV, FASTFORWARD_ENV)}
    os.environ[SCHED_ENV] = scheduler
    os.environ[FASTFORWARD_ENV] = "1" if fastforward else "0"
    try:
        platform = Platform(config)
        start = time.perf_counter()
        elapsed = platform.run(horizon, stop_when_critical_done=False)
        seconds = time.perf_counter() - start
        table = PlatformResult(platform, elapsed).summary().to_json()
        regions = platform.sim.kernel_stats().get("ff_regions", 0)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return table, seconds, regions


def fastforward_record():
    """The macro-stepper's smoke measurement.

    Returns the ``fastforward`` record dict (sans schema/timestamp):
    per-backend off/on wall times and same-run speedups on the steady
    scenario, byte-identity across all four runs, engagement counts,
    and the median ABBA-paired overhead ratio on the irregular
    scenario where the engine declines everything.
    """
    import statistics

    steady = _ff_steady_config()
    tables = {}
    times = {}
    regions_on = {}
    for scheduler in ("heap", "calendar"):
        for fastforward in (False, True):
            table, seconds, regions = _ff_run(
                steady, scheduler, fastforward, FF_STEADY_HORIZON
            )
            tables[(scheduler, fastforward)] = table
            times[(scheduler, fastforward)] = seconds
            if fastforward:
                regions_on[scheduler] = regions
    reference = tables[("heap", False)]
    rows_identical = all(table == reference for table in tables.values())
    speedups = {
        scheduler: times[(scheduler, False)] / times[(scheduler, True)]
        for scheduler in ("heap", "calendar")
    }

    # Paired overhead on the always-declining scenario: ABBA pairs
    # (on, off, off, on) so monotone drift -- e.g. thermal settling
    # after the heavy steady runs above -- hits both halves of each
    # ratio equally and cancels.
    irregular = _ff_irregular_config()
    ratios = []
    declined_regions = 0
    _ff_run(irregular, "calendar", False, FF_IRREGULAR_HORIZON)  # warm-up
    for _ in range(FF_OVERHEAD_REPEATS):
        _, a_on, regions_a = _ff_run(
            irregular, "calendar", True, FF_IRREGULAR_HORIZON
        )
        _, a_off, _ = _ff_run(
            irregular, "calendar", False, FF_IRREGULAR_HORIZON
        )
        _, b_off, _ = _ff_run(
            irregular, "calendar", False, FF_IRREGULAR_HORIZON
        )
        _, b_on, regions_b = _ff_run(
            irregular, "calendar", True, FF_IRREGULAR_HORIZON
        )
        declined_regions += regions_a + regions_b
        ratios.append((a_on + b_on) / (a_off + b_off))
    overhead = statistics.median(ratios)

    return {
        "kind": "fastforward",
        "steady_horizon": FF_STEADY_HORIZON,
        "heap_off_s": round(times[("heap", False)], 3),
        "heap_on_s": round(times[("heap", True)], 3),
        "calendar_off_s": round(times[("calendar", False)], 3),
        "calendar_on_s": round(times[("calendar", True)], 3),
        "heap_speedup": round(speedups["heap"], 3),
        "calendar_speedup": round(speedups["calendar"], 3),
        "regions": regions_on,
        "rows_identical": rows_identical,
        "min_speedup": FF_MIN_SPEEDUP,
        "irregular_horizon": FF_IRREGULAR_HORIZON,
        "irregular_overhead": round(overhead, 3),
        "irregular_regions": declined_regions,
        "max_overhead": FF_MAX_OVERHEAD,
        "gate_ok": (
            rows_identical
            and min(speedups.values()) >= FF_MIN_SPEEDUP
            and overhead <= FF_MAX_OVERHEAD
            and declined_regions == 0
        ),
    }


def auto_sweep_gate():
    """Best-of-``AUTO_REPEATS`` sweep wall time per scheduler.

    Returns ``(times, rows_by_sched)`` where ``times`` maps
    ``auto``/``heap``/``calendar`` to best-of seconds.
    """
    times = {}
    rows_by_sched = {}
    for sched in ("heap", "calendar", "auto"):
        best = None
        for _ in range(AUTO_REPEATS):
            rows, elapsed, _ = timed_run(max_workers=1, scheduler=sched)
            rows_by_sched[sched] = rows
            best = elapsed if best is None else min(best, elapsed)
        times[sched] = best
    return times, rows_by_sched


def _timestamp():
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def load_history(out):
    """Read the existing timing log, quarantining it when unreadable.

    Returns ``(history, quarantined)``: the parsed record list (empty
    when absent or quarantined) and the path the corrupt file was
    moved to (``None`` normally).  A file that exists but is not a
    JSON list -- a truncated write, a stray object, binary junk -- is
    renamed to the first free ``<out>.corrupt-N`` so the evidence
    survives while the trajectory restarts cleanly; silently
    overwriting it would destroy the very record someone needs to
    diagnose the corruption.
    """
    if not os.path.exists(out):
        return [], None
    try:
        with open(out) as fh:
            history = json.load(fh)
        if not isinstance(history, list):
            raise ValueError("top-level JSON is not a list")
        return history, None
    except (OSError, ValueError):
        quarantined = None
        for index in range(1, 1000):
            candidate = f"{out}.corrupt-{index}"
            if not os.path.exists(candidate):
                quarantined = candidate
                break
        if quarantined is not None:
            try:
                os.replace(out, quarantined)
            except OSError:
                # Even the rename failed (permissions, races): start
                # fresh anyway; the append below overwrites in place.
                quarantined = None
        return [], quarantined


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(_HERE, "..", "BENCH_runner.json"),
        help="timing log to append to (JSON list)",
    )
    args = parser.parse_args(argv)

    default_sched = resolve_scheduler()

    # Serial sweeps over the same grid under every scheduler (best-of
    # repeats, shared with the auto gate), then the process pool under
    # the default scheduler.  The pool runs with an explicit
    # max_workers="auto" so the telemetry record measures the runner's
    # automatic worker resolution, not a serial fallback.
    times, rows_by_sched = auto_sweep_gate()
    calendar_rows = rows_by_sched["calendar"]
    heap_s, calendar_s = times["heap"], times["calendar"]
    parallel_rows, parallel_s, parallel_runner = timed_run(max_workers="auto")
    stats = parallel_runner.last_stats
    mode = stats.mode

    if calendar_rows != rows_by_sched["heap"]:
        print("FAIL: heap and calendar summaries differ", file=sys.stderr)
        return 1
    if calendar_rows != rows_by_sched["auto"]:
        print("FAIL: auto and calendar summaries differ", file=sys.stderr)
        return 1
    if calendar_rows != parallel_rows:
        print("FAIL: serial and parallel summaries differ", file=sys.stderr)
        return 1

    serial_s = times.get(default_sched, calendar_s)
    best_static = min(heap_s, calendar_s)
    auto_ok = times["auto"] <= best_static * AUTO_GATE_SLACK
    workers = ParallelRunner().max_workers
    records = [
        {
            "schema": SCHEMA,
            "kind": "runner_sweep",
            "points": len(calendar_rows),
            "workers": workers,
            "parallel_mode": mode,
            "fallback_reason": getattr(stats, "fallback_reason", None),
            "scheduler": default_sched,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "rows_identical": True,
            "timestamp": _timestamp(),
        },
        {
            "schema": SCHEMA,
            "kind": "sched_sweep",
            "points": len(calendar_rows),
            "heap_s": round(heap_s, 3),
            "calendar_s": round(calendar_s, 3),
            "calendar_vs_heap": round(heap_s / calendar_s, 3)
            if calendar_s
            else None,
            "rows_identical": True,
            "timestamp": _timestamp(),
        },
        {
            "schema": SCHEMA,
            "kind": "auto_sched",
            "points": len(calendar_rows),
            "repeats": AUTO_REPEATS,
            "auto_s": round(times["auto"], 3),
            "heap_s": round(heap_s, 3),
            "calendar_s": round(calendar_s, 3),
            "auto_vs_best_static": round(times["auto"] / best_static, 3)
            if best_static
            else None,
            "gate_slack": AUTO_GATE_SLACK,
            "gate_ok": auto_ok,
            "timestamp": _timestamp(),
        },
    ]

    rates, population = kernel_throughput()
    batch_rows = batch_dispatch_rates()
    stress_batch = {
        row["backend"]: row
        for row in batch_rows
        if row["population_label"] == "stress"
    }
    records.append(
        {
            "schema": SCHEMA,
            "kind": "kernel_throughput",
            "probe": "scheduler_stress",
            "population": population,
            "heap_events_s": round(rates["heap"]),
            "calendar_events_s": round(rates["calendar"]),
            "calendar_vs_heap": round(rates["calendar"] / rates["heap"], 3),
            # Same-run Simulator-level rates at the same population:
            # the batched dispatch loop's contribution on top of the
            # raw queue figures above.
            "calendar_batched_events_s": stress_batch["calendar"][
                "batched_events_s"
            ],
            "heap_batched_events_s": stress_batch["heap"]["batched_events_s"],
            "calendar_batched_vs_per_event": stress_batch["calendar"][
                "batched_vs_per_event"
            ],
            "heap_batched_vs_per_event": stress_batch["heap"][
                "batched_vs_per_event"
            ],
            "timestamp": _timestamp(),
        }
    )
    records.append(
        {
            "schema": SCHEMA,
            "kind": "batch_dispatch",
            "probe": "dispatch_hold",
            "rows": batch_rows,
            "timestamp": _timestamp(),
        }
    )

    ff = fastforward_record()
    ff_record = {"schema": SCHEMA, **ff, "timestamp": _timestamp()}
    records.append(ff_record)

    from repro.telemetry import RunnerTelemetry

    telemetry = RunnerTelemetry.from_runner(parallel_runner).to_dict()
    records.append(
        {
            "schema": SCHEMA,
            "kind": "runner_telemetry",
            "max_workers": "auto",
            "parallel_mode": mode,
            "telemetry": telemetry,
            "timestamp": _timestamp(),
        }
    )

    from repro.probes.sampler import resolve_probe_period
    from scripts.check_probe_overhead import measure_probe_overhead

    probe_period = resolve_probe_period()
    probe_ratio, attached_s, detached_s = measure_probe_overhead(
        repeats=PROBE_REPEATS, period=probe_period
    )
    records.append(
        {
            "schema": SCHEMA,
            "kind": "probe_overhead",
            "period": probe_period,
            "repeats": PROBE_REPEATS,
            "attached_s": round(attached_s, 3),
            "detached_s": round(detached_s, 3),
            "attached_vs_detached": round(probe_ratio, 3),
            "timestamp": _timestamp(),
        }
    )

    # The forced-parallel proof: REPRO_JOBS=2 must engage the pool on
    # any box (the auto path above may legitimately resolve to one
    # worker on a one-core runner) and must stay byte-identical.
    auto_workers, auto_source = resolve_workers()
    forced_rows, forced_s, forced_stats = forced_parallel_run()
    forced_identical = forced_rows == calendar_rows
    forced_ok = forced_stats.mode == "parallel" and forced_identical
    records.append(
        {
            "schema": SCHEMA,
            "kind": "runner_parallel",
            "points": len(forced_rows),
            "forced_jobs": FORCED_JOBS,
            "mode": forced_stats.mode,
            "workers": forced_stats.workers,
            "worker_source": forced_stats.worker_source,
            "fallback_reason": forced_stats.fallback_reason,
            "recovered": forced_stats.recovered,
            "auto_workers": auto_workers,
            "auto_worker_source": auto_source,
            "forced_s": round(forced_s, 3),
            "serial_s": round(serial_s, 3),
            "forced_speedup": round(serial_s / forced_s, 3)
            if forced_s
            else None,
            "rows_identical": forced_identical,
            "gate_ok": forced_ok,
            "timestamp": _timestamp(),
        }
    )

    out = os.path.abspath(args.out)
    history, quarantined = load_history(out)
    if quarantined is not None:
        print(
            f"bench_smoke: existing {out} was not a readable JSON list; "
            f"quarantined to {quarantined}, starting a fresh history",
            file=sys.stderr,
        )
    history.extend(records)
    with open(out, "w") as fh:
        json.dump(history, fh, indent=2)

    sweep, sched, auto, kernel = records[:4]
    print(
        f"bench_smoke: {sweep['points']} points, "
        f"serial {sweep['serial_s']}s ({default_sched}), "
        f"{mode} {sweep['parallel_s']}s (x{sweep['speedup']}, "
        f"{workers} workers)"
    )
    if sweep["fallback_reason"]:
        print(f"bench_smoke: pool fallback: {sweep['fallback_reason']}")
    print(
        f"bench_smoke: sched sweep heap {sched['heap_s']}s vs "
        f"calendar {sched['calendar_s']}s "
        f"(x{sched['calendar_vs_heap']} end-to-end)"
    )
    print(
        f"bench_smoke: auto {auto['auto_s']}s vs best static "
        f"{best_static:.3f}s (x{auto['auto_vs_best_static']}, "
        f"best of {AUTO_REPEATS})"
    )
    print(
        f"bench_smoke: kernel stress {kernel['heap_events_s']} ev/s heap "
        f"vs {kernel['calendar_events_s']} ev/s calendar "
        f"(x{kernel['calendar_vs_heap']}) -> {out}"
    )
    for row in batch_rows:
        print(
            f"bench_smoke: batch dispatch [{row['population_label']}/"
            f"{row['backend']}] batched {row['batched_events_s']} ev/s vs "
            f"per-event {row['per_event_events_s']} ev/s "
            f"(x{row['batched_vs_per_event']}); auto {row['auto_events_s']} "
            f"ev/s (x{row['auto_vs_best_static']} of best static)"
        )
    print(
        f"bench_smoke: fastforward steady heap {ff['heap_off_s']}s -> "
        f"{ff['heap_on_s']}s (x{ff['heap_speedup']}), calendar "
        f"{ff['calendar_off_s']}s -> {ff['calendar_on_s']}s "
        f"(x{ff['calendar_speedup']}); rows_identical={ff['rows_identical']}"
    )
    print(
        f"bench_smoke: fastforward irregular paired overhead "
        f"x{ff['irregular_overhead']} "
        f"({ff['irregular_regions']} regions engaged while declining)"
    )
    print(
        f"bench_smoke: pool utilization "
        f"{telemetry['utilization']:.0%} over {telemetry['workers']} workers "
        f"({telemetry['executed']} executed, "
        f"{telemetry['cache_hits']} cache hits)"
    )
    print(
        f"bench_smoke: probe overhead attached {attached_s:.3f}s vs "
        f"detached {detached_s:.3f}s at period {probe_period} "
        f"(x{probe_ratio:.3f} paired)"
    )
    print(
        f"bench_smoke: auto workers {auto_workers} via {auto_source}; "
        f"forced REPRO_JOBS={FORCED_JOBS} -> {forced_stats.mode}, "
        f"{forced_stats.workers} workers, {forced_s:.3f}s "
        f"(x{round(serial_s / forced_s, 3) if forced_s else '?'} vs serial)"
    )
    if not forced_ok:
        reason = (
            f"fell back to serial ({forced_stats.fallback_reason})"
            if forced_stats.mode != "parallel"
            else "produced non-identical rows"
        )
        print(
            f"FAIL: forced REPRO_JOBS={FORCED_JOBS} sweep {reason}",
            file=sys.stderr,
        )
        return 1
    if not auto_ok:
        print(
            f"FAIL: auto scheduler {times['auto']:.3f}s exceeds the "
            f"better static backend {best_static:.3f}s by more than "
            f"{AUTO_GATE_SLACK:.0%}",
            file=sys.stderr,
        )
        return 1
    if not ff["gate_ok"]:
        if not ff["rows_identical"]:
            reason = "produced non-identical result tables"
        elif ff["irregular_regions"]:
            reason = "engaged on the irregular scenario it must decline"
        elif ff["irregular_overhead"] > FF_MAX_OVERHEAD:
            reason = (
                f"costs x{ff['irregular_overhead']} while declining "
                f"(max x{FF_MAX_OVERHEAD})"
            )
        else:
            reason = (
                f"delivered only x{min(ff['heap_speedup'], ff['calendar_speedup'])} "
                f"on the steady scenario (floor x{FF_MIN_SPEEDUP})"
            )
        print(f"FAIL: fast-forward engine {reason}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
