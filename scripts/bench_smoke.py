#!/usr/bin/env python
"""Runner smoke benchmark: the experiment engine's trajectory log.

Runs a fixed 8-point regulation sweep three ways -- in-process serial
under each scheduler backend (``REPRO_SCHED=calendar|heap``) and once
through the process pool -- asserts all three produce byte-identical
summaries, then times the kernel's scheduler-stress probe under both
backends.  The timings are appended to ``BENCH_runner.json`` so
successive PRs accumulate a performance trajectory for the experiment
engine and the simulation kernel under it.

Appended records carry ``schema: 3`` and a ``kind`` discriminator:

* ``runner_sweep``      -- serial vs process-pool wall time (plus the
  scheduler label the sweep ran under);
* ``sched_sweep``       -- the same sweep, heap vs calendar backend:
  the measured end-to-end scheduler comparison;
* ``kernel_throughput`` -- raw scheduler events/s at a 128k-event
  resident population, heap vs calendar (the E22 headline probe);
* ``runner_telemetry``  -- the pool run's execution report
  (:class:`repro.telemetry.RunnerTelemetry`: per-spec seconds,
  worker utilization, cache accounting), nested under ``telemetry``.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--out BENCH_runner.json]

Exit code 0 = all row sets identical (speedups are reported, not
asserted: CI boxes with one core legitimately see ~1x, and tiny
populations legitimately favour the C-implemented heap).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, os.path.join(_HERE, ".."))

from repro.runner import ParallelRunner, RunSpec  # noqa: E402
from repro.sim.kernel import SCHED_ENV, resolve_scheduler  # noqa: E402
from repro.soc.presets import zcu102  # noqa: E402

#: Schema version stamped on every appended record.
SCHEMA = 3

#: The fixed 8-point grid: 4 shares x 2 windows, small critical work
#: so the whole smoke run stays in seconds.
SHARES = (0.05, 0.10, 0.20, 0.40)
WINDOWS = (256, 2048)
CPU_WORK = 1_000
HOGS = 2
PEAK = 16.0


def build_specs():
    """The fixed 8-point sweep, one spec per (share, window)."""
    from repro.regulation.factory import RegulatorSpec

    specs = []
    for share in SHARES:
        for window in WINDOWS:
            reg = RegulatorSpec(
                kind="tightly_coupled",
                window_cycles=window,
                budget_bytes=max(1, round(share * PEAK * window)),
            )
            specs.append(
                RunSpec(
                    config=zcu102(
                        num_accels=HOGS,
                        cpu_work=CPU_WORK,
                        accel_regulator=reg,
                    )
                )
            )
    return specs


def timed_run(max_workers, scheduler=None):
    """Run the sweep uncached; return (rows-as-json, seconds, runner)."""
    previous = os.environ.get(SCHED_ENV)
    if scheduler is not None:
        os.environ[SCHED_ENV] = scheduler
    try:
        runner = ParallelRunner(max_workers=max_workers, cache=None)
        start = time.perf_counter()
        summaries = runner.run(build_specs())
        elapsed = time.perf_counter() - start
    finally:
        if scheduler is not None:
            if previous is None:
                os.environ.pop(SCHED_ENV, None)
            else:
                os.environ[SCHED_ENV] = previous
    return [s.to_json() for s in summaries], elapsed, runner


def kernel_throughput():
    """The E22 scheduler-stress probe: events/s per backend."""
    from benchmarks.bench_e22_kernel import (
        BACKENDS,
        STRESS_POPULATION,
        _bench_scheduler_stress,
    )

    rates = {}
    for name, queue_cls in BACKENDS:
        rate, _ = _bench_scheduler_stress(queue_cls)
        rates[name] = rate
    return rates, STRESS_POPULATION


def _timestamp():
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(_HERE, "..", "BENCH_runner.json"),
        help="timing log to append to (JSON list)",
    )
    args = parser.parse_args(argv)

    default_sched = resolve_scheduler()

    # Three sweeps over the same grid: serial under each backend, then
    # the process pool under the default backend.
    calendar_rows, calendar_s, _ = timed_run(max_workers=1, scheduler="calendar")
    heap_rows, heap_s, _ = timed_run(max_workers=1, scheduler="heap")
    parallel_rows, parallel_s, parallel_runner = timed_run(max_workers=None)
    mode = parallel_runner.last_stats.mode

    if calendar_rows != heap_rows:
        print("FAIL: heap and calendar summaries differ", file=sys.stderr)
        return 1
    if calendar_rows != parallel_rows:
        print("FAIL: serial and parallel summaries differ", file=sys.stderr)
        return 1

    serial_s = calendar_s if default_sched == "calendar" else heap_s
    workers = ParallelRunner().max_workers
    records = [
        {
            "schema": SCHEMA,
            "kind": "runner_sweep",
            "points": len(calendar_rows),
            "workers": workers,
            "parallel_mode": mode,
            "scheduler": default_sched,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "rows_identical": True,
            "timestamp": _timestamp(),
        },
        {
            "schema": SCHEMA,
            "kind": "sched_sweep",
            "points": len(calendar_rows),
            "heap_s": round(heap_s, 3),
            "calendar_s": round(calendar_s, 3),
            "calendar_vs_heap": round(heap_s / calendar_s, 3)
            if calendar_s
            else None,
            "rows_identical": True,
            "timestamp": _timestamp(),
        },
    ]

    rates, population = kernel_throughput()
    records.append(
        {
            "schema": SCHEMA,
            "kind": "kernel_throughput",
            "probe": "scheduler_stress",
            "population": population,
            "heap_events_s": round(rates["heap"]),
            "calendar_events_s": round(rates["calendar"]),
            "calendar_vs_heap": round(rates["calendar"] / rates["heap"], 3),
            "timestamp": _timestamp(),
        }
    )

    from repro.telemetry import RunnerTelemetry

    records.append(
        {
            "schema": SCHEMA,
            "kind": "runner_telemetry",
            "telemetry": RunnerTelemetry.from_runner(parallel_runner).to_dict(),
            "timestamp": _timestamp(),
        }
    )

    out = os.path.abspath(args.out)
    history = []
    if os.path.exists(out):
        try:
            with open(out) as fh:
                history = json.load(fh)
            if not isinstance(history, list):
                history = []
        except (OSError, ValueError):
            history = []
    history.extend(records)
    with open(out, "w") as fh:
        json.dump(history, fh, indent=2)

    sweep, sched, kernel = records[:3]
    telemetry = records[3]["telemetry"]
    print(
        f"bench_smoke: {sweep['points']} points, "
        f"serial {sweep['serial_s']}s ({default_sched}), "
        f"{mode} {sweep['parallel_s']}s (x{sweep['speedup']}, "
        f"{workers} workers)"
    )
    print(
        f"bench_smoke: sched sweep heap {sched['heap_s']}s vs "
        f"calendar {sched['calendar_s']}s "
        f"(x{sched['calendar_vs_heap']} end-to-end)"
    )
    print(
        f"bench_smoke: kernel stress {kernel['heap_events_s']} ev/s heap "
        f"vs {kernel['calendar_events_s']} ev/s calendar "
        f"(x{kernel['calendar_vs_heap']}) -> {out}"
    )
    print(
        f"bench_smoke: pool utilization "
        f"{telemetry['utilization']:.0%} over {telemetry['workers']} workers "
        f"({telemetry['executed']} executed, "
        f"{telemetry['cache_hits']} cache hits)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
