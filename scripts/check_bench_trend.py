#!/usr/bin/env python
"""Kernel-throughput trend gate for CI.

Compares the newest ``kernel_throughput`` record in
``BENCH_runner.json`` against the previous one and fails when either
backend's scheduler-stress rate regressed by more than
``--threshold`` (default 15%).  The smoke benchmark appends one such
record per run, so the log is the kernel's performance trajectory
across PRs; this gate turns a silent drop in that trajectory into a
red build instead of a note someone may read later.

The comparison is record-over-record within one file, not an absolute
floor: the log tracks dev machines, and absolute events/s cannot gate
arbitrary CI boxes.  Runs with fewer than two records pass with a
note (a fresh log has no trend yet).

Usage::

    python scripts/check_bench_trend.py [--file BENCH_runner.json] \
        [--threshold 0.15]

Exit code 0 = no regression beyond the threshold.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))

#: Rate fields of a ``kernel_throughput`` record the gate judges.
RATE_KEYS = ("heap_events_s", "calendar_events_s")


def find_regressions(history, threshold):
    """Newest-vs-previous comparison of the throughput records.

    Returns ``(regressions, previous, newest)`` where ``regressions``
    is a list of ``(key, old, new, drop)`` tuples; ``previous`` and
    ``newest`` are ``None`` when the file holds fewer than two
    ``kernel_throughput`` records.
    """
    records = [
        r
        for r in history
        if isinstance(r, dict) and r.get("kind") == "kernel_throughput"
    ]
    if len(records) < 2:
        return [], None, None
    previous, newest = records[-2], records[-1]
    regressions = []
    for key in RATE_KEYS:
        old, new = previous.get(key), newest.get(key)
        if not old or new is None:
            continue
        drop = 1.0 - new / old
        if drop > threshold:
            regressions.append((key, old, new, drop))
    return regressions, previous, newest


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--file",
        default=os.path.join(_HERE, "..", "BENCH_runner.json"),
        help="timing log to check (JSON list)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="allowed fractional drop vs the previous record",
    )
    args = parser.parse_args(argv)

    path = os.path.abspath(args.file)
    if not os.path.exists(path):
        print(f"bench trend: no log at {path}; nothing to gate")
        return 0
    try:
        with open(path) as fh:
            history = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(history, list):
        print(f"FAIL: {path} is not a JSON list", file=sys.stderr)
        return 1

    regressions, previous, newest = find_regressions(history, args.threshold)
    if previous is None:
        print(
            "bench trend: fewer than two kernel_throughput records; "
            "no trend to gate yet"
        )
        return 0

    print(
        f"bench trend: {previous.get('timestamp')} -> "
        f"{newest.get('timestamp')} (threshold {args.threshold:.0%})"
    )
    for key in RATE_KEYS:
        old, new = previous.get(key), newest.get(key)
        if not old or new is None:
            continue
        print(f"bench trend: {key} {old:,} -> {new:,} ({new / old - 1.0:+.1%})")
    if regressions:
        for key, old, new, drop in regressions:
            print(
                f"FAIL: {key} regressed {drop:.1%} "
                f"({old:,} -> {new:,} events/s)",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
