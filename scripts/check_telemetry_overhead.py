#!/usr/bin/env python
"""Telemetry-overhead gate for CI.

Runs the E22 ``scheduler_stress`` probe (the kernel's headline
throughput microbenchmark) under ``REPRO_TELEMETRY=on`` and ``off``
in the same process and fails when the *enabled* configuration is
more than ``--tolerance`` slower than the disabled one.  The kernel
hot path carries no push-style instrumentation at all (see
``docs/observability.md``); push-style overhead creeping onto the
dispatch path shows up as the enabled run falling behind the
disabled one, which is exactly the gap this gate rejects.

Same-run comparison is deliberate: the absolute events/s figures in
``BENCH_runner.json`` track dev machines and cannot gate CI boxes.
The measurement is *paired*: samples are interleaved (on, off, on,
off, ...) after a discarded warm-up, each adjacent pair yields an
on/off ratio, and the gate judges the **median pair ratio** -- drift
(frequency scaling, noisy neighbours) hits both halves of a pair
almost equally and cancels in the ratio, so shared-box noise does
not masquerade as telemetry overhead.

Usage::

    PYTHONPATH=src python scripts/check_telemetry_overhead.py \
        [--repeats 5] [--tolerance 0.02]

Exit code 0 = within tolerance.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, os.path.join(_HERE, ".."))

from benchmarks.bench_e22_kernel import (  # noqa: E402
    BACKENDS,
    _bench_scheduler_stress,
)
from repro.telemetry import (  # noqa: E402
    TELEMETRY_ENV,
    MetricsRegistry,
    set_registry,
)


def _sample(mode: str) -> float:
    """One probe rate with telemetry forced to ``mode``."""
    os.environ[TELEMETRY_ENV] = mode
    # Rebuild the process-wide registry so it re-reads the env var.
    set_registry(MetricsRegistry())
    queue_cls = dict(BACKENDS)["calendar"]
    return _bench_scheduler_stress(queue_cls)[0]


def _measure(repeats: int) -> "tuple":
    """Interleaved paired measurement.

    Returns ``(ratio, rate_on, rate_off)``: the median on/off ratio
    over ``repeats`` adjacent pairs plus the best-of rates (the
    latter only for display -- the gate judges the paired ratio).
    """
    _sample("off")  # discarded warm-up
    ratios = []
    rates = {"on": [], "off": []}
    for _ in range(repeats):
        rate_on = _sample("on")
        rate_off = _sample("off")
        rates["on"].append(rate_on)
        rates["off"].append(rate_off)
        ratios.append(rate_on / rate_off)
    return statistics.median(ratios), max(rates["on"]), max(rates["off"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved on/off sample pairs (median ratio)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional slowdown of 'on' vs 'off'")
    args = parser.parse_args(argv)

    previous = os.environ.get(TELEMETRY_ENV)
    try:
        ratio, rate_on, rate_off = _measure(args.repeats)
    finally:
        if previous is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = previous
        set_registry(MetricsRegistry())

    print(
        f"telemetry overhead: on {rate_on:,.0f} ev/s, "
        f"off {rate_off:,.0f} ev/s (median paired on/off {ratio:.3f}, "
        f"tolerance {args.tolerance:.0%})"
    )
    if ratio < 1.0 - args.tolerance:
        print(
            "FAIL: enabled-telemetry kernel throughput regressed "
            f"{1.0 - ratio:.1%} vs disabled (same run, paired)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
