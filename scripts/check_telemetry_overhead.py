#!/usr/bin/env python
"""Telemetry-overhead gate for CI.

Runs the E22 ``scheduler_stress`` probe (the kernel's headline
throughput microbenchmark) under ``REPRO_TELEMETRY=on`` and ``off``
in the same process and fails when the *disabled* configuration is
more than ``--tolerance`` slower than the enabled one.  The kernel
hot path carries no push-style instrumentation at all (see
``docs/observability.md``), so any same-run gap beyond noise means
overhead crept onto the dispatch path.

Same-run comparison is deliberate: the absolute events/s figures in
``BENCH_runner.json`` track dev machines and cannot gate CI boxes.

Usage::

    PYTHONPATH=src python scripts/check_telemetry_overhead.py \
        [--repeats 3] [--tolerance 0.02]

Exit code 0 = within tolerance.
"""

from __future__ import annotations

import argparse
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, os.path.join(_HERE, ".."))

from benchmarks.bench_e22_kernel import (  # noqa: E402
    BACKENDS,
    _bench_scheduler_stress,
)
from repro.telemetry import (  # noqa: E402
    TELEMETRY_ENV,
    MetricsRegistry,
    set_registry,
)


def _measure(mode: str, repeats: int) -> float:
    """Best-of-N probe rate with telemetry forced to ``mode``."""
    os.environ[TELEMETRY_ENV] = mode
    # Rebuild the process-wide registry so it re-reads the env var.
    set_registry(MetricsRegistry())
    queue_cls = dict(BACKENDS)["calendar"]
    return max(_bench_scheduler_stress(queue_cls)[0] for _ in range(repeats))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="probe runs per setting (best-of)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="allowed fractional slowdown of 'off' vs 'on'")
    args = parser.parse_args(argv)

    previous = os.environ.get(TELEMETRY_ENV)
    try:
        rate_on = _measure("on", args.repeats)
        rate_off = _measure("off", args.repeats)
    finally:
        if previous is None:
            os.environ.pop(TELEMETRY_ENV, None)
        else:
            os.environ[TELEMETRY_ENV] = previous
        set_registry(MetricsRegistry())

    ratio = rate_off / rate_on
    print(
        f"telemetry overhead: on {rate_on:,.0f} ev/s, "
        f"off {rate_off:,.0f} ev/s (off/on {ratio:.3f}, "
        f"tolerance {args.tolerance:.0%})"
    )
    if rate_off < rate_on * (1.0 - args.tolerance):
        print(
            "FAIL: disabled-telemetry kernel throughput regressed "
            f"{1.0 - ratio:.1%} vs enabled (same run)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
