"""E19 -- Ablation: split vs combined address channels under
selective regulation.

The IP gates AR and AW independently (`regulate_reads` /
`regulate_writes`).  That only pays off if the *port* also keeps the
two directions in separate queues: with one combined queue, a write
stalled by the write-channel regulator blocks every read queued
behind it (head-of-line coupling), and the nominally-free read
channel inherits the write throttle.

Scenario: an open-loop mixed engine (interleaved reads and writes on
an external clock, as a camera ISP does) whose writes are regulated
to 10% of peak while reads are free.  The source is open-loop on
purpose: a closed-loop DMA would stall its own generation when the
write channel backs up and mask the port-level coupling.  Swept: the
port's queue organisation.
"""

from __future__ import annotations

from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.dram.controller import DramController
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import component_rng
from repro.soc.presets import zcu102_dram, zcu102_interconnect
from repro.traffic.arrivals import OpenLoopConfig, OpenLoopMaster
from repro.traffic.patterns import SequentialPattern

from benchmarks.common import PEAK, report

MB = 1 << 20
SHARE = 0.10
WINDOW = 256
HORIZON = 300_000
MEAN_GAP = 120.0  # 256 B per ~120 cyc = 2.1 B/cyc offered, half writes


def _run(split):
    sim = Simulator()
    dram = DramController(sim, zcu102_dram())
    base_ic = zcu102_interconnect()
    interconnect = Interconnect(
        sim,
        InterconnectConfig(
            arbiter=base_ic.arbiter,
            addr_cycles=base_ic.addr_cycles,
            fwd_latency=base_ic.fwd_latency,
            resp_latency=base_ic.resp_latency,
            split_addr_channels=split,
        ),
    )
    interconnect.attach_memory(dram)
    regulator = TightlyCoupledRegulator(
        sim,
        TightlyCoupledConfig(
            window_cycles=WINDOW,
            budget_bytes=max(1, round(SHARE * PEAK * WINDOW)),
            regulate_reads=False,  # writes only
        ),
    )
    port = MasterPort(
        sim,
        PortConfig(name="isp", split_channels=split, max_outstanding=16),
        regulator=regulator,
    )
    interconnect.attach_port(port)
    read_latencies = []
    port.completion_observers.append(
        lambda txn: read_latencies.append(txn.latency)
        if not txn.is_write
        else None
    )
    engine = OpenLoopMaster(
        sim,
        port,
        OpenLoopConfig(
            pattern=SequentialPattern(0x1000_0000, 8 * MB, 256),
            arrival="poisson",
            mean_gap_cycles=MEAN_GAP,
            burst_len=16,
            write_ratio=0.5,
            rng=component_rng(9, "isp"),
        ),
    )
    engine.start()
    sim.run(until=HORIZON)
    read_latencies.sort()
    p99 = read_latencies[int(0.99 * (len(read_latencies) - 1))]
    return {
        "port_queues": "split(AR/AW)" if split else "combined",
        "reads_completed": len(read_latencies),
        "read_p99_lat": p99,
        "backlog_end": engine.backlog,
    }


def run_e19():
    return [_run(False), _run(True)]


def test_e19_split_channels(benchmark):
    rows = benchmark.pedantic(run_e19, rounds=1, iterations=1)
    report(
        "e19_split_channels",
        rows,
        "E19: write-only regulation of an open-loop mixed engine -- "
        "combined vs split address queues at the port "
        f"(write budget {SHARE:.0%} of peak; reads unregulated)",
    )
    combined, split = rows
    # Combined queue: free reads queue behind throttled writes and
    # inherit their latency.
    # Split queues: reads flow at memory speed.
    assert split["read_p99_lat"] < combined["read_p99_lat"] * 0.5
    assert split["reads_completed"] >= combined["reads_completed"]
    # The write backlog (throttled channel) exists either way.
    assert split["backlog_end"] > 0
