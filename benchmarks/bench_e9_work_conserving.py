"""E9 -- Extension: CMRI-style work-conserving regulation.

The authors' Controlled Memory Request Injection line of work argues
that a regulated (or PREM-scheduled) system leaves most of the
accelerator bandwidth unused, and that *injecting* requests while the
memory system is idle recovers it without breaking the guarantee.
The tightly-coupled IP is the natural host for that policy: its stall
comparator can see the controller's queue-empty signal every cycle.

This bench compares, at the same configured budget (10% of peak per
hog, 256-cycle windows):

* plain regulation (credit only);
* work-conserving regulation (credit + idle injection);
* no regulation (the upper bound on hog bandwidth, lower bound on
  victim QoS).
"""

from __future__ import annotations

from repro.soc.experiment import PlatformResult
from repro.soc.platform import Platform

from benchmarks.common import loaded_config, report, tc_spec

SHARE = 0.10
WINDOW = 256
HOGS = 4


def _run(spec):
    platform = Platform(
        loaded_config(num_accels=HOGS, accel_regulator=spec)
    )
    elapsed = platform.run(8_000_000)
    result = PlatformResult(platform, elapsed)
    hog_bw = sum(
        result.master(f"acc{i}").bandwidth_bytes_per_cycle
        for i in range(HOGS)
    )
    injected = sum(
        getattr(reg, "injected_transactions", 0)
        for reg in platform.regulators.values()
    )
    return {
        "hog_bw_B_cyc": hog_bw,
        "injected_txns": injected,
        "critical_runtime": result.critical_runtime(),
        "critical_p99": result.critical().latency_p99,
        "dram_util": result.dram.utilization,
    }


def run_e9():
    rows = []
    plain = _run(tc_spec(SHARE, window_cycles=WINDOW))
    plain["scheme"] = "tc_plain"
    rows.append(plain)
    conserving = _run(
        tc_spec(SHARE, window_cycles=WINDOW, work_conserving=True)
    )
    conserving["scheme"] = "tc_work_conserving"
    rows.append(conserving)
    unreg = _run(None)
    unreg["scheme"] = "unregulated"
    rows.append(unreg)
    return rows


def test_e9_work_conserving(benchmark):
    rows = benchmark.pedantic(run_e9, rounds=1, iterations=1)
    report(
        "e9_work_conserving",
        rows,
        "E9: work-conserving (CMRI-style) injection vs plain regulation "
        f"({HOGS} hogs at {SHARE:.0%} of peak, window={WINDOW} cyc)",
        columns=[
            "scheme", "hog_bw_B_cyc", "injected_txns",
            "critical_runtime", "critical_p99", "dram_util",
        ],
    )
    by_scheme = {r["scheme"]: r for r in rows}
    plain = by_scheme["tc_plain"]
    wc = by_scheme["tc_work_conserving"]
    unreg = by_scheme["unregulated"]
    # Injection recovers a meaningful chunk of idle bandwidth...
    assert wc["hog_bw_B_cyc"] > plain["hog_bw_B_cyc"] * 1.2
    assert wc["injected_txns"] > 0
    assert wc["dram_util"] > plain["dram_util"]
    # ...while staying far from unregulated interference levels.
    assert wc["critical_runtime"] <= plain["critical_runtime"] * 1.25
    assert wc["critical_runtime"] < unreg["critical_runtime"]
    assert wc["hog_bw_B_cyc"] < unreg["hog_bw_B_cyc"]
