"""E3 -- The titular axis: regulation window granularity.

Four hogs regulated to the same long-run rate (10% of peak each)
with replenish windows from 64 cycles to 256k cycles (the latter
approximating a software-period granularity).  Two effects appear as
the window coarsens:

* *burstiness*: the hog's traffic concentrates at the window start --
  measured as the worst bytes observed in any fine (1024-cycle)
  analysis bin relative to the budget scaled to that bin;
* *victim impact*: the critical core's tail latency grows because it
  meets the full burst head-on.

The paper's point: only fine windows turn average-rate reservation
into fine-grained QoS control.  A burst-aware vs per-beat-charging
ablation is included at one window size.
"""

from __future__ import annotations

from repro.analysis.sweep import geometric_space
from repro.monitor.window import overshoot_from_bins

from benchmarks.common import (
    PEAK,
    experiment_spec,
    loaded_config,
    report,
    run_specs,
    tc_spec,
)

SHARE = 0.10
ANALYSIS_BIN = 1024
WINDOWS = geometric_space(64, 262_144, factor=8)  # 64 .. 256k cycles
HORIZON = 8_000_000


def _spec(window_cycles, burst_aware=True):
    # The fine-grained analysis monitor rides along inside the run
    # spec; its per-bin byte counts come back in the summary.
    reg = tc_spec(SHARE, window_cycles=window_cycles, burst_aware=burst_aware)
    return experiment_spec(
        loaded_config(num_accels=4, accel_regulator=reg),
        max_cycles=HORIZON,
        monitor_master="acc0",
        monitor_bin_cycles=ANALYSIS_BIN,
    )


def _row(label, window_cycles, summary):
    budget_per_bin = SHARE * PEAK * ANALYSIS_BIN
    overshoot = overshoot_from_bins(summary.monitor_bins, budget_per_bin)
    return {
        "window_cyc": label,
        "window_us_at_250MHz": window_cycles / 250.0,
        "max_burst_ratio": overshoot["max_overshoot_ratio"],
        "bin_violation_frac": overshoot["violation_fraction"],
        "critical_runtime": summary.critical_runtime(),
        "critical_p99": summary.critical().latency_p99,
    }


def run_e3():
    # Full window sweep plus the burst-aware ablation, as one batch.
    specs = [_spec(window) for window in WINDOWS]
    specs.append(_spec(512, burst_aware=False))
    results = run_specs(specs)
    rows = [
        _row(window, window, s) for window, s in zip(WINDOWS, results)
    ]
    rows.append(_row("512(no-BA)", 512, results[-1]))
    return rows


def test_e3_granularity(benchmark):
    rows = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    report(
        "e3_granularity",
        rows,
        "E3: regulation window sweep at equal long-run rate "
        f"({SHARE:.0%} of peak per hog, 4 hogs; burst ratio measured in "
        f"{ANALYSIS_BIN}-cycle bins)",
    )
    swept = [r for r in rows if isinstance(r["window_cyc"], int)]
    ratios = [r["max_burst_ratio"] for r in swept]
    # Coarse windows allow much larger instantaneous bursts (the
    # ceiling is what contention physically lets one hog move in an
    # analysis bin, ~2.5x the budget here).
    assert ratios[-1] > 2 * ratios[0]
    # Fine windows keep every analysis bin essentially within budget
    # (at most one in-flight burst of slack).
    assert ratios[0] <= 1.2
    assert swept[0]["bin_violation_frac"] < 0.10
    # Coarse windows violate most bins.
    assert swept[-1]["bin_violation_frac"] > 0.5
    # Victim tail latency degrades with coarser windows.
    assert swept[-1]["critical_p99"] > swept[0]["critical_p99"]
    # Burst-aware ablation: disabling it allows bounded overdraw, so
    # at the same window more bins violate the budget.
    no_ba = rows[-1]
    fine = next(r for r in swept if r["window_cyc"] == 512)
    assert no_ba["bin_violation_frac"] >= fine["bin_violation_frac"]
