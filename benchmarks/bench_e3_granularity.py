"""E3 -- The titular axis: regulation window granularity.

Four hogs regulated to the same long-run rate (10% of peak each)
with replenish windows from 64 cycles to 256k cycles (the latter
approximating a software-period granularity).  Two effects appear as
the window coarsens:

* *burstiness*: the hog's traffic concentrates at the window start --
  measured as the worst bytes observed in any fine (1024-cycle)
  analysis bin relative to the budget scaled to that bin;
* *victim impact*: the critical core's tail latency grows because it
  meets the full burst head-on.

The paper's point: only fine windows turn average-rate reservation
into fine-grained QoS control.  A burst-aware vs per-beat-charging
ablation is included at one window size.
"""

from __future__ import annotations

from repro.analysis.sweep import geometric_space
from repro.monitor.window import WindowedBandwidthMonitor
from repro.soc.experiment import PlatformResult
from repro.soc.platform import Platform

from benchmarks.common import PEAK, loaded_config, report, tc_spec

SHARE = 0.10
ANALYSIS_BIN = 1024
WINDOWS = geometric_space(64, 262_144, factor=8)  # 64 .. 256k cycles


def _run_with_window(window_cycles, burst_aware=True):
    spec = tc_spec(SHARE, window_cycles=window_cycles, burst_aware=burst_aware)
    config = loaded_config(num_accels=4, accel_regulator=spec)
    platform = Platform(config)
    fine_monitor = WindowedBandwidthMonitor(
        platform.ports["acc0"], ANALYSIS_BIN
    )
    elapsed = platform.run(8_000_000)
    result = PlatformResult(platform, elapsed)
    budget_per_bin = SHARE * PEAK * ANALYSIS_BIN
    horizon = (elapsed // ANALYSIS_BIN) * ANALYSIS_BIN
    overshoot = fine_monitor.overshoot_report(budget_per_bin, horizon)
    return result, overshoot


def run_e3():
    rows = []
    for window in WINDOWS:
        result, overshoot = _run_with_window(window)
        rows.append(
            {
                "window_cyc": window,
                "window_us_at_250MHz": window / 250.0,
                "max_burst_ratio": overshoot["max_overshoot_ratio"],
                "bin_violation_frac": overshoot["violation_fraction"],
                "critical_runtime": result.critical_runtime(),
                "critical_p99": result.critical().latency_p99,
            }
        )
    # Ablation: per-beat (non-burst-aware) charging at a fine window.
    result, overshoot = _run_with_window(512, burst_aware=False)
    rows.append(
        {
            "window_cyc": "512(no-BA)",
            "window_us_at_250MHz": 512 / 250.0,
            "max_burst_ratio": overshoot["max_overshoot_ratio"],
            "bin_violation_frac": overshoot["violation_fraction"],
            "critical_runtime": result.critical_runtime(),
            "critical_p99": result.critical().latency_p99,
        }
    )
    return rows


def test_e3_granularity(benchmark):
    rows = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    report(
        "e3_granularity",
        rows,
        "E3: regulation window sweep at equal long-run rate "
        f"({SHARE:.0%} of peak per hog, 4 hogs; burst ratio measured in "
        f"{ANALYSIS_BIN}-cycle bins)",
    )
    swept = [r for r in rows if isinstance(r["window_cyc"], int)]
    ratios = [r["max_burst_ratio"] for r in swept]
    # Coarse windows allow much larger instantaneous bursts (the
    # ceiling is what contention physically lets one hog move in an
    # analysis bin, ~2.5x the budget here).
    assert ratios[-1] > 2 * ratios[0]
    # Fine windows keep every analysis bin essentially within budget
    # (at most one in-flight burst of slack).
    assert ratios[0] <= 1.2
    assert swept[0]["bin_violation_frac"] < 0.10
    # Coarse windows violate most bins.
    assert swept[-1]["bin_violation_frac"] > 0.5
    # Victim tail latency degrades with coarser windows.
    assert swept[-1]["critical_p99"] > swept[0]["critical_p99"]
    # Burst-aware ablation: disabling it allows bounded overdraw, so
    # at the same window more bins violate the budget.
    no_ba = rows[-1]
    fine = next(r for r in swept if r["window_cyc"] == 512)
    assert no_ba["bin_violation_frac"] >= fine["bin_violation_frac"]
