"""E17 -- Portability: the headline results on a second platform.

The paper's evaluation is tied to one board; a credible claim must
survive a platform change.  This bench replays the two headline
experiments (interference characterization E1 and regulation accuracy
E2) on the KV260-class preset -- half the channel width, slower
timing -- and asserts the same qualitative shapes.
"""

from __future__ import annotations

from repro.analysis.metrics import regulation_error, slowdown
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment
from repro.soc.presets import kv260

from benchmarks.common import report

KV_PEAK = 8.0
SHARES = (0.05, 0.10, 0.20, 0.40)
HORIZON = 400_000


BURST_BYTES = 256


def _quantization_floor_pct(share, window=1024):
    """Worst-case undershoot from whole-burst admission, in percent.

    A window budget admits only ``floor(budget / burst)`` bursts; the
    remainder is credit the burst-aware check never spends.
    """
    budget = max(1, round(share * KV_PEAK * window))
    usable = (budget // BURST_BYTES) * BURST_BYTES
    return 100 * (usable / budget - 1)


def _accuracy_row(share):
    window = 1024
    tc = RegulatorSpec(
        kind="tightly_coupled", window_cycles=window,
        budget_bytes=max(1, round(share * KV_PEAK * window)),
    )
    result = run_experiment(
        kv260(num_accels=1, cpu_work=1, accel_regulator=tc),
        max_cycles=HORIZON, stop_when_critical_done=False,
    )
    achieved = result.master("acc0").bytes_moved / HORIZON
    configured = share * KV_PEAK
    return {
        "share": share,
        "configured_B_cyc": configured,
        "achieved_B_cyc": achieved,
        "error_pct": 100 * regulation_error(achieved, configured),
    }


def run_e17():
    solo = run_experiment(kv260(num_accels=0, cpu_work=2_000))
    base = solo.critical_runtime()
    interference_rows = []
    for hogs in (0, 1, 2, 4):
        result = run_experiment(kv260(num_accels=hogs, cpu_work=2_000))
        interference_rows.append(
            {
                "table": "interference",
                "x": hogs,
                "value": slowdown(result.critical_runtime(), base),
            }
        )
    accuracy_rows = []
    for share in SHARES:
        row = _accuracy_row(share)
        accuracy_rows.append(
            {
                "table": "accuracy",
                "x": row["share"],
                "value": row["error_pct"],
            }
        )
    return interference_rows + accuracy_rows


def test_e17_cross_platform(benchmark):
    rows = benchmark.pedantic(run_e17, rounds=1, iterations=1)
    report(
        "e17_cross_platform",
        rows,
        "E17: headline shapes on the KV260-class preset "
        "(interference: slowdown vs hogs; accuracy: TC error % vs share)",
        columns=["table", "x", "value"],
    )
    interference = [r["value"] for r in rows if r["table"] == "interference"]
    accuracy = [r["value"] for r in rows if r["table"] == "accuracy"]
    # E1 shape: monotone slowdown, severe with 4 hogs on the narrow
    # channel.
    assert all(b >= a * 0.99 for a, b in zip(interference, interference[1:]))
    assert interference[-1] > 3.0
    # E2 shape: the IP never exceeds configured, and any undershoot
    # is explained by whole-burst quantization (computable per point;
    # the narrow channel makes small shares coarser, e.g. -37% at a
    # 5% share where the budget fits a single 256 B burst).
    assert all(err <= 1.0 for err in accuracy)
    for share, err in zip(SHARES, accuracy):
        assert err >= _quantization_floor_pct(share) - 2.0
