"""E7 -- Reconfiguration / response latency table.

A running hog's budget is cut from 50% to 10% of peak mid-run.  Two
latencies are reported per scheme:

* *programming latency* -- from the QoS manager's request to the new
  register value being live (a few bus cycles for the IP's AXI-Lite
  write vs the next period boundary for software MemGuard);
* *enforcement delay* -- measured from the request to the first
  1024-cycle analysis bin whose traffic conforms to the new budget.

This is the "fine-grained QoS *control*" half of the title: only the
tightly-coupled IP can retarget an actor within microseconds.
"""

from __future__ import annotations

from repro.monitor.window import WindowedBandwidthMonitor
from repro.qos.budget import BandwidthBudget
from repro.soc.platform import Platform
from repro.soc.presets import zcu102

from benchmarks.common import PEAK, memguard_spec, report, tc_spec

ANALYSIS_BIN = 1024
CHANGE_AT = 150_000
HORIZON = 500_000
OLD_SHARE, NEW_SHARE = 0.50, 0.10


def _measure(spec):
    config = zcu102(num_cpus=1, num_accels=1, cpu_work=1, accel_regulator=spec)
    platform = Platform(config)
    monitor = WindowedBandwidthMonitor(platform.ports["acc0"], ANALYSIS_BIN)
    new_budget = BandwidthBudget.from_fraction_of_peak(NEW_SHARE, PEAK)

    events = []

    def reconfigure():
        events.append(platform.qos_manager.set_budget("acc0", new_budget))

    platform.sim.schedule_at(CHANGE_AT, reconfigure)
    platform.run(HORIZON, stop_when_critical_done=False)

    event = events[0]
    per_bin_budget = NEW_SHARE * PEAK * ANALYSIS_BIN
    bins = monitor.window_bytes(HORIZON)
    first_bin = CHANGE_AT // ANALYSIS_BIN + 1
    conform_at = None
    for index in range(first_bin, len(bins)):
        if bins[index] <= per_bin_budget * 1.10:
            conform_at = index * ANALYSIS_BIN
            break
    enforcement = (conform_at - CHANGE_AT) if conform_at is not None else -1
    return {
        "programming_latency_cyc": event.latency,
        "enforcement_delay_cyc": enforcement,
        "enforcement_delay_us": enforcement / 250.0,
    }


def run_e7():
    rows = []
    tc = _measure(tc_spec(OLD_SHARE, window_cycles=1024, reconfig_latency=4))
    tc["scheme"] = "tightly_coupled"
    rows.append(tc)
    mg = _measure(memguard_spec(OLD_SHARE, period_cycles=100_000))
    mg["scheme"] = "memguard"
    rows.append(mg)
    return rows


def test_e7_response_latency(benchmark):
    rows = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    report(
        "e7_response",
        rows,
        f"E7: budget retarget {OLD_SHARE:.0%} -> {NEW_SHARE:.0%} of peak at "
        f"cycle {CHANGE_AT} (enforcement = first conforming "
        f"{ANALYSIS_BIN}-cycle bin)",
        columns=[
            "scheme",
            "programming_latency_cyc",
            "enforcement_delay_cyc",
            "enforcement_delay_us",
        ],
    )
    by_scheme = {r["scheme"]: r for r in rows}
    tc, mg = by_scheme["tightly_coupled"], by_scheme["memguard"]
    # Register write lands within a handful of bus cycles.
    assert tc["programming_latency_cyc"] <= 8
    # MemGuard programs at the next period boundary.
    assert mg["programming_latency_cyc"] >= 10_000
    # Enforcement: the IP conforms within a couple of windows; the
    # software baseline needs (a good part of) a period.
    assert 0 <= tc["enforcement_delay_cyc"] <= 4 * 1024
    assert mg["enforcement_delay_cyc"] > tc["enforcement_delay_cyc"] * 5
