"""E15 -- Baseline: TDMA slots vs rate-based regulation.

TDMA is the composability gold standard of the hard-real-time
literature: each master owns a time slot, worst-case interference is
one frame, full stop.  Its cost is rigidity -- an idle slot is wasted
even while other masters starve, and a latency-sensitive request that
just missed its slot waits a whole frame.

Both schemes are configured for the *same nominal share* (each of 4
hogs gets 1/8 of the resource; the critical CPU is unregulated in
both).  Rate-based regulation at the same share delivers comparable
victim protection with higher hog throughput and far lower
worst-case wait for sparse traffic.
"""

from __future__ import annotations

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment

from benchmarks.common import PEAK, loaded_config, report

HOGS = 4
SLOT = 512
FRAME_SLOTS = 8  # 4 hog slots + 4 idle (CPU headroom)
SHARE = 1 / FRAME_SLOTS  # nominal per-hog share: 12.5%


def _row(scheme, result):
    hog_bw = sum(
        result.master(f"acc{i}").bandwidth_bytes_per_cycle
        for i in range(HOGS)
    )
    return {
        "scheme": scheme,
        "hog_bw_B_cyc": hog_bw,
        "critical_runtime": result.critical_runtime(),
        "critical_p99": result.critical().latency_p99,
        "dram_util": result.dram.utilization,
    }


def run_e15():
    rows = []
    tdma_spec = RegulatorSpec(
        kind="tdma", window_cycles=SLOT, tdma_slots=FRAME_SLOTS
    )
    rows.append(
        _row("tdma", run_experiment(
            loaded_config(num_accels=HOGS, accel_regulator=tdma_spec)
        ))
    )
    rate_spec = RegulatorSpec(
        kind="tightly_coupled",
        window_cycles=SLOT,
        budget_bytes=round(SHARE * PEAK * SLOT),
    )
    rows.append(
        _row("tightly_coupled", run_experiment(
            loaded_config(num_accels=HOGS, accel_regulator=rate_spec)
        ))
    )
    rows.append(
        _row("unregulated", run_experiment(loaded_config(num_accels=HOGS)))
    )
    return rows


def test_e15_tdma_vs_rate(benchmark):
    rows = benchmark.pedantic(run_e15, rounds=1, iterations=1)
    report(
        "e15_tdma",
        rows,
        f"E15: TDMA ({HOGS} of {FRAME_SLOTS} slots x {SLOT} cyc) vs "
        f"rate-based regulation at the same nominal share "
        f"({SHARE:.1%} of peak per hog)",
    )
    by_scheme = {r["scheme"]: r for r in rows}
    tdma = by_scheme["tdma"]
    rate = by_scheme["tightly_coupled"]
    unreg = by_scheme["unregulated"]
    # Both protect the critical task vs unregulated.
    assert tdma["critical_runtime"] < unreg["critical_runtime"]
    assert rate["critical_runtime"] < unreg["critical_runtime"]
    # Rate-based regulation extracts at least as much hog throughput
    # at the same nominal share (TDMA can't use another slot's time,
    # and slot-fit checks waste slot tails).
    assert rate["hog_bw_B_cyc"] >= tdma["hog_bw_B_cyc"]
    # TDMA's hogs are bounded by their time share of the achievable
    # bandwidth.
    assert tdma["hog_bw_B_cyc"] <= HOGS * SHARE * PEAK * 1.05
