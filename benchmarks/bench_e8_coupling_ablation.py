"""E8 -- Ablation: what "tightly-coupled" buys.

The same regulator logic fed by increasingly *stale* monitoring
(``feedback_delay`` between a charge and its visibility to the
admission comparator) models a loosely-coupled design where a
system-level monitor is polled across the fabric.  With stale
feedback the regulator admits traffic against credit that is already
spent: the achieved rate and the per-window burst both inflate, and
the victim's latency grows -- quantifying the paper's architectural
argument for embedding the monitor in the regulation IP itself.
"""

from __future__ import annotations

from repro.soc.experiment import run_experiment

from benchmarks.common import PEAK, loaded_config, report, tc_spec

SHARE = 0.10
WINDOW = 1024
DELAYS = (0, 64, 256, 1024, 4096, 16_384)


def run_e8():
    configured = SHARE * PEAK
    rows = []
    for delay in DELAYS:
        spec = tc_spec(SHARE, window_cycles=WINDOW, feedback_delay=delay)
        result = run_experiment(
            loaded_config(num_accels=4, accel_regulator=spec)
        )
        hog_rate = result.master("acc0").bandwidth_bytes_per_cycle
        rows.append(
            {
                "feedback_delay_cyc": delay,
                "hog_rate_B_cyc": hog_rate,
                "rate_vs_configured": hog_rate / configured,
                "critical_p99": result.critical().latency_p99,
                "critical_runtime": result.critical_runtime(),
            }
        )
    return rows


def test_e8_coupling_ablation(benchmark):
    rows = benchmark.pedantic(run_e8, rounds=1, iterations=1)
    report(
        "e8_coupling_ablation",
        rows,
        "E8: monitor-to-regulator feedback delay ablation "
        f"(4 hogs at {SHARE:.0%} of peak, window={WINDOW} cyc; delay 0 = "
        "the paper's tightly-coupled design)",
    )
    # Tight coupling: the achieved rate never exceeds the configured
    # one (burst quantization keeps it slightly below).
    assert rows[0]["rate_vs_configured"] <= 1.0
    # Stale feedback admits over-budget traffic: the achieved rate
    # grows (near-)monotonically with the staleness -- small delays
    # first eat the quantization undershoot, and a delay many windows
    # deep lets the hog sustainably exceed its budget despite the
    # debt accounting.
    rates = [r["rate_vs_configured"] for r in rows]
    assert all(r2 >= r1 * 0.98 for r1, r2 in zip(rates, rates[1:]))
    assert rates[-1] > 1.2
    assert rates[-1] > rates[0] * 1.25
    # The victim pays for the overshoot at the extreme point.
    assert rows[-1]["critical_runtime"] > rows[0]["critical_runtime"]
