"""E12 -- Ablation: window-phase staggering.

Hardware IP instances are enabled one after another, so their window
counters are naturally offset.  If all regulated masters replenish on
the same cycle instead (phase-aligned windows), they release their
budgets simultaneously: traffic arrives in clumps, the DRAM queue
spikes, and the victim's tail latency suffers -- even though every
per-master long-run rate is identical.  This ablation quantifies the
design decision DESIGN.md section 6 calls out.
"""

from __future__ import annotations

import dataclasses

from repro.monitor.window import WindowedBandwidthMonitor
from repro.soc.experiment import PlatformResult
from repro.soc.platform import Platform

from benchmarks.common import PEAK, loaded_config, report, tc_spec

SHARE = 0.10
WINDOW = 1024
HOGS = 4
ANALYSIS_BIN = 256


def _run(stagger):
    spec = dataclasses.replace(
        tc_spec(SHARE, window_cycles=WINDOW), stagger=stagger
    )
    config = loaded_config(num_accels=HOGS, accel_regulator=spec)
    platform = Platform(config)
    # Observe the *aggregate* hog traffic in fine bins: clumping shows
    # up as huge single-bin spikes even at identical long-run rates.
    monitors = [
        WindowedBandwidthMonitor(platform.ports[f"acc{i}"], ANALYSIS_BIN)
        for i in range(HOGS)
    ]
    elapsed = platform.run(8_000_000)
    result = PlatformResult(platform, elapsed)
    horizon = (elapsed // ANALYSIS_BIN) * ANALYSIS_BIN
    per_bin = [m.window_bytes(horizon) for m in monitors]
    aggregate = [
        sum(bins[i] for bins in per_bin) for i in range(len(per_bin[0]))
    ]
    # The worst single bin saturates at the physical service ceiling
    # either way; the discriminating statistic is how *often* the
    # aggregate exceeds its combined budget (clump frequency).
    agg_budget = HOGS * SHARE * PEAK * ANALYSIS_BIN
    violation_fraction = sum(
        1 for v in aggregate if v > agg_budget * 1.5
    ) / len(aggregate)
    phases = sorted(
        platform.regulators[f"acc{i}"].config.window_phase
        for i in range(HOGS)
    )
    return {
        "stagger": stagger,
        "window_phases": "/".join(str(p) for p in phases),
        "clump_bin_fraction": violation_fraction,
        "critical_p99": result.critical().latency_p99,
        "critical_runtime": result.critical_runtime(),
    }


def run_e12():
    return [_run(False), _run(True)]


def test_e12_stagger_ablation(benchmark):
    rows = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    report(
        "e12_stagger_ablation",
        rows,
        "E12: window-phase staggering ablation "
        f"({HOGS} hogs at {SHARE:.0%} of peak, window={WINDOW} cyc; "
        f"aggregate traffic observed in {ANALYSIS_BIN}-cycle bins)",
    )
    aligned = rows[0]
    staggered = rows[1]
    assert aligned["window_phases"] == "0/0/0/0"
    assert staggered["window_phases"] != aligned["window_phases"]
    # Aligned windows clump the aggregate traffic far more often.
    assert (
        aligned["clump_bin_fraction"]
        > staggered["clump_bin_fraction"] * 1.5
    )
    # The victim's tail pays for the clumps.
    assert aligned["critical_p99"] > staggered["critical_p99"] * 1.5
