"""E18 -- Open-loop victims: latency vs offered load.

Closed-loop victims (cores) self-throttle under interference -- they
get slower.  Open-loop victims (interrupt- and sensor-driven I/O)
do not: requests arrive on an external clock, and congestion turns
directly into latency and backlog.  This experiment sweeps the
offered load of a Poisson request stream against four streaming hogs,
unregulated vs regulated at 10% of peak each -- the queueing-curve
view of what regulation buys.

The final sweep point deliberately offers *more* than the residual
capacity the hog reservations leave (10.2 B/cyc offered vs ~6.8
residual): there the unreserved victim collapses even though the hogs
are regulated.  Reservations are guarantees for their holders, not
for bystanders -- open-loop actors must be admitted with their own
budget (see `repro.qos.admission`).
"""

from __future__ import annotations

from repro.axi.interconnect import Interconnect
from repro.axi.port import MasterPort, PortConfig
from repro.dram.controller import DramController
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.sim.kernel import Simulator
from repro.sim.rng import component_rng
from repro.soc.presets import zcu102_dram, zcu102_interconnect
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.arrivals import OpenLoopConfig, OpenLoopMaster
from repro.traffic.patterns import SequentialPattern

from benchmarks.common import PEAK, report

HOGS = 4
SHARE = 0.10
WINDOW = 256
MEAN_GAPS = (400.0, 200.0, 100.0, 50.0, 25.0)
HORIZON = 300_000
MB = 1 << 20


def _build_system(regulated, mean_gap, seed=5):
    sim = Simulator()
    dram = DramController(sim, zcu102_dram())
    interconnect = Interconnect(sim, zcu102_interconnect())
    interconnect.attach_memory(dram)

    victim_port = MasterPort(sim, PortConfig(name="sensor", max_outstanding=64))
    interconnect.attach_port(victim_port)
    victim = OpenLoopMaster(
        sim,
        victim_port,
        OpenLoopConfig(
            pattern=SequentialPattern(0x1000_0000, 4 * MB, 64),
            arrival="poisson",
            mean_gap_cycles=mean_gap,
            burst_len=4,
            rng=component_rng(seed, "sensor"),
        ),
    )
    hogs = []
    for index in range(HOGS):
        regulator = None
        if regulated:
            regulator = TightlyCoupledRegulator(
                sim,
                TightlyCoupledConfig(
                    window_cycles=WINDOW,
                    budget_bytes=max(1, round(SHARE * PEAK * WINDOW)),
                    window_phase=(index * WINDOW) // HOGS,
                ),
            )
        port = MasterPort(
            sim,
            PortConfig(name=f"acc{index}", max_outstanding=8),
            regulator=regulator,
        )
        interconnect.attach_port(port)
        hogs.append(
            StreamAccelerator(
                sim,
                port,
                AcceleratorConfig(
                    pattern=SequentialPattern(
                        0x2000_0000 + index * 4 * MB, 4 * MB, 256
                    ),
                    burst_beats=16,
                ),
            )
        )
    return sim, victim, victim_port, hogs


def _run(regulated, mean_gap):
    sim, victim, victim_port, hogs = _build_system(regulated, mean_gap)
    victim.start()
    for hog in hogs:
        hog.start()
    sim.run(until=HORIZON)
    latency = victim_port.stats.sampler("latency")
    return {
        "offered_B_cyc": 256 / mean_gap,
        "scheme": "regulated" if regulated else "unregulated",
        "p50_lat": float(latency.percentile(50)),
        "p99_lat": float(latency.percentile(99)),
        "backlog_end": victim.backlog,
    }


def run_e18():
    rows = []
    for mean_gap in MEAN_GAPS:
        rows.append(_run(False, mean_gap))
        rows.append(_run(True, mean_gap))
    return rows


def test_e18_open_loop(benchmark):
    rows = benchmark.pedantic(run_e18, rounds=1, iterations=1)
    report(
        "e18_open_loop",
        rows,
        "E18: open-loop (Poisson) victim latency vs offered load, "
        f"{HOGS} hogs unregulated vs at {SHARE:.0%} of peak each",
        columns=["offered_B_cyc", "scheme", "p50_lat", "p99_lat",
                 "backlog_end"],
    )
    hog_reserved = HOGS * SHARE * PEAK  # 6.4 B/cyc
    residual = PEAK - hog_reserved
    regulated = [r for r in rows if r["scheme"] == "regulated"]
    unregulated = [r for r in rows if r["scheme"] == "unregulated"]
    feasible = [
        (reg, unreg)
        for reg, unreg in zip(regulated, unregulated)
        if reg["offered_B_cyc"] <= residual
    ]
    assert len(feasible) >= 4
    # Within the residual capacity, regulation flattens the curve:
    # every feasible load point improves, by a lot.
    for reg, unreg in feasible:
        assert reg["p99_lat"] < unreg["p99_lat"] * 0.5
    # And the regulated curve shows no congestion collapse there.
    feasible_regs = [reg for reg, _ in feasible]
    assert feasible_regs[-1]["p99_lat"] < feasible_regs[0]["p99_lat"] * 4
    assert all(r["backlog_end"] < 64 for r, _ in feasible)
    # Beyond the residual capacity the *unreserved* victim collapses
    # despite the hogs being regulated -- the admission-control story.
    overload = [r for r in regulated if r["offered_B_cyc"] > residual]
    assert overload and overload[-1]["backlog_end"] > 100
