"""E4 -- Critical-task latency distribution per regulation scheme.

One critical core against four hogs under: no regulation, static AXI
QoS priority, software MemGuard, and the tightly-coupled IP -- the
latter two at the same long-run hog rate (10% of peak each).  The
paper's figure is a latency CDF/percentile plot: the tightly-coupled
IP pushes the whole distribution (and especially the tail) close to
the solo baseline.
"""

from __future__ import annotations

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment

from benchmarks.common import loaded_config, memguard_spec, report, tc_spec

SHARE = 0.10


def _percentile_row(name, result, solo_p99):
    critical = result.critical()
    return {
        "scheme": name,
        "mean": critical.latency_mean,
        "p50": critical.latency_p50,
        "p95": critical.latency_p95,
        "p99": critical.latency_p99,
        "max": critical.latency_max,
        "p99_vs_solo": critical.latency_p99 / solo_p99,
        "runtime": result.critical_runtime(),
    }


def run_e4():
    solo = run_experiment(loaded_config(num_accels=0))
    solo_p99 = solo.critical().latency_p99
    rows = [_percentile_row("solo", solo, solo_p99)]

    unreg = run_experiment(loaded_config(num_accels=4))
    rows.append(_percentile_row("none", unreg, solo_p99))

    # Static QoS: priority at the crossbar *and* at the DDR scheduler
    # (QoS-aware controllers map AxQOS into scheduling priority --
    # without that, crossbar priority alone has no measurable effect
    # because the contention lives in the DRAM queue).
    qos = run_experiment(
        loaded_config(
            num_accels=4,
            arbiter="qos",
            scheduler="frfcfs_qos",
            cpu_regulator=RegulatorSpec(kind="static_qos", qos=15),
        )
    )
    rows.append(_percentile_row("static_qos", qos, solo_p99))

    memguard = run_experiment(
        loaded_config(num_accels=4, accel_regulator=memguard_spec(SHARE))
    )
    rows.append(_percentile_row("memguard", memguard, solo_p99))

    # The IP at its fine-grained operating point (256-cycle window =
    # ~1 us at 250 MHz): small enough that a window's budget is about
    # one DMA burst, so hog traffic arrives evenly spaced instead of
    # in window-start clumps.
    tc = run_experiment(
        loaded_config(
            num_accels=4, accel_regulator=tc_spec(SHARE, window_cycles=256)
        )
    )
    rows.append(_percentile_row("tightly_coupled", tc, solo_p99))
    return rows


def test_e4_latency_distribution(benchmark):
    rows = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    report(
        "e4_latency",
        rows,
        "E4: critical-task transaction latency (cycles) under each "
        f"regulation scheme (4 hogs at {SHARE:.0%} of peak each where "
        "regulated)",
    )
    by_scheme = {r["scheme"]: r for r in rows}
    # Every mitigation beats no regulation at the tail.
    for scheme in ("static_qos", "memguard", "tightly_coupled"):
        assert by_scheme[scheme]["p99"] < by_scheme["none"]["p99"]
    # The tightly-coupled IP is the closest to solo at the tail among
    # the *bandwidth* regulators (static QoS reorders but does not
    # bound rate, so it is not a reservation mechanism).
    assert (
        by_scheme["tightly_coupled"]["p99"] <= by_scheme["memguard"]["p99"]
    )
    # And within a factor ~4 of solo at the tail, with the median far
    # below the unregulated one.
    assert by_scheme["tightly_coupled"]["p99_vs_solo"] < 4.0
    assert by_scheme["tightly_coupled"]["p50"] < by_scheme["none"]["p50"]
    # Distributions are ordered sanely.
    for row in rows:
        assert row["p50"] <= row["p95"] <= row["p99"] <= row["max"]
