"""E6 -- FPGA resource overhead of the monitor+regulator IP.

The paper reports a Vivado utilization table for the IP on the ZU9EG.
Synthesis is unavailable here, so the analytic structural model
(:mod:`repro.analysis.resources`, see DESIGN.md section 3) stands in;
it reproduces the scaling shape: linear in the number of monitored
channels, weakly dependent on counter widths, and a small fraction of
the device.
"""

from __future__ import annotations

from repro.analysis.resources import ResourceModel

from benchmarks.common import report

CHANNELS = (1, 2, 4, 8, 16)


def run_e6():
    model = ResourceModel()
    rows = []
    for channels in CHANNELS:
        est = model.estimate(
            channels=channels, window_cycles=1024, capacity_bytes=16_384
        )
        rows.append(
            {
                "channels": channels,
                "LUTs": est.luts,
                "FFs": est.ffs,
                "BRAM36": est.bram36,
                "LUT_pct_ZU9EG": 100 * est.lut_fraction(),
                "FF_pct_ZU9EG": 100 * est.ff_fraction(),
            }
        )
    return rows


def test_e6_resource_overhead(benchmark):
    rows = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    report(
        "e6_resources",
        rows,
        "E6: estimated FPGA footprint of the regulator IP "
        "(window=1024 cyc, capacity=16 KiB per channel; ZU9EG device)",
    )
    # Linear growth in channels.
    luts = [r["LUTs"] for r in rows]
    per_channel = (luts[-1] - luts[0]) / (CHANNELS[-1] - CHANNELS[0])
    for (c1, l1), (c2, l2) in zip(zip(CHANNELS, luts), zip(CHANNELS[1:], luts[1:])):
        slope = (l2 - l1) / (c2 - c1)
        assert abs(slope - per_channel) / per_channel < 0.05
    # Negligible device fraction even at 16 channels (the paper's
    # qualitative claim: well under a few percent).
    assert rows[-1]["LUT_pct_ZU9EG"] < 2.0
    assert rows[-1]["FF_pct_ZU9EG"] < 2.0
    assert all(r["BRAM36"] == 0 for r in rows)
