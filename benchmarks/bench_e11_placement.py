"""E11 -- Extension: where the regulator sits (per-master vs aggregate).

On the real SoC all FPGA masters funnel through a shared HP port into
the PS.  A single *aggregate* regulator at that port bounds the total
accelerator bandwidth -- enough to protect the CPU -- but provides no
isolation *among* accelerators: a misbehaving DMA with deep
outstanding queues eats the aggregate budget and starves its
well-behaved fabric neighbours.  The paper's per-master IPs at the
fabric ports give both properties at the same total budget.

Topology: 1 critical CPU at the PS level; 3 well-behaved accelerators
(50% DMA duty) + 1 always-on hog behind the shared HP port.  Total
accelerator budget 40% of peak in both placements.
"""

from __future__ import annotations

from repro.regulation.factory import RegulatorSpec
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform
from repro.soc.platform import MasterSpec

from benchmarks.common import report

MB = 1 << 20
PEAK = 16.0
TOTAL_SHARE = 0.40
WINDOW = 1024
HORIZON = 600_000
WELL_BEHAVED = ("acc0", "acc1", "acc2")
HOG = "acc3"


def _accels(per_master_regulator):
    specs = []
    for index, name in enumerate(WELL_BEHAVED):
        specs.append(
            MasterSpec(
                name=name, workload="matmul_stream",
                region_base=0x2000_0000 + index * 4 * MB,
                region_extent=4 * MB,
                max_outstanding=4,
                regulator=per_master_regulator,
            )
        )
    specs.append(
        MasterSpec(
            name=HOG, workload="stream_read",
            region_base=0x2000_0000 + 3 * 4 * MB, region_extent=4 * MB,
            max_outstanding=16,
            regulator=per_master_regulator,
        )
    )
    return tuple(specs)


def _cpu():
    return MasterSpec(
        name="cpu0", workload="latency_probe",
        region_base=0x1000_0000, region_extent=4 * MB,
        work=3_000, max_outstanding=4, critical=True,
    )


def _run(per_master_regulator, bridge_regulator):
    config = TwoLevelConfig(
        cpus=(_cpu(),),
        accels=_accels(per_master_regulator),
        bridge_regulator=bridge_regulator,
        bridge_outstanding=16,
    )
    platform = TwoLevelPlatform(config)
    platform.run(HORIZON, stop_when_critical_done=False)
    rates = {
        name: platform.ports[name].stats.counter("bytes").value / HORIZON
        for name in WELL_BEHAVED + (HOG,)
    }
    return {
        "min_wb_B_cyc": min(rates[n] for n in WELL_BEHAVED),
        "hog_B_cyc": rates[HOG],
        "total_B_cyc": sum(rates.values()),
        "critical_runtime": platform.masters["cpu0"].finished_at,
    }


def run_e11():
    rows = []
    aggregate_spec = RegulatorSpec(
        kind="tightly_coupled",
        window_cycles=WINDOW,
        budget_bytes=round(TOTAL_SHARE * PEAK * WINDOW),
    )
    row = _run(None, aggregate_spec)
    row["placement"] = "aggregate@hp0"
    rows.append(row)

    per_master_spec = RegulatorSpec(
        kind="tightly_coupled",
        window_cycles=WINDOW,
        budget_bytes=round(TOTAL_SHARE / 4 * PEAK * WINDOW),
    )
    row = _run(per_master_spec, None)
    row["placement"] = "per-master@fabric"
    rows.append(row)
    return rows


def test_e11_regulation_placement(benchmark):
    rows = benchmark.pedantic(run_e11, rounds=1, iterations=1)
    report(
        "e11_placement",
        rows,
        "E11: regulation placement at equal total budget "
        f"({TOTAL_SHARE:.0%} of peak across 4 accelerators; hog has 4x "
        "the outstanding depth of its neighbours)",
        columns=[
            "placement", "min_wb_B_cyc", "hog_B_cyc", "total_B_cyc",
            "critical_runtime",
        ],
    )
    by_placement = {r["placement"]: r for r in rows}
    agg = by_placement["aggregate@hp0"]
    per = by_placement["per-master@fabric"]
    # Both placements bound the total.
    budget_rate = TOTAL_SHARE * PEAK
    assert agg["total_B_cyc"] <= budget_rate * 1.05
    assert per["total_B_cyc"] <= budget_rate * 1.05
    # Aggregate regulation lets the deep-queued hog dominate...
    assert agg["hog_B_cyc"] > per["hog_B_cyc"] * 1.3
    # ...while per-master regulation protects the well-behaved
    # accelerators' shares.
    assert per["min_wb_B_cyc"] > agg["min_wb_B_cyc"] * 1.2
    # The hog never exceeds its per-master reservation.
    assert per["hog_B_cyc"] <= (TOTAL_SHARE / 4) * PEAK * 1.05
