"""E22 -- Simulation-kernel hot-path micro-benchmark.

Not a figure of the reproduced paper: this bench times the discrete-
event engine itself, so kernel-level optimizations (tuple-keyed heap
entries, lazy-deletion compaction, the same-cycle dispatch fast path)
are *measured*, and regressions in the substrate every experiment
stands on fail loudly instead of silently stretching suite wall-clock.

Four probes, each reporting throughput:

* ``push_pop``     -- raw heap churn (schedule + dispatch, no cancels);
* ``cancel_churn`` -- 90% of scheduled events cancelled; exercises the
  heap-compaction path and asserts cancelled shells cannot accumulate
  past the compaction bound;
* ``same_cycle``   -- many events per cycle through ``Simulator.run``;
  exercises the single-scan same-cycle fast path;
* ``platform``     -- a small end-to-end platform run (cycles/second),
  the figure that predicts benchmark-suite wall-clock.
"""

from __future__ import annotations

import time

from repro.sim.event import EventQueue
from repro.sim.kernel import Simulator
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102

from benchmarks.common import report

PUSH_POP_EVENTS = 200_000
CHURN_EVENTS = 200_000
SAME_CYCLE_CYCLES = 2_000
SAME_CYCLE_PER_CYCLE = 100
PLATFORM_CPU_WORK = 2_000


def _bench_push_pop():
    queue = EventQueue()
    sink = []
    start = time.perf_counter()
    for i in range(PUSH_POP_EVENTS):
        queue.push(i, 0, sink.append)
    while len(queue):
        queue.pop()
    elapsed = time.perf_counter() - start
    return PUSH_POP_EVENTS / elapsed, {}


def _bench_cancel_churn():
    queue = EventQueue()
    peak_heap = 0
    start = time.perf_counter()
    events = []
    for i in range(CHURN_EVENTS):
        events.append(queue.push(i, 0, lambda: None))
        if len(events) == 1000:
            # Cancel 90%: models retry events obsoleted by progress.
            for ev in events[:900]:
                ev.cancel()
            peak_heap = max(peak_heap, len(queue))
            for _ in range(100):
                queue.pop()
            events.clear()
    elapsed = time.perf_counter() - start
    return CHURN_EVENTS / elapsed, {"peak_heap": peak_heap}


def _bench_same_cycle():
    sim = Simulator()
    fired = [0]

    def tick():
        fired[0] += 1

    for cycle in range(SAME_CYCLE_CYCLES):
        for _ in range(SAME_CYCLE_PER_CYCLE):
            sim.schedule_at(cycle, tick)
    total = SAME_CYCLE_CYCLES * SAME_CYCLE_PER_CYCLE
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == total
    return total / elapsed, {}


def _bench_platform():
    config = zcu102(num_accels=2, cpu_work=PLATFORM_CPU_WORK)
    start = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - start
    return result.elapsed / elapsed, {"sim_cycles": result.elapsed}


def run_e22():
    probes = (
        ("push_pop", "events/s", _bench_push_pop),
        ("cancel_churn", "events/s", _bench_cancel_churn),
        ("same_cycle", "events/s", _bench_same_cycle),
        ("platform", "cycles/s", _bench_platform),
    )
    rows = []
    for name, unit, fn in probes:
        rate, extra = fn()
        row = {"probe": name, "unit": unit, "rate": rate}
        row.update(extra)
        rows.append(row)
    return rows


def test_e22_kernel(benchmark):
    rows = benchmark.pedantic(run_e22, rounds=1, iterations=1)
    report(
        "e22_kernel",
        rows,
        "E22: simulation-kernel hot-path throughput "
        f"({PUSH_POP_EVENTS // 1000}k-event probes)",
        columns=["probe", "unit", "rate", "peak_heap", "sim_cycles"],
    )
    by_probe = {r["probe"]: r for r in rows}
    # Every probe must actually move work.
    for row in rows:
        assert row["rate"] > 0
    # Lazy-deletion compaction: with 90% of events cancelled, the heap
    # may never grow anywhere near the total number of scheduled
    # events -- shells are reclaimed once they hold the majority.
    assert by_probe["cancel_churn"]["peak_heap"] < CHURN_EVENTS / 10
    # The end-to-end platform run simulates at a usable rate (far
    # below the raw kernel rate; this guards factor-scale regressions).
    assert by_probe["platform"]["rate"] > 10_000
