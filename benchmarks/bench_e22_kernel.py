"""E22 -- Simulation-kernel hot-path micro-benchmark.

Not a figure of the reproduced paper: this bench times the discrete-
event engine itself, so kernel-level optimizations (the calendar-queue
scheduler, event-pool recycling, lazy-deletion compaction, the
same-cycle dispatch fast path) are *measured*, and regressions in the
substrate every experiment stands on fail loudly instead of silently
stretching suite wall-clock.

Every probe runs under BOTH scheduler backends -- the reference binary
heap and the production calendar queue -- in the same process, so the
reported ratios are same-run comparisons, not cross-machine folklore:

* ``scheduler_stress`` -- the headline probe: a classic hold model
  (pop one, reschedule at ``now + delay``) at a resident population of
  128k events.  This is where scheduler data structures earn their
  keep: the heap pays O(log n) sift work per event while the calendar
  queue stays O(1), and the calendar backend is required to deliver at
  least 1.5x the heap's throughput (typically measured >= 2x);
* ``push_pop``      -- raw churn (schedule + dispatch, no cancels);
* ``cancel_churn``  -- 90% of scheduled events cancelled; exercises the
  compaction path and asserts cancelled shells cannot accumulate past
  the compaction bound;
* ``same_cycle``    -- many events per cycle through ``Simulator.run``;
  exercises the single-scan same-cycle fast path;
* ``batch_dispatch`` -- the batched dispatch loop (``REPRO_BATCH``)
  against the per-event reference loop through ``Simulator.run`` on a
  self-rescheduling hold model at the stress population; the reported
  rate is the batched loop's, with the per-event rate, the
  batched/per-event same-run ratio, and the population-aware ``auto``
  mode's rate and parity vs the better static mode in the extras;
* ``platform``      -- a small end-to-end platform run (cycles/second),
  the figure that predicts benchmark-suite wall-clock.  At platform
  populations (a handful of pending events) the C-implemented heap is
  intrinsically cheap, so no calendar advantage is asserted here --
  only that the two backends produce byte-identical results.
"""

from __future__ import annotations

import os
import random
import time

from repro.sim.calendar import CalendarQueue
from repro.sim.event import EventQueue
from repro.sim.kernel import AUTO_BATCH, Simulator
from repro.soc.experiment import run_experiment
from repro.soc.presets import zcu102

from benchmarks.common import report

BACKENDS = (("heap", EventQueue), ("calendar", CalendarQueue))

STRESS_POPULATION = 131_072
STRESS_EVENTS = 200_000
PUSH_POP_EVENTS = 200_000
CHURN_EVENTS = 200_000
SAME_CYCLE_CYCLES = 2_000
SAME_CYCLE_PER_CYCLE = 100
PLATFORM_CPU_WORK = 2_000

#: Same-run floor for the stress probe (headline acceptance):
#: conservative against machine noise; typical measurements are >= 2x.
STRESS_MIN_RATIO = 1.5

#: Dispatches timed by the batch-dispatch hold model (on top of the
#: initial population drain).
BATCH_DISPATCH_EVENTS = 100_000

#: Populations the smoke benchmark samples the batch-dispatch probe
#: at: a platform-scale handful of live events and the E22 stress
#: population.
BATCH_POPULATIONS = (("tiny", 64), ("stress", STRESS_POPULATION))

#: Same-run floor for batched vs per-event dispatch at the stress
#: population, per backend.  The calendar backend's chunked bulk
#: drain is the headline (typically measured >= 1.3x); the heap's
#: margin is thinner (entry tuples still pop one heap sift at a
#: time), so its floor only guards against the batched loop becoming
#: a net pessimization.
BATCH_MIN_RATIO = {"calendar": 1.05, "heap": 0.85}


def dispatch_throughput(
    scheduler,
    batched,
    population,
    events=BATCH_DISPATCH_EVENTS,
):
    """Simulator-level dispatch rate on a self-rescheduling hold model.

    ``population`` callbacks are scheduled across a 64-cycle spread;
    each reschedules itself at ``now + U(1, 64)`` (deterministic LCG)
    until ``events`` reschedules have fired, then the population
    drains.  This exercises the full dispatch loop -- queue, batch
    protocol, pool recycling, callback invocation -- rather than the
    raw queue, so it is the probe that sees batching's elided
    per-event ``pop_if_at``/``recycle`` calls and its pool-locality
    behaviour.  Returns events per second (total dispatches over run
    wall time).
    """
    sim = Simulator(scheduler=scheduler, batch=batched)
    state = [0x3039]
    budget = [events]

    def make():
        def callback():
            if budget[0] > 0:
                budget[0] -= 1
                x = state[0] = (state[0] * 1103515245 + 12345) & 0x7FFFFFFF
                sim.schedule(1 + (x & 63), callback)

        return callback

    for i in range(population):
        sim.schedule(1 + (i & 63), make())
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return (population + events) / elapsed


def _bench_scheduler_stress(queue_cls):
    """Hold model: steady population, pop-one / push-one-later."""
    rng = random.Random(20230711)
    delays = [rng.randrange(1, 12) for _ in range(4096)]
    queue = queue_cls()
    for i in range(STRESS_POPULATION):
        queue.push(delays[i & 4095], 0, None)
    index = 0
    start = time.perf_counter()
    for _ in range(STRESS_EVENTS):
        event = queue.pop()
        now = event.time
        queue.recycle(event)
        queue.push(now + delays[index & 4095], 0, None)
        index += 1
    elapsed = time.perf_counter() - start
    return STRESS_EVENTS / elapsed, {"population": STRESS_POPULATION}


def _bench_push_pop(queue_cls):
    queue = queue_cls()
    sink = []
    start = time.perf_counter()
    for i in range(PUSH_POP_EVENTS):
        queue.push(i, 0, sink.append)
    while len(queue):
        queue.pop()
    elapsed = time.perf_counter() - start
    return PUSH_POP_EVENTS / elapsed, {}


def _bench_cancel_churn(queue_cls):
    queue = queue_cls()
    peak_resident = 0
    start = time.perf_counter()
    events = []
    for i in range(CHURN_EVENTS):
        events.append(queue.push(i, 0, lambda: None))
        if len(events) == 1000:
            # Cancel 90%: models retry events obsoleted by progress.
            for ev in events[:900]:
                ev.cancel()
            peak_resident = max(peak_resident, len(queue))
            for _ in range(100):
                queue.pop()
            events.clear()
    elapsed = time.perf_counter() - start
    return CHURN_EVENTS / elapsed, {"peak_resident": peak_resident}


def _bench_same_cycle(queue_cls):
    name = next(n for n, cls in BACKENDS if cls is queue_cls)
    sim = Simulator(scheduler=name)
    fired = [0]

    def tick():
        fired[0] += 1

    for cycle in range(SAME_CYCLE_CYCLES):
        for _ in range(SAME_CYCLE_PER_CYCLE):
            sim.schedule_at(cycle, tick)
    total = SAME_CYCLE_CYCLES * SAME_CYCLE_PER_CYCLE
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == total
    return total / elapsed, {}


def _bench_batch_dispatch(queue_cls):
    name = next(n for n, cls in BACKENDS if cls is queue_cls)
    batched = dispatch_throughput(name, True, STRESS_POPULATION)
    per_event = dispatch_throughput(name, False, STRESS_POPULATION)
    auto = dispatch_throughput(name, AUTO_BATCH, STRESS_POPULATION)
    return batched, {
        "population": STRESS_POPULATION,
        "per_event": per_event,
        "batched_vs_per_event": batched / per_event,
        "auto": auto,
        "auto_vs_best_static": auto / max(batched, per_event),
    }


def _bench_platform(queue_cls):
    name = next(n for n, cls in BACKENDS if cls is queue_cls)
    config = zcu102(num_accels=2, cpu_work=PLATFORM_CPU_WORK)
    previous = os.environ.get("REPRO_SCHED")
    os.environ["REPRO_SCHED"] = name
    try:
        start = time.perf_counter()
        result = run_experiment(config)
        elapsed = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHED", None)
        else:
            os.environ["REPRO_SCHED"] = previous
    table = tuple(
        (n, p.stats.counter("bytes").value, p.stats.counter("completed").value)
        for n, p in sorted(result.platform.ports.items())
    )
    return result.elapsed / elapsed, {
        "sim_cycles": result.elapsed,
        "_table": table,
    }


def run_e22():
    probes = (
        ("scheduler_stress", "events/s", _bench_scheduler_stress),
        ("push_pop", "events/s", _bench_push_pop),
        ("cancel_churn", "events/s", _bench_cancel_churn),
        ("same_cycle", "events/s", _bench_same_cycle),
        ("batch_dispatch", "events/s", _bench_batch_dispatch),
        ("platform", "cycles/s", _bench_platform),
    )
    rows = []
    for name, unit, fn in probes:
        row = {"probe": name, "unit": unit}
        extras = {}
        for backend, queue_cls in BACKENDS:
            rate, extra = fn(queue_cls)
            row[backend] = rate
            extras[backend] = extra
        row["calendar_vs_heap"] = row["calendar"] / row["heap"]
        for key, value in extras["calendar"].items():
            if not key.startswith("_"):
                row[key] = value
        row["_extras"] = extras
        rows.append(row)
    return rows


def test_e22_kernel(benchmark):
    rows = benchmark.pedantic(run_e22, rounds=1, iterations=1)
    report(
        "e22_kernel",
        [{k: v for k, v in r.items() if not k.startswith("_")} for r in rows],
        "E22: simulation-kernel hot-path throughput, heap vs calendar "
        f"scheduler ({STRESS_EVENTS // 1000}k-event probes)",
        columns=[
            "probe",
            "unit",
            "heap",
            "calendar",
            "calendar_vs_heap",
            "population",
            "per_event",
            "batched_vs_per_event",
            "auto_vs_best_static",
            "peak_resident",
            "sim_cycles",
        ],
    )
    by_probe = {r["probe"]: r for r in rows}
    # Every probe must actually move work, under either backend.
    for row in rows:
        assert row["heap"] > 0 and row["calendar"] > 0
    # The tentpole criterion: at scheduler-stress populations the
    # calendar queue beats the heap by a wide, same-run margin.
    assert by_probe["scheduler_stress"]["calendar_vs_heap"] >= STRESS_MIN_RATIO
    # Batched dispatch may never be a net pessimization, and on the
    # calendar backend (chunked bulk drain) it must win outright.
    # The population-aware auto mode promotes to batched at this
    # population, so it must track the better static mode closely.
    for backend in ("heap", "calendar"):
        extra = by_probe["batch_dispatch"]["_extras"][backend]
        assert extra["batched_vs_per_event"] >= BATCH_MIN_RATIO[backend]
        assert extra["auto_vs_best_static"] >= 0.85
    # Lazy-deletion compaction: with 90% of events cancelled, the queue
    # may never grow anywhere near the total number of scheduled
    # events -- shells are reclaimed once they hold the majority.
    for backend in ("heap", "calendar"):
        extra = by_probe["cancel_churn"]["_extras"][backend]
        assert extra["peak_resident"] < CHURN_EVENTS / 10
    # The end-to-end platform run simulates at a usable rate (far
    # below the raw kernel rate; this guards factor-scale regressions)
    # and both backends produce byte-identical per-master tables.
    platform = by_probe["platform"]
    assert platform["heap"] > 10_000 and platform["calendar"] > 10_000
    assert (
        platform["_extras"]["heap"]["_table"]
        == platform["_extras"]["calendar"]["_table"]
    )
    assert (
        platform["_extras"]["heap"]["sim_cycles"]
        == platform["_extras"]["calendar"]["sim_cycles"]
    )
