"""E5 -- Bandwidth utilization vs guaranteed slowdown trade-off.

The CMRI-lineage result: a PREM-style mutually-exclusive schedule
protects the critical task perfectly but leaves the accelerator
bandwidth unused; fine-grained regulation lets best-effort actors
consume a *controlled* amount of residual bandwidth at a bounded cost
to the critical task.  Sweeping the per-hog budget traces the
trade-off curve; the paper reports recovering >40% of the accelerator
bandwidth while keeping the critical slowdown below ~10-20%.
"""

from __future__ import annotations

from repro.analysis.metrics import slowdown, utilization_of
from repro.soc.experiment import run_experiment

from benchmarks.common import PEAK, loaded_config, report, tc_spec

HOGS = 4
SHARES = (0.025, 0.05, 0.10, 0.15, 0.20, 0.25)
#: The protected task is a realistic compute/memory mix (see
#: ``repro.traffic.workloads.compute_mix``): the "below 10-20%
#: slowdown while recovering >40% of the accelerator bandwidth"
#: operating point the CMRI line of work reports is defined for such
#: tasks, not for a pure latency probe.
VICTIM = "compute_mix"
WINDOW = 256


def _config(num_accels, accel_regulator=None):
    return loaded_config(
        num_accels=num_accels,
        accel_regulator=accel_regulator,
        cpu_workload=VICTIM,
    )


def run_e5():
    solo = run_experiment(_config(num_accels=0))
    solo_runtime = solo.critical_runtime()
    rows = [
        {
            "per_hog_share": 0.0,
            "scheme": "prem_like",
            "slowdown": 1.0,
            "hog_bw_B_cyc": 0.0,
            "hog_bw_recovered": 0.0,
            "dram_util": solo.dram.utilization,
        }
    ]
    # Reference: what the 4 hogs draw with no regulation at all.
    unreg = run_experiment(_config(num_accels=HOGS))
    unreg_hog_bw = sum(
        unreg.master(f"acc{i}").bandwidth_bytes_per_cycle for i in range(HOGS)
    )
    for share in SHARES:
        result = run_experiment(
            _config(
                num_accels=HOGS,
                accel_regulator=tc_spec(share, window_cycles=WINDOW),
            )
        )
        runtime = result.critical_runtime()
        hog_bw = sum(
            result.master(f"acc{i}").bandwidth_bytes_per_cycle
            for i in range(HOGS)
        )
        rows.append(
            {
                "per_hog_share": share,
                "scheme": "tightly_coupled",
                "slowdown": slowdown(runtime, solo_runtime),
                "hog_bw_B_cyc": hog_bw,
                "hog_bw_recovered": hog_bw / unreg_hog_bw,
                "dram_util": result.dram.utilization,
            }
        )
    rows.append(
        {
            "per_hog_share": "unregulated",
            "scheme": "none",
            "slowdown": slowdown(unreg.critical_runtime(), solo_runtime),
            "hog_bw_B_cyc": unreg_hog_bw,
            "hog_bw_recovered": 1.0,
            "dram_util": unreg.dram.utilization,
        }
    )
    return rows


def test_e5_utilization_tradeoff(benchmark):
    rows = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    report(
        "e5_utilization",
        rows,
        "E5: residual-bandwidth exploitation vs critical slowdown "
        f"({HOGS} hogs, per-hog budget swept; recovered = fraction of "
        "unregulated hog bandwidth)",
    )
    swept = [r for r in rows if r["scheme"] == "tightly_coupled"]
    # Monotone trade-off while the budget still binds: more budget ->
    # more hog bandwidth and more slowdown.  Points where the hogs
    # already draw ~all of their unregulated bandwidth are saturated
    # (the regulator no longer binds) and excluded from the
    # monotonicity check.
    binding = [r for r in swept if r["hog_bw_recovered"] < 0.95]
    bws = [r["hog_bw_B_cyc"] for r in binding]
    sds = [r["slowdown"] for r in binding]
    assert len(binding) >= 3
    assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))
    assert all(s2 >= s1 * 0.98 for s1, s2 in zip(sds, sds[1:]))
    # Headline: >40% of the hog bandwidth recovered at modest cost.
    good = [r for r in swept if r["slowdown"] < 1.5]
    assert good, "no operating point with slowdown < 1.5"
    assert max(r["hog_bw_recovered"] for r in good) > 0.40
