"""E1 -- Motivation figure: interference without regulation.

Reproduces the paper's motivation experiment: the critical core's
slowdown as 0..7 unregulated FPGA DMA hogs are co-scheduled.  The
authors' DATE'22 characterization of the same platforms reports up to
an order of magnitude; the expected shape is a monotonically growing
slowdown that saturates as the DRAM channel fills.
"""

from __future__ import annotations

from repro.analysis.metrics import slowdown
from repro.soc.experiment import run_experiment

from benchmarks.common import CPU_WORK, loaded_config, report


def run_e1():
    solo = run_experiment(loaded_config(num_accels=0))
    solo_runtime = solo.critical_runtime()
    rows = []
    for hogs in range(0, 8):
        result = run_experiment(loaded_config(num_accels=hogs))
        runtime = result.critical_runtime()
        hog_bw = sum(
            result.master(f"acc{i}").bandwidth_bytes_per_cycle
            for i in range(hogs)
        )
        rows.append(
            {
                "hogs": hogs,
                "critical_runtime_cyc": runtime,
                "slowdown": slowdown(runtime, solo_runtime),
                "critical_p99_lat": result.critical().latency_p99,
                "hog_bw_B_per_cyc": hog_bw,
                "dram_util": result.dram.utilization,
            }
        )
    return rows


def test_e1_interference(benchmark):
    rows = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    report(
        "e1_interference",
        rows,
        "E1: critical-core slowdown vs number of unregulated DMA hogs "
        f"(work = {CPU_WORK} line transfers)",
    )
    slowdowns = [r["slowdown"] for r in rows]
    # Shape: monotone growth, saturating; severe by 7 hogs.
    assert all(b >= a * 0.99 for a, b in zip(slowdowns, slowdowns[1:]))
    assert slowdowns[0] == 1.0
    assert slowdowns[-1] > 3.0
    # DRAM utilization climbs towards saturation.
    assert rows[-1]["dram_util"] > rows[0]["dram_util"] * 2
