"""E13 -- Ablation: how DRAM scheduling interacts with regulation.

Byte budgets bound *traffic*, not *device time*: under FR-FCFS a
locality-rich stream extracts its bytes in fewer device cycles than a
row-hostile one, so two masters with equal byte budgets can load the
DRAM very differently.  This ablation runs a sequential hog and a
strided (row-hostile) hog, both regulated to 15% of peak, under
FR-FCFS and plain FCFS, and reports the victim's view -- the
sensitivity study behind DESIGN.md's "FR-FCFS vs FCFS" decision.
"""

from __future__ import annotations

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import PlatformResult
from repro.soc.platform import MasterSpec, Platform, PlatformConfig
from repro.soc.presets import zcu102_dram, zcu102_interconnect

from benchmarks.common import PEAK, report

MB = 1 << 20
SHARE = 0.15
WINDOW = 512


def _config(scheduler):
    spec = RegulatorSpec(
        kind="tightly_coupled",
        window_cycles=WINDOW,
        budget_bytes=round(SHARE * PEAK * WINDOW),
    )
    dram = zcu102_dram(scheduler)
    masters = (
        MasterSpec(
            name="cpu0", workload="latency_probe",
            region_base=0x1000_0000, region_extent=4 * MB,
            work=3_000, max_outstanding=4, critical=True,
        ),
        MasterSpec(
            name="seq_hog", workload="stream_read",
            region_base=0x2000_0000, region_extent=4 * MB,
            regulator=spec,
        ),
        MasterSpec(
            name="stride_hog", workload="fft_stride",
            region_base=0x3000_0000, region_extent=4 * MB,
            regulator=spec,
        ),
    )
    return PlatformConfig(
        masters=masters,
        interconnect=zcu102_interconnect(),
        dram=dram,
    )


def _run(scheduler):
    platform = Platform(_config(scheduler))
    elapsed = platform.run(8_000_000)
    result = PlatformResult(platform, elapsed)
    return {
        "scheduler": scheduler,
        "seq_hog_B_cyc": result.master("seq_hog").bandwidth_bytes_per_cycle,
        "stride_hog_B_cyc": result.master(
            "stride_hog"
        ).bandwidth_bytes_per_cycle,
        "row_hit_rate": result.dram.row_hit_rate,
        "critical_runtime": result.critical_runtime(),
        "critical_p99": result.critical().latency_p99,
    }


def run_e13():
    return [_run("frfcfs"), _run("fcfs")]


def test_e13_dram_scheduler(benchmark):
    rows = benchmark.pedantic(run_e13, rounds=1, iterations=1)
    report(
        "e13_dram_scheduler",
        rows,
        "E13: DRAM scheduling x regulation (sequential + strided hog, "
        f"each budgeted {SHARE:.0%} of peak)",
    )
    frfcfs = rows[0]
    fcfs = rows[1]
    # FR-FCFS extracts more row hits from the same traffic.
    assert frfcfs["row_hit_rate"] > fcfs["row_hit_rate"]
    # Equal byte budgets are enforced regardless of scheduling.
    configured = SHARE * PEAK
    for row in rows:
        assert row["seq_hog_B_cyc"] <= configured * 1.05
        assert row["stride_hog_B_cyc"] <= configured * 1.05
    # The victim is no worse off under FR-FCFS at the same budgets
    # (hits free device time), within noise.
    assert frfcfs["critical_runtime"] <= fcfs["critical_runtime"] * 1.10
