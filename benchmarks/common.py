"""Shared helpers for the benchmark harnesses.

Each ``bench_eN_*.py`` regenerates one table/figure of the
(reconstructed) evaluation -- see DESIGN.md section 4 for the index
and EXPERIMENTS.md for expected-vs-measured.  Benchmarks both *print*
the paper-style rows (and persist them under ``benchmarks/results/``)
and *assert* the qualitative shape, so a regression in the modelled
mechanisms fails CI rather than silently changing the figures.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.sweep import format_table
from repro.regulation.factory import RegulatorSpec
from repro.runner import ParallelRunner, ResultCache, RunSpec, RunSummary
from repro.soc.experiment import DEFAULT_MAX_CYCLES, PlatformResult
from repro.soc.platform import Platform, PlatformConfig
from repro.soc.presets import zcu102
from repro.telemetry import write_runner_report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Channel peak of the preset (bytes/cycle); shares are against this.
PEAK = 16.0

#: Work quantum of the critical core in benchmark runs (accesses).
CPU_WORK = 3_000

#: Horizon for open-ended (no-critical) runs.
OPEN_HORIZON = 400_000


def report(name: str, rows: List[Dict], title: str, columns=None) -> str:
    """Render, print and persist a result table."""
    text = format_table(rows, columns=columns, title=title)
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def tc_spec(
    share: float,
    window_cycles: int = 1024,
    **kwargs,
) -> RegulatorSpec:
    """A tightly-coupled spec enforcing ``share`` of channel peak."""
    budget = max(1, round(share * PEAK * window_cycles))
    return RegulatorSpec(
        kind="tightly_coupled",
        window_cycles=window_cycles,
        budget_bytes=budget,
        **kwargs,
    )


def memguard_spec(
    share: float,
    period_cycles: int = 100_000,
    **kwargs,
) -> RegulatorSpec:
    """A MemGuard spec enforcing ``share`` of channel peak."""
    budget = max(1, round(share * PEAK * period_cycles))
    return RegulatorSpec(
        kind="memguard",
        period_cycles=period_cycles,
        budget_bytes=budget,
        **kwargs,
    )


def run_open(config: PlatformConfig, horizon: int = OPEN_HORIZON) -> PlatformResult:
    """Run a platform without early termination, to a fixed horizon."""
    platform = Platform(config)
    elapsed = platform.run(horizon, stop_when_critical_done=False)
    return PlatformResult(platform, elapsed)


# ---------------------------------------------------------------------------
# parallel execution (one shared runner per benchmark process)
# ---------------------------------------------------------------------------
_RUNNER: Optional[ParallelRunner] = None


def runner() -> ParallelRunner:
    """The suite-wide :class:`ParallelRunner` (workers from
    ``REPRO_JOBS``, on-disk cache unless ``REPRO_CACHE=off``)."""
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = ParallelRunner(cache=ResultCache.from_env())
    return _RUNNER


def run_specs(specs: Sequence[RunSpec]) -> List[RunSummary]:
    """Fan a batch of independent runs out through the shared runner.

    Each batch also refreshes ``results/runner_telemetry.json`` -- the
    execution report (cache accounting, worker utilization, per-spec
    seconds) sitting next to the result tables it produced.
    """
    results = runner().run(specs)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    write_runner_report(
        runner(), os.path.join(RESULTS_DIR, "runner_telemetry.json")
    )
    return results


def experiment_spec(
    config: PlatformConfig, max_cycles: int = DEFAULT_MAX_CYCLES, **kwargs
) -> RunSpec:
    """A spec matching :func:`repro.soc.experiment.run_experiment`."""
    return RunSpec(config=config, max_cycles=max_cycles, **kwargs)


def open_spec(
    config: PlatformConfig, horizon: int = OPEN_HORIZON, **kwargs
) -> RunSpec:
    """A spec matching :func:`run_open` (no early termination)."""
    return RunSpec(
        config=config,
        max_cycles=horizon,
        stop_when_critical_done=False,
        **kwargs,
    )


def loaded_config(
    num_accels: int,
    accel_regulator: Optional[RegulatorSpec] = None,
    cpu_work: int = CPU_WORK,
    **kwargs,
) -> PlatformConfig:
    """The standard 1-critical-core + N-hogs scenario."""
    return zcu102(
        num_accels=num_accels,
        cpu_work=cpu_work,
        accel_regulator=accel_regulator,
        **kwargs,
    )
