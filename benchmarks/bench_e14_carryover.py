"""E14 -- Ablation: credit carry-over (token-bucket depth).

A tumbling window (carry-over 0) discards unused credit; a deeper
bucket lets an intermittently active master accumulate up to
``(carryover + 1)`` windows of allowance and then burst it out at
once.  For duty-cycled accelerators that raises achieved throughput
toward the configured rate -- at the price of larger instantaneous
bursts into the victim.  This sweep quantifies that knob, which the
IP exposes as the bucket-capacity register.
"""

from __future__ import annotations

from repro.monitor.window import WindowedBandwidthMonitor
from repro.soc.experiment import PlatformResult
from repro.soc.platform import MasterSpec, Platform, PlatformConfig

from benchmarks.common import PEAK, report, tc_spec

MB = 1 << 20
SHARE = 0.20
WINDOW = 512
CARRYOVERS = (0, 1, 2, 4, 8)
ANALYSIS_BIN = 512


def _config(carryover):
    spec = tc_spec(SHARE, window_cycles=WINDOW, carryover_windows=carryover)
    masters = (
        MasterSpec(
            name="cpu0", workload="latency_probe",
            region_base=0x1000_0000, region_extent=4 * MB,
            work=3_000, max_outstanding=4, critical=True,
        ),
        # Duty-cycled DMA: idle phases bank credit under carry-over.
        MasterSpec(
            name="bursty", workload="matmul_stream",
            region_base=0x2000_0000, region_extent=4 * MB,
            regulator=spec,
        ),
    )
    return PlatformConfig(masters=masters)


def _run(carryover):
    platform = Platform(_config(carryover))
    monitor = WindowedBandwidthMonitor(platform.ports["bursty"], ANALYSIS_BIN)
    elapsed = platform.run(8_000_000)
    result = PlatformResult(platform, elapsed)
    budget_per_bin = SHARE * PEAK * ANALYSIS_BIN
    return {
        "carryover_windows": carryover,
        "bursty_B_cyc": result.master("bursty").bandwidth_bytes_per_cycle,
        "rate_vs_configured": result.master("bursty").bandwidth_bytes_per_cycle
        / (SHARE * PEAK),
        "peak_bin_vs_budget": monitor.peak_window_bytes() / budget_per_bin,
        "critical_p99": result.critical().latency_p99,
    }


def run_e14():
    return [_run(c) for c in CARRYOVERS]


def test_e14_carryover(benchmark):
    rows = benchmark.pedantic(run_e14, rounds=1, iterations=1)
    report(
        "e14_carryover",
        rows,
        "E14: credit carry-over sweep (duty-cycled DMA budgeted "
        f"{SHARE:.0%} of peak, window={WINDOW} cyc)",
    )
    # Throughput of the duty-cycled master grows with bucket depth...
    rates = [r["bursty_B_cyc"] for r in rows]
    assert rates[-1] > rates[0] * 1.1
    assert all(b >= a * 0.98 for a, b in zip(rates, rates[1:]))
    # ...but the long-run rate never exceeds the configured budget
    # beyond the initial bucket fill ((carryover+1) windows of credit
    # amortized over the run, a few percent here).
    assert all(r["rate_vs_configured"] <= 1.05 for r in rows)
    # Deeper buckets mean bigger instantaneous bursts.
    peaks = [r["peak_bin_vs_budget"] for r in rows]
    assert peaks[-1] > peaks[0] * 1.5
