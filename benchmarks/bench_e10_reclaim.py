"""E10 -- Extension: MemGuard budget reclaim, and why the IP obsoletes it.

MemGuard's predictive reclaim redistributes unused budget between
software-regulated actors at period granularity.  The scenario: a
"camera" DMA that finishes a bounded transfer early (the donor) next
to an always-on compute DMA (the taker), both reserved 20% of peak.

The comparison point for the paper: the tightly-coupled IP in
work-conserving mode achieves the same redistribution *implicitly*
and at cycle granularity -- idle bandwidth is injected wherever it
appears, no prediction, no pool, no extra interrupts.
"""

from __future__ import annotations

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import PlatformResult
from repro.soc.platform import MasterSpec, Platform, PlatformConfig

from benchmarks.common import report

MB = 1 << 20
SHARE = 0.20
PERIOD = 20_000
WINDOW = 256
HORIZON = 400_000
DONOR_BYTES = 64 * 1024


def _masters(spec):
    return (
        MasterSpec(
            name="donor", workload="stream_read",
            region_base=0x1000_0000, region_extent=4 * MB,
            work=DONOR_BYTES, regulator=spec,
        ),
        MasterSpec(
            name="taker", workload="stream_read",
            region_base=0x1040_0000, region_extent=4 * MB,
            regulator=spec,
        ),
    )


def _run(spec):
    platform = Platform(PlatformConfig(masters=_masters(spec)))
    elapsed = platform.run(HORIZON, stop_when_critical_done=False)
    result = PlatformResult(platform, elapsed)
    taker = platform.regulators["taker"]
    return {
        "taker_bw_B_cyc": result.master("taker").bandwidth_bytes_per_cycle,
        "total_bw_B_cyc": sum(
            m.bytes_moved for m in result.masters.values()
        ) / elapsed,
        "extra_interrupts": getattr(taker, "interrupt_count", 0),
        "reclaimed_bytes": getattr(taker, "reclaimed_bytes", 0),
    }


def run_e10():
    rows = []
    memguard = RegulatorSpec(
        kind="memguard", period_cycles=PERIOD,
        budget_bytes=round(SHARE * 16.0 * PERIOD),
    )
    row = _run(memguard)
    row["scheme"] = "memguard"
    rows.append(row)

    reclaim = RegulatorSpec(
        kind="memguard", period_cycles=PERIOD,
        budget_bytes=round(SHARE * 16.0 * PERIOD),
        reclaim=True, reclaim_chunk=8_192,
    )
    row = _run(reclaim)
    row["scheme"] = "memguard+reclaim"
    rows.append(row)

    tc_wc = RegulatorSpec(
        kind="tightly_coupled", window_cycles=WINDOW,
        budget_bytes=round(SHARE * 16.0 * WINDOW),
        work_conserving=True,
    )
    row = _run(tc_wc)
    row["scheme"] = "tc_work_conserving"
    rows.append(row)
    return rows


def test_e10_reclaim(benchmark):
    rows = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    report(
        "e10_reclaim",
        rows,
        "E10: spare-budget redistribution -- MemGuard reclaim vs the "
        f"work-conserving IP (donor stops after {DONOR_BYTES >> 10} KiB; "
        f"both actors reserved {SHARE:.0%} of peak)",
        columns=[
            "scheme", "taker_bw_B_cyc", "total_bw_B_cyc",
            "reclaimed_bytes", "extra_interrupts",
        ],
    )
    by_scheme = {r["scheme"]: r for r in rows}
    mg = by_scheme["memguard"]
    rc = by_scheme["memguard+reclaim"]
    wc = by_scheme["tc_work_conserving"]
    # Reclaim lifts the taker meaningfully above its static budget.
    assert rc["taker_bw_B_cyc"] > mg["taker_bw_B_cyc"] * 1.2
    assert rc["reclaimed_bytes"] > 0
    # The work-conserving IP redistributes at least as well, without
    # reclaim machinery (no pool interrupts at all).
    assert wc["taker_bw_B_cyc"] >= rc["taker_bw_B_cyc"] * 0.9
    assert wc["reclaimed_bytes"] == 0
    # Reclaim costs extra overflow interrupts vs plain MemGuard.
    assert rc["extra_interrupts"] > mg["extra_interrupts"]
