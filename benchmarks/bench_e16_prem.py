"""E16 -- Baseline: PREM-style mutual exclusion vs rate-based regulation.

The predictable-execution line of work (the authors' HePREM/GPUguard
papers) removes interference by mutual exclusion: no accelerator may
start a memory access while the critical task's memory phase is
active, and accelerators take turns via a token.

Two observations this bench quantifies:

* PREM offers the strongest victim protection of the
  non-reservation schemes, but the accelerators get *whatever is
  left* -- there is no way to guarantee any of them a rate (contrast
  E11/E5), and a longer critical memory phase squeezes them
  arbitrarily.
* at cache-miss granularity (a critical core with MLP whose "memory
  phases" are individual misses), PREM's fill-the-gaps behaviour
  converges to what the work-conserving IP does *on top of* explicit
  reservations -- the CMRI insight that motivates hosting injection
  in the regulator.

All schemes face 4 streaming hogs around the critical core; the
rate-based IP is configured at 10% of peak per hog.
"""

from __future__ import annotations

from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import run_experiment

from benchmarks.common import loaded_config, report, tc_spec

HOGS = 4
SHARE = 0.10


def _row(scheme, result):
    hog_bw = sum(
        result.master(f"acc{i}").bandwidth_bytes_per_cycle
        for i in range(HOGS)
    )
    return {
        "scheme": scheme,
        "hog_bw_B_cyc": hog_bw,
        "critical_runtime": result.critical_runtime(),
        "critical_p99": result.critical().latency_p99,
        "dram_util": result.dram.utilization,
    }


def run_e16():
    rows = []
    prem_spec = RegulatorSpec(kind="prem", prem_hold_cycles=1024)
    rows.append(
        _row("prem", run_experiment(
            loaded_config(num_accels=HOGS, accel_regulator=prem_spec)
        ))
    )
    rows.append(
        _row("tightly_coupled", run_experiment(
            loaded_config(
                num_accels=HOGS,
                accel_regulator=tc_spec(SHARE, window_cycles=256),
            )
        ))
    )
    rows.append(
        _row("tc_work_conserving", run_experiment(
            loaded_config(
                num_accels=HOGS,
                accel_regulator=tc_spec(
                    SHARE, window_cycles=256, work_conserving=True
                ),
            )
        ))
    )
    rows.append(
        _row("unregulated", run_experiment(loaded_config(num_accels=HOGS)))
    )
    return rows


def test_e16_prem_baseline(benchmark):
    rows = benchmark.pedantic(run_e16, rounds=1, iterations=1)
    report(
        "e16_prem",
        rows,
        "E16: PREM mutual exclusion vs rate-based regulation "
        f"({HOGS} hogs; IP budgets {SHARE:.0%} of peak per hog)",
    )
    by_scheme = {r["scheme"]: r for r in rows}
    prem = by_scheme["prem"]
    tc = by_scheme["tightly_coupled"]
    wc = by_scheme["tc_work_conserving"]
    unreg = by_scheme["unregulated"]
    # Every scheme protects the victim vs unregulated.
    for row in (prem, tc, wc):
        assert row["critical_runtime"] < unreg["critical_runtime"]
    # PREM's mutual exclusion gives the best victim runtime of the
    # three (it is the isolation-maximal point).
    assert prem["critical_runtime"] <= min(
        tc["critical_runtime"], wc["critical_runtime"]
    )
    # The work-conserving IP reaches PREM-class utilization (within
    # 15%) while *also* honouring explicit per-hog reservations,
    # which PREM cannot express.
    assert wc["hog_bw_B_cyc"] >= tc["hog_bw_B_cyc"]
    assert wc["hog_bw_B_cyc"] >= prem["hog_bw_B_cyc"] * 0.85
    assert unreg["hog_bw_B_cyc"] > max(
        r["hog_bw_B_cyc"] for r in (prem, tc, wc)
    )
