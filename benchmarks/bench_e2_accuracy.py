"""E2 -- Regulation accuracy: configured vs achieved bandwidth.

One DMA hog regulated to a sweep of budgets (fractions of channel
peak), for the tightly-coupled IP and for software MemGuard at the
same long-run rate.  The paper's claim: the fine-grained IP tracks
the configured rate within a few percent at every setting, while the
software baseline overshoots (interrupt latency + in-flight traffic)
and is only accurate when averaged over whole periods.
"""

from __future__ import annotations

from repro.analysis.metrics import regulation_error
from repro.soc.presets import zcu102

from benchmarks.common import (
    OPEN_HORIZON,
    PEAK,
    memguard_spec,
    open_spec,
    report,
    run_specs,
    tc_spec,
)

SHARES = (0.05, 0.10, 0.20, 0.30, 0.50, 0.70)


def _spec(regulator):
    config = zcu102(
        num_cpus=1, num_accels=1, cpu_work=1, accel_regulator=regulator
    )
    return open_spec(config, OPEN_HORIZON)


def run_e2():
    # One independent run per (share, scheme) grid point, fanned out
    # through the parallel runner.
    specs = []
    for share in SHARES:
        specs.append(_spec(tc_spec(share)))
        specs.append(_spec(memguard_spec(share)))
    results = run_specs(specs)
    rows = []
    for index, share in enumerate(SHARES):
        configured = share * PEAK
        tc_rate = results[2 * index].master("acc0").bytes_moved / OPEN_HORIZON
        mg_rate = (
            results[2 * index + 1].master("acc0").bytes_moved / OPEN_HORIZON
        )
        rows.append(
            {
                "share_of_peak": share,
                "configured_B_cyc": configured,
                "tc_B_cyc": tc_rate,
                "tc_err_pct": 100 * regulation_error(tc_rate, configured),
                "memguard_B_cyc": mg_rate,
                "mg_err_pct": 100 * regulation_error(mg_rate, configured),
            }
        )
    return rows


def test_e2_accuracy(benchmark):
    rows = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    report(
        "e2_accuracy",
        rows,
        "E2: configured vs achieved bandwidth (1 hog, TC window=1024cyc, "
        "MemGuard period=100kcyc)",
    )
    # TC is accurate everywhere the device can physically deliver the
    # rate (a solo hog sustains ~82% of peak, so skip the 0.7 point
    # for the lower bound).
    for row in rows:
        assert row["tc_err_pct"] <= 1.0  # never above configured
        if row["share_of_peak"] <= 0.5:
            assert abs(row["tc_err_pct"]) <= 8.0
    # MemGuard never under-delivers but overshoots at tight budgets.
    tight = [r for r in rows if r["share_of_peak"] <= 0.2]
    assert all(r["mg_err_pct"] >= -1.0 for r in tight)
    assert max(r["mg_err_pct"] for r in tight) > min(
        abs(r["tc_err_pct"]) for r in tight
    )
