"""E21 -- Macro-benchmark: regulation value on application scenarios.

The micro-experiments use synthetic hog mixes; this one replays the
three named application scenarios (ADAS stack, video pipeline,
industrial control -- `repro.soc.scenarios`) and reports, per
scenario, what deploying the tightly-coupled IP on every non-critical
actor does to the critical task, at a uniform 10%-of-peak reservation
per actor.

This is the "results on real workloads" table of the evaluation: the
improvement factor varies with the scenario's aggressor mix (the
video pipeline's strided scaler and dual stream DMAs interfere more
per byte than the industrial scenario's light telemetry), but the
direction never does.
"""

from __future__ import annotations

from repro.analysis.compare import critical_summary
from repro.regulation.factory import RegulatorSpec
from repro.soc.scenarios import SCENARIOS, make_scenario

from benchmarks.common import experiment_spec, report, run_specs

SHARE = 0.10
WINDOW = 256
SPEC = RegulatorSpec(
    kind="tightly_coupled",
    window_cycles=WINDOW,
    budget_bytes=max(1, round(SHARE * 16.0 * WINDOW)),
)
HORIZON = 8_000_000


def _scenario_specs(name):
    """(unregulated, regulated) run specs for one scenario."""
    scenario = SCENARIOS[name]
    regulators = {
        actor.name: SPEC for actor in scenario.actors if not actor.critical
    }
    return (
        experiment_spec(make_scenario(name), max_cycles=HORIZON),
        experiment_spec(
            make_scenario(name, regulators=regulators), max_cycles=HORIZON
        ),
    )


def run_e21():
    # Both variants of every scenario go out as a single batch.
    names = sorted(SCENARIOS)
    specs = []
    for name in names:
        specs.extend(_scenario_specs(name))
    results = run_specs(specs)
    rows = []
    for index, name in enumerate(names):
        unreg, reg = results[2 * index], results[2 * index + 1]
        summary = critical_summary(unreg, reg)
        critical = next(
            a.name for a in SCENARIOS[name].actors if a.critical
        )
        rows.append(
            {
                "scenario": name,
                "critical": critical,
                "unreg_runtime": unreg.critical_runtime(),
                "reg_runtime": reg.critical_runtime(),
                "runtime_ratio": summary["runtime_ratio"],
                "p99_ratio": summary["p99_ratio"],
            }
        )
    return rows


def test_e21_scenarios(benchmark):
    rows = benchmark.pedantic(run_e21, rounds=1, iterations=1)
    report(
        "e21_scenarios",
        rows,
        "E21: regulation value on the application scenarios "
        f"(every non-critical actor at {SHARE:.0%} of peak, "
        f"window={WINDOW} cyc; ratios = regulated/unregulated)",
    )
    for row in rows:
        # Regulation never hurts the critical task...
        assert row["runtime_ratio"] <= 1.02
        assert row["p99_ratio"] <= 1.05
    # ...and helps substantially in at least two of the three
    # scenarios (the third may be lightly loaded by construction).
    strong = [r for r in rows if r["runtime_ratio"] < 0.8]
    assert len(strong) >= 2
