"""E20 -- The operating-space map: budget share x window size.

A designer choosing regulator settings navigates two axes at once:
how much bandwidth to grant the best-effort actors (share) and how
finely to enforce it (window).  This bench sweeps the 2-D grid and
renders the victim's p99 latency as a heat map -- the summary figure
a deployment guide would print.

Expected landscape:

* latency grows with share (more admitted interference) -- every row;
* at equal share, finer windows flatten the tail (E3's effect) --
  the gradient along each column;
* the paper's recommended operating region (shares <= ~10%, windows
  of a few hundred cycles) sits in the low-latency corner.
"""

from __future__ import annotations

from repro.analysis.ascii_plot import heat_grid

from benchmarks.common import (
    experiment_spec,
    loaded_config,
    report,
    run_specs,
    tc_spec,
)

SHARES = (0.05, 0.10, 0.15, 0.20)
WINDOWS = (128, 512, 2048, 8192)
HOGS = 4


def run_e20():
    # The 2-D grid is one batch of independent runs.
    grid = [(share, window) for share in SHARES for window in WINDOWS]
    specs = [
        experiment_spec(
            loaded_config(
                num_accels=HOGS,
                accel_regulator=tc_spec(share, window_cycles=window),
            )
        )
        for share, window in grid
    ]
    results = run_specs(specs)
    return [
        {
            "share": share,
            "window_cyc": window,
            "critical_p99": summary.critical().latency_p99,
            "critical_runtime": summary.critical_runtime(),
        }
        for (share, window), summary in zip(grid, results)
    ]


def test_e20_operating_space(benchmark):
    rows = benchmark.pedantic(run_e20, rounds=1, iterations=1)
    text = report(
        "e20_operating_space",
        rows,
        "E20: victim p99 latency over the share x window grid "
        f"({HOGS} hogs)",
    )
    # Render the heat-map view alongside the raw table.
    matrix = [
        [
            next(
                r["critical_p99"]
                for r in rows
                if r["share"] == share and r["window_cyc"] == window
            )
            for window in WINDOWS
        ]
        for share in SHARES
    ]
    grid = heat_grid(
        matrix,
        row_labels=[f"{s:.0%}" for s in SHARES],
        col_labels=[str(w) for w in WINDOWS],
        legend="victim p99 (rows: per-hog share, cols: window cycles)",
    )
    print()
    print(grid)
    import os

    from benchmarks.common import RESULTS_DIR

    with open(os.path.join(RESULTS_DIR, "e20_operating_space.txt"), "a") as fh:
        fh.write("\n" + grid + "\n")

    by_key = {
        (r["share"], r["window_cyc"]): r["critical_p99"] for r in rows
    }
    # Latency grows with share at every window size.
    for window in WINDOWS:
        assert by_key[(SHARES[-1], window)] > by_key[(SHARES[0], window)]
    # The recommended corner (small share, fine window) is the best
    # cell of the grid, within noise.
    corner = by_key[(SHARES[0], WINDOWS[0])]
    assert corner <= min(by_key.values()) * 1.3
    # The worst cell is the large-share coarse-window corner's
    # neighbourhood: at least 2x the best corner.
    assert max(by_key.values()) > corner * 2
