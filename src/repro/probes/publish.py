"""Process-global probe-frame publisher hook.

The bridge between an in-flight simulation and streaming consumers:
``repro serve`` installs a publisher; :func:`~repro.runner.parallel.
execute_spec` checks for one before running and, when present,
attaches a :class:`~repro.probes.sampler.ProbeSampler` whose frames
are relayed as plain dicts.

The hook is deliberately a module global rather than a ``RunSpec``
field: spec content hashes (cache keys, dedup keys, coalescing keys)
must not depend on who is watching.  Pool workers are separate
processes where the global is unset, so pooled execution is untouched
-- live watching covers in-process execution (``repro serve
--jobs 1``), which is also the only place the frames could cross into
the server's event loop without extra plumbing.

Published events (one dict per call):

* ``{"event": "meta", "run": <hash>, "probes": [<metadata>...]}``
  once, before the first frame;
* ``{"event": "frame", "run": <hash>, "time": <cycle>,
  "values": {<probe>: <value>, ...}}`` per sample;
* ``{"event": "end", "run": <hash>}`` after the run completes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

Publisher = Callable[[Dict[str, Any]], None]

_publisher: Optional[Publisher] = None


def set_publisher(fn: Publisher) -> None:
    """Install the process-wide frame publisher (one at a time)."""
    global _publisher
    _publisher = fn


def clear_publisher() -> None:
    """Remove the publisher (no-op when none is installed)."""
    global _publisher
    _publisher = None


def get_publisher() -> Optional[Publisher]:
    """The installed publisher, or ``None``."""
    return _publisher


class FrameRelay:
    """Sampler consumer that forwards frames to a publisher.

    The relay copies the sampler's live row into a fresh dict per
    frame -- the publisher hands the dict to another thread/event
    loop, so it must own its memory.
    """

    def __init__(self, publisher: Publisher, run: str) -> None:
        self.publisher = publisher
        self.run = run

    def __call__(
        self, now: int, names: Tuple[str, ...], row: List[Any]
    ) -> None:
        self.publisher(
            {
                "event": "frame",
                "run": self.run,
                "time": now,
                "values": dict(zip(names, row)),
            }
        )
