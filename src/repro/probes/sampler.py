"""Periodic probe sampling into a preallocated ring buffer.

A :class:`ProbeSampler` is a pure *observer*: it schedules a daemon
tick every ``period`` cycles at :data:`~repro.sim.kernel.Phase.STATS`
(after all functional phases of the cycle, the same slot end-of-cycle
bookkeeping uses) and copies the selected probe values into a
preallocated ring of rows.  Daemon events neither keep the run alive
nor participate in any result the platform reports, and every probe
read is side-effect-free, so a run is **bit-identical** whether a
sampler is attached or not -- the differential tests in
``tests/probes/test_sampler.py`` prove this on both scheduler
backends.

The ring is allocated once at construction (``capacity`` rows of
``len(probes)`` slots each); the per-tick work is one read + one list
store per probe, with zero allocation.  Consumers (the serve-side
frame publisher, the flight recorder) subscribe via
:attr:`ProbeSampler.consumers` and receive ``(now, names, row)`` --
the *live* row, which they must copy if they keep it.
"""

from __future__ import annotations

# repro: config-layer -- resolves the REPRO_PROBE_PERIOD knob
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProbeError
from repro.probes.map import Probe, ProbeMap
from repro.sim.kernel import Phase, Simulator

#: Environment override for the default sampling period (cycles).
PROBE_PERIOD_ENV = "REPRO_PROBE_PERIOD"

#: Default sampling period when neither argument nor env is given.
DEFAULT_PROBE_PERIOD = 4096

#: A frame consumer: ``fn(now, names, row)``; ``row`` is live.
FrameConsumer = Callable[[int, Tuple[str, ...], List[Any]], None]


def resolve_probe_period(period: Optional[int] = None) -> int:
    """Sampling period: explicit argument, env knob, or default.

    Raises:
        ProbeError: the period (from either source) is not a positive
            integer.
    """
    if period is None:
        raw = os.environ.get(PROBE_PERIOD_ENV, "").strip()
        if not raw:
            return DEFAULT_PROBE_PERIOD
        try:
            period = int(raw)
        except ValueError:
            raise ProbeError(
                f"{PROBE_PERIOD_ENV} must be a positive integer, got {raw!r}"
            ) from None
    if period < 1:
        raise ProbeError(f"probe period must be >= 1, got {period}")
    return period


class ProbeSampler:
    """Snapshot a probe selection every N cycles into a ring buffer.

    Args:
        sim: The simulation kernel to observe.
        probe_map: The platform's probe register file.
        probes: Optional glob patterns selecting a probe subset
            (``None`` = every probe); see :meth:`ProbeMap.select`.
        period: Sampling period in cycles (``None`` resolves
            ``REPRO_PROBE_PERIOD``, default 4096).
        capacity: Ring-buffer rows kept (oldest frames overwritten).
    """

    def __init__(
        self,
        sim: Simulator,
        probe_map: ProbeMap,
        probes: Optional[Sequence[str]] = None,
        period: Optional[int] = None,
        capacity: int = 256,
    ) -> None:
        if capacity < 1:
            raise ProbeError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.map = probe_map
        self.probes: List[Probe] = probe_map.select(probes)
        self.period = resolve_probe_period(period)
        self.capacity = capacity
        self.names: Tuple[str, ...] = tuple(p.name for p in self.probes)
        # Pre-resolved read callables: the tick loop indexes this list
        # instead of re-walking Probe objects.
        self._reads: List[Callable[[], Any]] = [p.read for p in self.probes]
        width = len(self.probes)
        self._times: List[int] = [0] * capacity
        self._rows: List[List[Any]] = [[0] * width for _ in range(capacity)]
        self._count = 0
        self._attached = False
        self._stopped = False
        #: Frame consumers called after each sample (live row).
        self.consumers: List[FrameConsumer] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Schedule the sampling tick (one daemon event per period).

        Raises:
            ProbeError: already attached.
        """
        if self._attached:
            raise ProbeError("sampler already attached")
        self._attached = True
        self._stopped = False
        self.sim.schedule(
            self.period, self._tick, priority=Phase.STATS, daemon=True
        )

    def detach(self) -> None:
        """Stop sampling: the pending tick will not reschedule."""
        self._stopped = True
        self._attached = False

    # ------------------------------------------------------------------
    # sampling (runs once per period; allocation-free)
    # ------------------------------------------------------------------
    # repro: hot -- one ring-snapshot per sample period, every period
    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        slot = self._count % self.capacity
        row = self._rows[slot]
        reads = self._reads
        for i in range(len(reads)):
            row[i] = reads[i]()
        self._times[slot] = now
        self._count += 1
        consumers = self.consumers
        if consumers:
            names = self.names
            for fn in consumers:
                fn(now, names, row)
        self.sim.schedule(
            self.period, self._tick, priority=Phase.STATS, daemon=True
        )

    # ------------------------------------------------------------------
    # introspection (cold paths)
    # ------------------------------------------------------------------
    @property
    def frames_sampled(self) -> int:
        """Frames sampled over the sampler's lifetime."""
        return self._count

    @property
    def frames_dropped(self) -> int:
        """Frames overwritten because the ring wrapped."""
        return max(0, self._count - self.capacity)

    def frames(self) -> List[Dict[str, Any]]:
        """Retained frames, oldest first.

        Each frame is ``{"time": cycle, "values": {name: value}}``;
        at most ``capacity`` frames are retained.
        """
        out: List[Dict[str, Any]] = []
        names = self.names
        for k in range(max(0, self._count - self.capacity), self._count):
            slot = k % self.capacity
            out.append(
                {
                    "time": self._times[slot],
                    "values": dict(zip(names, self._rows[slot])),
                }
            )
        return out

    def last_frame(self) -> Optional[Dict[str, Any]]:
        """The most recent frame, or ``None`` before the first tick."""
        if not self._count:
            return None
        slot = (self._count - 1) % self.capacity
        return {
            "time": self._times[slot],
            "values": dict(zip(self.names, self._rows[slot])),
        }
