"""The probe register file: named, addressable live reads.

The reproduced IP exposes its monitor state as memory-mapped
registers; this module is that register file for the simulated
platform.  At platform build time every component registers *probes*:
a probe is a name (``component/master/metric``), a small sequential
address (its registration index -- what a memory map would assign),
metadata (unit, master, channel group), and a zero-argument read
function.

Reads are **pull-based and allocation-free**: each read function is a
pre-bound callable resolved once at registration (the same discipline
the ``# repro: hot`` lint enforces for telemetry handles), so sampling
a probe set costs one call and one list store per probe -- no dict
building, no attribute re-lookup chains, no string formatting.

Naming scheme (see ``docs/observability.md``):

* ``kernel/<metric>`` -- simulation kernel counters;
* ``dram/<metric>`` -- memory controller;
* ``port/<master>/<metric>`` -- AXI master ports;
* ``reg/<master>/<metric>`` -- bandwidth regulators;
* ``mon/<master>/<metric>`` -- the regulator's windowed monitor.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
)

from repro.errors import ProbeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.soc.platform import Platform

ReadFn = Callable[[], Any]


class Probe:
    """One addressable live value (a register of the probe file).

    Attributes:
        addr: Sequential register address (registration order).
        name: Hierarchical probe name, e.g. ``port/cpu0/outstanding``.
        read: Zero-argument callable returning the current value.
        unit: Unit of the value (``cycles``, ``bytes``, ``txns``, ...).
        master: Owning master name, or ``None`` for platform-wide
            probes (kernel, DRAM).
        channel: Component group the probe belongs to (``kernel``,
            ``dram``, ``port``, ``reg``, ``mon``).
    """

    __slots__ = ("addr", "name", "read", "unit", "master", "channel")

    def __init__(
        self,
        addr: int,
        name: str,
        read: ReadFn,
        unit: str = "",
        master: Optional[str] = None,
        channel: Optional[str] = None,
    ) -> None:
        self.addr = addr
        self.name = name
        self.read = read
        self.unit = unit
        self.master = master
        self.channel = channel

    def describe(self) -> Dict[str, Any]:
        """Metadata dict (no value) for clients and dumps."""
        return {
            "addr": self.addr,
            "name": self.name,
            "unit": self.unit,
            "master": self.master,
            "channel": self.channel,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Probe({self.addr:#04x} {self.name})"


class ProbeMap:
    """Ordered registry of :class:`Probe` objects.

    Addresses are assigned sequentially at registration, so the map
    doubles as the platform's probe memory map: ``by_addr(i)`` is the
    probe registered ``i``-th.
    """

    def __init__(self) -> None:
        self._probes: List[Probe] = []
        self._by_name: Dict[str, Probe] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        read: ReadFn,
        unit: str = "",
        master: Optional[str] = None,
        channel: Optional[str] = None,
    ) -> Probe:
        """Register one probe; its address is the registration index.

        Raises:
            ProbeError: ``name`` is already registered or empty.
        """
        if not name:
            raise ProbeError("probe name must be non-empty")
        if name in self._by_name:
            raise ProbeError(f"probe {name!r} registered twice")
        probe = Probe(
            len(self._probes), name, read,
            unit=unit, master=master, channel=channel,
        )
        self._probes.append(probe)
        self._by_name[name] = probe
        return probe

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._probes)

    def __iter__(self) -> Iterator[Probe]:
        return iter(self._probes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        """All probe names in address order."""
        return [p.name for p in self._probes]

    def get(self, name: str) -> Probe:
        """Probe by name.

        Raises:
            ProbeError: unknown name.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise ProbeError(f"unknown probe {name!r}") from None

    def by_addr(self, addr: int) -> Probe:
        """Probe by register address.

        Raises:
            ProbeError: address outside the map.
        """
        if not 0 <= addr < len(self._probes):
            raise ProbeError(
                f"probe address {addr} outside [0, {len(self._probes)})"
            )
        return self._probes[addr]

    def select(self, patterns: Optional[Sequence[str]] = None) -> List[Probe]:
        """Probes matching any of the glob ``patterns`` (address order).

        ``None`` (or an empty sequence) selects every probe.  Patterns
        use :func:`fnmatch.fnmatchcase` semantics, so ``port/cpu0/*``
        or ``*/tokens`` work as expected.

        Raises:
            ProbeError: the patterns match nothing at all.
        """
        if not patterns:
            return list(self._probes)
        selected = [
            p
            for p in self._probes
            if any(fnmatchcase(p.name, pat) for pat in patterns)
        ]
        if not selected:
            raise ProbeError(f"no probe matches {list(patterns)!r}")
        return selected

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, name: str) -> Any:
        """Current value of one probe."""
        return self.get(name).read()

    def snapshot(
        self, probes: Optional[Sequence[Probe]] = None
    ) -> Dict[str, Any]:
        """Name -> value dict of the selected probes (cold path)."""
        targets = self._probes if probes is None else probes
        return {p.name: p.read() for p in targets}

    def describe(
        self, probes: Optional[Sequence[Probe]] = None
    ) -> List[Dict[str, Any]]:
        """Metadata list of the selected probes (cold path)."""
        targets = self._probes if probes is None else probes
        return [p.describe() for p in targets]


def _register_kernel(probes: ProbeMap, platform: "Platform") -> None:
    sim = platform.sim
    probes.register(
        "kernel/now", lambda: sim.now, unit="cycles", channel="kernel"
    )
    # sim.events_dispatched is intentionally NOT a probe: the run
    # loop commits it only when run() returns, so a mid-run read is a
    # stale zero -- worse than no probe at all.
    probes.register(
        "kernel/pending_events",
        lambda: sim.pending_events,
        unit="events",
        channel="kernel",
    )


def _register_dram(probes: ProbeMap, platform: "Platform") -> None:
    dram = platform.dram
    stat_serviced = dram.stats.counter("serviced")
    stat_bytes = dram.stats.counter("bytes")
    probes.register(
        "dram/queue_depth", lambda: dram.queue_depth,
        unit="txns", channel="dram",
    )
    probes.register(
        "dram/busy_cycles", lambda: dram.busy_cycles,
        unit="cycles", channel="dram",
    )
    probes.register(
        "dram/serviced", lambda: stat_serviced.value,
        unit="txns", channel="dram",
    )
    probes.register(
        "dram/bytes", lambda: stat_bytes.value,
        unit="bytes", channel="dram",
    )
    probes.register(
        "dram/row_hit_rate", dram.row_hit_rate,
        unit="ratio", channel="dram",
    )


def _register_port(probes: ProbeMap, name: str, port: Any) -> None:
    stat_completed = port.stats.counter("completed")
    stat_bytes = port.stats.counter("bytes")
    stat_denials = port.stats.counter("regulator_denials")
    probes.register(
        f"port/{name}/queue_depth", lambda: port.queue_depth,
        unit="txns", master=name, channel="port",
    )
    probes.register(
        f"port/{name}/outstanding", lambda: port.outstanding,
        unit="txns", master=name, channel="port",
    )
    probes.register(
        f"port/{name}/completed", lambda: stat_completed.value,
        unit="txns", master=name, channel="port",
    )
    probes.register(
        f"port/{name}/bytes", lambda: stat_bytes.value,
        unit="bytes", master=name, channel="port",
    )
    probes.register(
        f"port/{name}/denials", lambda: stat_denials.value,
        unit="txns", master=name, channel="port",
    )
    probes.register(
        f"port/{name}/last_latency", lambda: port.last_latency,
        unit="cycles", master=name, channel="port",
    )
    probes.register(
        f"port/{name}/throttle_cycles",
        lambda: port.throttle_cycles_at(port.sim.now),
        unit="cycles", master=name, channel="port",
    )


def _register_regulator(probes: ProbeMap, name: str, reg: Any) -> None:
    # Deliberately duck-typed on the introspection surface of
    # TightlyCoupledRegulator so custom regulator classes with the
    # same accessors get the same probes.
    probes.register(
        f"reg/{name}/charged_bytes", lambda: reg.charged_bytes,
        unit="bytes", master=name, channel="reg",
    )
    probes.register(
        f"reg/{name}/charged_transactions",
        lambda: reg.charged_transactions,
        unit="txns", master=name, channel="reg",
    )
    if hasattr(reg, "peek_tokens"):
        probes.register(
            f"reg/{name}/tokens", reg.peek_tokens,
            unit="bytes", master=name, channel="reg",
        )
    if hasattr(reg, "budget_bytes"):
        probes.register(
            f"reg/{name}/budget_bytes", lambda: reg.budget_bytes,
            unit="bytes", master=name, channel="reg",
        )
    if hasattr(reg, "window_cycles"):
        probes.register(
            f"reg/{name}/window_cycles", lambda: reg.window_cycles,
            unit="cycles", master=name, channel="reg",
        )
    if hasattr(reg, "reconfig_count"):
        probes.register(
            f"reg/{name}/reconfig_count", lambda: reg.reconfig_count,
            unit="writes", master=name, channel="reg",
        )
    if hasattr(reg, "injected_bytes"):
        probes.register(
            f"reg/{name}/injected_bytes", lambda: reg.injected_bytes,
            unit="bytes", master=name, channel="reg",
        )
    monitor = getattr(reg, "monitor", None)
    if monitor is not None:
        probes.register(
            f"mon/{name}/window_bytes", monitor.current_window_bytes,
            unit="bytes", master=name, channel="mon",
        )
        probes.register(
            f"mon/{name}/total_bytes", monitor.total_bytes,
            unit="bytes", master=name, channel="mon",
        )
        probes.register(
            f"mon/{name}/peak_window_bytes", monitor.peak_window_bytes,
            unit="bytes", master=name, channel="mon",
        )


def build_probe_map(platform: "Platform") -> ProbeMap:
    """Register every component's probes for one built platform.

    Called by :class:`~repro.soc.platform.Platform` at the end of
    construction; the result is exposed as ``platform.probes``.
    Registration order (and therefore addressing) is deterministic:
    kernel, DRAM, then per-master port/regulator/monitor probes in
    config order.
    """
    probes = ProbeMap()
    _register_kernel(probes, platform)
    _register_dram(probes, platform)
    for spec in platform.config.masters:
        name = spec.name
        _register_port(probes, name, platform.ports[name])
        regulator = platform.regulators.get(name)
        if regulator is not None:
            _register_regulator(probes, name, regulator)
    return probes
