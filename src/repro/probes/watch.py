"""Synchronous ``watch`` client and the terminal frame renderer.

The client side of the ``repro serve`` watch protocol (see
:mod:`repro.runner.serve`): subscribe over the Unix socket, iterate
frames as in-flight runs publish them.  The renderer turns raw probe
frames into the live per-master view ``repro watch`` prints --
bandwidth, throttle duty, budget headroom, last latency -- deriving
rates from deltas between consecutive frames.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.errors import ServeError


def iter_watch(
    socket_path: str,
    probes: Optional[Sequence[str]] = None,
    max_frames: Optional[int] = None,
    timeout: Optional[float] = None,
    request_id: Any = 0,
) -> Iterator[Dict[str, Any]]:
    """Subscribe to probe frames from a :class:`BatchServer`.

    Yields the server's messages in order: optional ``meta`` dicts
    (``{"probes": [...]}``) and ``frame`` dicts (``{"frame": {...}}``)
    until ``max_frames`` frames were delivered (server closes the
    subscription with a ``done`` line) or the connection ends.

    Args:
        socket_path: The server's Unix socket.
        probes: Optional glob patterns; the server filters frame
            values to matching probe names.
        max_frames: Stop after this many frames (``None`` = stream
            until the connection drops).
        timeout: Per-read socket timeout in seconds (``None`` waits
            indefinitely).
        request_id: Echoed back by the server.

    Raises:
        ServeError: The server answered with a protocol error.
    """
    payload: Dict[str, Any] = {"op": "watch", "id": request_id}
    if probes:
        payload["probes"] = list(probes)
    if max_frames is not None:
        payload["max_frames"] = max_frames
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                message = json.loads(line)
                if message.get("error"):
                    raise ServeError(str(message["error"]))
                if message.get("watching"):
                    continue  # subscription ack
                if message.get("done"):
                    return
                yield message


def probe_list(
    socket_path: str, timeout: Optional[float] = 5.0, request_id: Any = 0
) -> List[Dict[str, Any]]:
    """Probe metadata of the most recent published run (may be empty).

    Raises:
        ServeError: The server answered with a protocol error or the
            connection ended before a reply.
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        request = {"op": "probe_list", "id": request_id}
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line:
        raise ServeError("connection closed before the probe list arrived")
    message = json.loads(line)
    if message.get("error"):
        raise ServeError(str(message["error"]))
    return list(message.get("probes", []))


class WatchView:
    """Render probe frames as a per-master terminal table.

    Stateful: rates (bandwidth, throttle duty) are deltas between the
    current and the previous rendered frame, so feed frames in order.
    """

    def __init__(self) -> None:
        self._prev_time: Optional[int] = None
        self._prev_values: Dict[str, Any] = {}

    @staticmethod
    def _masters(values: Dict[str, Any]) -> List[str]:
        masters = set()
        for name in values:
            parts = name.split("/")
            if len(parts) == 3:
                masters.add(parts[1])
        return sorted(masters)

    def render(self, frame: Dict[str, Any]) -> str:
        """One aligned table for one frame dict."""
        from repro.analysis.sweep import format_table

        time = int(frame.get("time", 0))
        values: Dict[str, Any] = frame.get("values", {})
        prev_time = self._prev_time
        prev = self._prev_values
        span = time - prev_time if prev_time is not None else time
        rows = []
        for master in self._masters(values):
            row: Dict[str, Any] = {"master": master}
            nbytes = values.get(f"port/{master}/bytes")
            if nbytes is not None and span > 0:
                before = prev.get(f"port/{master}/bytes", 0)
                row["bandwidth_B_cyc"] = (nbytes - before) / span
            throttle = values.get(f"port/{master}/throttle_cycles")
            if throttle is not None and span > 0:
                before = prev.get(f"port/{master}/throttle_cycles", 0)
                row["throttle_duty"] = (throttle - before) / span
            tokens = values.get(f"reg/{master}/tokens")
            budget = values.get(f"reg/{master}/budget_bytes")
            if tokens is not None and budget:
                row["headroom"] = tokens / budget
            latency = values.get(f"port/{master}/last_latency")
            if latency is not None:
                row["last_latency"] = latency
            outstanding = values.get(f"port/{master}/outstanding")
            if outstanding is not None:
                row["outstanding"] = outstanding
            rows.append(row)
        self._prev_time = time
        self._prev_values = dict(values)
        if not rows:
            return f"cycle {time}: no per-master probes in frame"
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return format_table(rows, columns=columns, title=f"cycle {time}")
