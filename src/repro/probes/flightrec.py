"""QoS-violation flight recorder.

Evaluates :class:`~repro.probes.slo.SloRule` bounds against every
sampled probe frame and, on the first violation, dumps the evidence:

* ``violation.json`` -- the violated rule, the offending value and
  cycle, probe metadata, and run context (spec hash etc.);
* ``history.json`` -- the sampler's full ring-buffer history *up to
  and including* the violating frame (the pre-violation trajectory a
  post-hoc report can never reconstruct);
* ``trace.json`` -- the same history as Chrome/Perfetto counter
  tracks (one ``ph: "C"`` series per probe, 1 cycle = 1 µs, plus an
  instant marker at the violation), loadable in ui.perfetto.dev.

Dumps land under ``results/flightrec/dump_<k>/`` (override with the
``REPRO_FLIGHTREC`` env knob); ``<k>`` is the next free index in the
directory -- never a wall-clock timestamp, keeping dump naming
deterministic (the DET lint discipline).

:meth:`FlightRecorder.from_env` arms a recorder from environment
knobs alone (``REPRO_SLO`` = rules as inline JSON or a file path),
which is how served/CLI runs inject SLOs without touching
:class:`~repro.runner.spec.RunSpec` hashing.
"""

from __future__ import annotations

# repro: config-layer -- resolves REPRO_SLO / REPRO_FLIGHTREC knobs
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProbeError
from repro.probes.sampler import ProbeSampler
from repro.probes.slo import SloRule, SloViolation, rules_from_json
from repro.telemetry.log import get_logger

_log = get_logger(__name__)

#: Env knob: flight-recorder output directory.
FLIGHTREC_ENV = "REPRO_FLIGHTREC"

#: Env knob: SLO rules -- inline JSON list or a path to a JSON file.
SLO_ENV = "REPRO_SLO"

#: Default dump root (relative to the working directory).
DEFAULT_FLIGHTREC_DIR = os.path.join("results", "flightrec")


class FlightRecorder:
    """Watches probe frames for SLO violations and dumps evidence.

    Args:
        rules: The SLO bounds to enforce.
        out_dir: Dump root directory (default ``results/flightrec``).
        max_dumps: Stop dumping after this many violations (default 1:
            the first violation is the interesting one; later frames
            of the same excursion would dump near-identical history).
        context: Extra key/values recorded in ``violation.json``
            (spec hash, experiment label, ...).
    """

    def __init__(
        self,
        rules: Sequence[SloRule],
        out_dir: Optional[str] = None,
        max_dumps: int = 1,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        if max_dumps < 1:
            raise ProbeError(f"max_dumps must be >= 1, got {max_dumps}")
        self.rules: List[SloRule] = list(rules)
        self.out_dir = out_dir or DEFAULT_FLIGHTREC_DIR
        self.max_dumps = max_dumps
        self.context: Dict[str, Any] = dict(context or {})
        #: Violations that produced a dump, in order.
        self.violations: List[SloViolation] = []
        #: Dump directories written, matching :attr:`violations`.
        self.dump_dirs: List[str] = []
        self._sampler: Optional[ProbeSampler] = None
        self._indexed: List[Tuple[SloRule, int]] = []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_env(
        context: Optional[Dict[str, Any]] = None,
    ) -> Optional["FlightRecorder"]:
        """Recorder configured from ``REPRO_SLO``/``REPRO_FLIGHTREC``.

        Returns ``None`` when ``REPRO_SLO`` is unset/empty (the common
        case: no recorder, no sampler, zero overhead).  ``REPRO_SLO``
        may be inline JSON (a list of rule strings/dicts) or a path to
        a JSON file with the same content.

        Raises:
            ProbeError: the rules are malformed.
        """
        raw = os.environ.get(SLO_ENV, "").strip()
        if not raw:
            return None
        if raw.lstrip().startswith("["):
            rules = rules_from_json(raw)
        else:
            try:
                with open(raw, encoding="utf-8") as fh:
                    rules = rules_from_json(fh.read())
            except OSError as exc:
                raise ProbeError(
                    f"{SLO_ENV}={raw!r}: cannot read rules file: {exc}"
                ) from None
        out_dir = os.environ.get(FLIGHTREC_ENV, "").strip() or None
        return FlightRecorder(rules, out_dir=out_dir, context=context)

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self, sampler: ProbeSampler) -> None:
        """Subscribe to a sampler's frames.

        Rules are resolved to row indices once here, so the per-frame
        check is an index + compare per rule.

        Raises:
            ProbeError: a rule names a probe the sampler does not
                sample, or the recorder is already armed.
        """
        if self._sampler is not None:
            raise ProbeError("flight recorder already armed")
        names = sampler.names
        indexed: List[Tuple[SloRule, int]] = []
        for rule in self.rules:
            try:
                indexed.append((rule, names.index(rule.probe)))
            except ValueError:
                raise ProbeError(
                    f"SLO rule {rule.name!r}: probe {rule.probe!r} is not "
                    f"in the sampled set"
                ) from None
        self._sampler = sampler
        self._indexed = indexed
        sampler.consumers.append(self._on_frame)

    # ------------------------------------------------------------------
    # per-frame evaluation
    # ------------------------------------------------------------------
    def _on_frame(
        self, now: int, names: Tuple[str, ...], row: List[Any]
    ) -> None:
        if len(self.dump_dirs) >= self.max_dumps:
            return
        for rule, index in self._indexed:
            value = row[index]
            if rule.violated(value):
                self._dump(SloViolation(rule=rule, time=now, value=value))
                return

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------
    # repro: claim-protocol -- the exclusive mkdir *is* the claim
    def _next_dump_dir(self) -> str:
        """First free ``dump_<k>`` directory (deterministic naming).

        The slot is claimed with an exclusive ``mkdir`` instead of
        list-then-create: two recorders sharing an ``out_dir`` (e.g.
        parallel serve batches) race the listing, but only one of two
        concurrent ``mkdir`` calls on the same path can succeed, so
        the loser simply probes the next index.
        """
        os.makedirs(self.out_dir, exist_ok=True)
        k = 0
        while True:
            path = os.path.join(self.out_dir, f"dump_{k:03d}")
            try:
                os.mkdir(path)
            except FileExistsError:
                k += 1
                continue
            return path

    def _dump(self, violation: SloViolation) -> None:
        assert self._sampler is not None
        sampler = self._sampler
        history = sampler.frames()
        dump_dir = self._next_dump_dir()
        report = {
            "violation": violation.to_dict(),
            "rules": [rule.to_dict() for rule in self.rules],
            "probes": sampler.map.describe(sampler.probes),
            "context": self.context,
            "sample_period": sampler.period,
            "frames_retained": len(history),
            "frames_sampled": sampler.frames_sampled,
            "frames_dropped": sampler.frames_dropped,
        }
        with open(
            os.path.join(dump_dir, "violation.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        with open(
            os.path.join(dump_dir, "history.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(history, fh, indent=2)
        with open(
            os.path.join(dump_dir, "trace.json"), "w", encoding="utf-8"
        ) as fh:
            json.dump(self._trace_slice(history, violation), fh)
        self.violations.append(violation)
        self.dump_dirs.append(dump_dir)
        _log.warning(
            "flight recorder: SLO %s violated at cycle %d (value %s); "
            "dumped %d frames to %s",
            violation.rule.name, violation.time, violation.value,
            len(history), dump_dir,
        )

    def _trace_slice(
        self, history: List[Dict[str, Any]], violation: SloViolation
    ) -> Dict[str, Any]:
        """Chrome trace-event JSON: one counter track per probe."""
        events: List[Dict[str, Any]] = []
        for frame in history:
            ts = frame["time"]
            for name, value in frame["values"].items():
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": ts,
                        "pid": 1,
                        "tid": 1,
                        "args": {"value": value},
                    }
                )
        events.append(
            {
                "name": f"SLO violation: {violation.rule.name}",
                "ph": "i",
                "s": "g",
                "ts": violation.time,
                "pid": 1,
                "tid": 1,
                "args": {"value": violation.value},
            }
        )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"violation": violation.rule.name},
        }
