"""Declarative SLO rules over probe frames.

A rule bounds one probe: ``port/cpu0/last_latency <= 400`` declares a
latency SLO, ``mon/acc0/window_bytes <= 4096`` a bandwidth SLO,
``reg/acc0/tokens >= 0`` a budget-headroom SLO.  Rules are plain data
(JSON dicts or a one-line DSL string), evaluated per sampled frame by
the flight recorder (:mod:`repro.probes.flightrec`).

The comparison direction is the *allowed* region: ``<=`` means the
value must stay at or below the limit, ``>=`` at or above; a frame
outside the region is a violation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Union

from repro.errors import ProbeError

_OPS = ("<=", ">=")


@dataclass(frozen=True)
class SloRule:
    """One bound on one probe.

    Attributes:
        probe: Full probe name (``component/master/metric``).
        op: ``"<="`` (value must not exceed ``limit``) or ``">="``
            (value must not fall below ``limit``).
        limit: The bound.
        name: Optional human label; defaults to the rule's DSL form.
    """

    probe: str
    op: str
    limit: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ProbeError(f"SLO op must be one of {_OPS}, got {self.op!r}")
        if not self.probe:
            raise ProbeError("SLO rule needs a probe name")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.probe}{self.op}{self.limit:g}"
            )

    def violated(self, value: float) -> bool:
        """True when ``value`` lies outside the allowed region."""
        if self.op == "<=":
            return value > self.limit
        return value < self.limit

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class SloViolation:
    """One observed rule violation (what the flight recorder dumps)."""

    rule: SloRule
    time: int
    value: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule.to_dict(),
            "time": self.time,
            "value": self.value,
        }


def _rule_from_string(text: str) -> SloRule:
    for op in _OPS:
        if op in text:
            probe, _, limit = text.partition(op)
            try:
                bound = float(limit.strip())
            except ValueError:
                raise ProbeError(
                    f"SLO rule {text!r}: limit {limit.strip()!r} "
                    f"is not a number"
                ) from None
            return SloRule(probe=probe.strip(), op=op, limit=bound)
    raise ProbeError(
        f"SLO rule {text!r}: expected '<probe><=|>=<limit>'"
    )


def parse_rules(
    data: Iterable[Union[str, Dict[str, Any]]]
) -> List[SloRule]:
    """Build rules from DSL strings and/or JSON-style dicts.

    Accepts a mix of ``"port/cpu0/last_latency<=400"`` strings and
    ``{"probe": ..., "op": ..., "limit": ..., "name": ...}`` dicts.

    Raises:
        ProbeError: an entry is neither form, or is malformed.
    """
    rules: List[SloRule] = []
    for entry in data:
        if isinstance(entry, str):
            rules.append(_rule_from_string(entry))
        elif isinstance(entry, dict):
            try:
                rules.append(
                    SloRule(
                        probe=str(entry["probe"]),
                        op=str(entry.get("op", "<=")),
                        limit=float(entry["limit"]),
                        name=str(entry.get("name", "")),
                    )
                )
            except KeyError as exc:
                raise ProbeError(
                    f"SLO rule {entry!r} missing key {exc}"
                ) from None
        else:
            raise ProbeError(
                f"SLO rule must be a string or dict, got {type(entry).__name__}"
            )
    return rules


def rules_from_json(text: str) -> List[SloRule]:
    """Parse a JSON document: a list of rule strings/dicts.

    Raises:
        ProbeError: the document is not valid JSON or not a list.
    """
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ProbeError(f"SLO rules are not valid JSON: {exc}") from None
    if not isinstance(data, list):
        raise ProbeError("SLO rules JSON must be a list")
    return parse_rules(data)
