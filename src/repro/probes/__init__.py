"""``repro.probes``: the live observability plane.

Four layers, each usable on its own:

* :mod:`repro.probes.map` -- the **probe register file**: every
  platform component registers named, addressable, pull-based live
  reads at build time (``platform.probes``);
* :mod:`repro.probes.sampler` -- the **ProbeSampler** observer:
  snapshots a probe selection every N cycles into a preallocated
  ring buffer, bit-identical results whether attached or not;
* :mod:`repro.probes.publish` / :mod:`repro.probes.watch` -- the
  **streaming transport**: a process-global publisher hook feeding
  ``repro serve``'s ``watch`` protocol, plus the synchronous client
  and terminal renderer behind ``repro watch``;
* :mod:`repro.probes.slo` / :mod:`repro.probes.flightrec` -- the
  **QoS-violation flight recorder**: declarative SLO rules checked
  per frame; violations dump ring history + a Perfetto trace slice
  + a structured report under ``results/flightrec/``.
"""

from repro.probes.flightrec import (
    DEFAULT_FLIGHTREC_DIR,
    FLIGHTREC_ENV,
    SLO_ENV,
    FlightRecorder,
)
from repro.probes.map import Probe, ProbeMap, build_probe_map
from repro.probes.publish import (
    FrameRelay,
    clear_publisher,
    get_publisher,
    set_publisher,
)
from repro.probes.sampler import (
    DEFAULT_PROBE_PERIOD,
    PROBE_PERIOD_ENV,
    ProbeSampler,
    resolve_probe_period,
)
from repro.probes.slo import (
    SloRule,
    SloViolation,
    parse_rules,
    rules_from_json,
)
from repro.probes.watch import WatchView, iter_watch, probe_list

__all__ = [
    "DEFAULT_FLIGHTREC_DIR",
    "DEFAULT_PROBE_PERIOD",
    "FLIGHTREC_ENV",
    "FrameRelay",
    "FlightRecorder",
    "PROBE_PERIOD_ENV",
    "Probe",
    "ProbeMap",
    "ProbeSampler",
    "SLO_ENV",
    "SloRule",
    "SloViolation",
    "WatchView",
    "build_probe_map",
    "clear_publisher",
    "get_publisher",
    "iter_watch",
    "parse_rules",
    "probe_list",
    "resolve_probe_period",
    "rules_from_json",
    "set_publisher",
]
