"""Scenario report generation.

Produces a self-contained plain-text report for one platform run:
per-master traffic and latency, regulation state, DRAM behaviour, and
(when a solo baseline is supplied) slowdown and isolation figures.
Used by the CLI's ``report`` subcommand and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.metrics import isolation_error, slowdown, utilization_of
from repro.analysis.sweep import format_table
from repro.soc.experiment import PlatformResult


def _master_rows(result: PlatformResult) -> List[dict]:
    rows = []
    for name in sorted(result.masters):
        m = result.master(name)
        rows.append(
            {
                "master": name,
                "txns": m.completed,
                "bytes": m.bytes_moved,
                "bw_B_cyc": m.bandwidth_bytes_per_cycle,
                "lat_mean": m.latency_mean,
                "lat_p99": m.latency_p99,
                "denials": m.regulator_denials,
                "finished": m.finished_at if m.finished_at else "-",
            }
        )
    return rows


def _regulator_rows(result: PlatformResult) -> List[dict]:
    rows = []
    for name, regulator in sorted(result.platform.regulators.items()):
        row = {
            "master": name,
            "type": type(regulator).__name__,
            "charged_bytes": regulator.charged_bytes,
        }
        budget = getattr(regulator, "budget_bytes", None)
        if budget is not None:
            row["budget_bytes"] = budget
        window = getattr(regulator, "window_cycles", None) or getattr(
            regulator, "period_cycles", None
        )
        if window is not None:
            row["window_cyc"] = window
        injected = getattr(regulator, "injected_bytes", 0)
        if injected:
            row["injected_bytes"] = injected
        reclaimed = getattr(regulator, "reclaimed_bytes", 0)
        if reclaimed:
            row["reclaimed_bytes"] = reclaimed
        rows.append(row)
    return rows


def render_report(
    result: PlatformResult,
    title: str = "Platform run report",
    solo: Optional[PlatformResult] = None,
) -> str:
    """Render a multi-section plain-text report.

    Args:
        result: The run to describe.
        title: Heading line.
        solo: Optional solo baseline of the critical master, enabling
            slowdown / isolation-error sections.

    Returns:
        The report text (no trailing newline).
    """
    peak = result.platform.config.peak_bytes_per_cycle
    sections = [title, "=" * len(title), ""]
    sections.append(
        f"elapsed: {result.elapsed:,} cycles   "
        f"DRAM utilization: {result.dram.utilization:.1%}   "
        f"row-hit rate: {result.dram.row_hit_rate:.1%}   "
        f"refreshes: {result.dram.refreshes}"
    )
    total_bytes = sum(m.bytes_moved for m in result.masters.values())
    sections.append(
        f"total traffic: {total_bytes:,} bytes "
        f"({utilization_of(total_bytes, result.elapsed, peak):.1%} of peak)"
    )
    sections.append("")
    sections.append(format_table(_master_rows(result), title="Masters"))
    regulator_rows = _regulator_rows(result)
    if regulator_rows:
        sections.append("")
        sections.append(format_table(regulator_rows, title="Regulators"))
    log = result.platform.qos_manager.log
    if log:
        sections.append("")
        sections.append(
            format_table(
                [
                    {
                        "master": e.master,
                        "requested_at": e.requested_at,
                        "effective_at": e.effective_at,
                        "latency_cyc": e.latency,
                        "budget_bytes": e.budget_bytes,
                    }
                    for e in log
                ],
                title="Reconfiguration log",
            )
        )
    if solo is not None:
        critical = result.critical()
        base = solo.critical()
        sections.append("")
        sections.append("Critical-task QoS vs solo baseline")
        sections.append(
            f"  slowdown        : "
            f"{slowdown(result.critical_runtime(), solo.critical_runtime()):.2f}x"
        )
        sections.append(
            f"  mean-latency inflation : "
            f"{isolation_error(critical.latency_mean, base.latency_mean):+.1%}"
        )
        sections.append(
            f"  p99-latency inflation  : "
            f"{isolation_error(critical.latency_p99, base.latency_p99):+.1%}"
        )
    return "\n".join(sections)
