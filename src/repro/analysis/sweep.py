"""Parameter sweeps and plain-text tables.

The benchmark harnesses print paper-style tables; these helpers keep
that code declarative: :func:`sweep` runs a function over parameter
values collecting dict rows, :func:`format_table` renders rows with
aligned columns, :func:`geometric_space` generates the log-spaced
axes used for window-size sweeps.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ConfigError

Row = Dict[str, Any]


def sweep(
    values: Iterable[Any],
    fn: Callable[[Any], Row],
    parallel: bool = False,
    max_workers: Optional[Union[int, str]] = None,
) -> List[Row]:
    """Run ``fn`` for each value; collect its row augmented results.

    Args:
        values: The swept parameter values.
        fn: Called with one value, returns a dict row.
        parallel: Fan the calls out over a process pool.  ``fn`` and
            the values must then be picklable (module-level functions
            qualify; closures do not) -- anything that cannot cross
            the process boundary silently degrades to the serial
            path, so ``parallel=True`` is always safe to request.
            For simulation grids prefer building
            :class:`~repro.runner.spec.RunSpec` lists and going
            through :class:`~repro.runner.parallel.ParallelRunner`,
            which adds dedup, result caching, a persistent worker
            pool, and single-flight claims on top.
        max_workers: Pool size.  ``None`` or ``"auto"`` resolve the
            affinity/cgroup-aware automatic count (``REPRO_JOBS``
            override honoured -- see
            :func:`repro.runner.parallel.resolve_workers`); a
            positive integer forces that many workers.

    Returns:
        One row per value, in sweep order regardless of completion
        order.
    """
    items = list(values)
    if parallel and len(items) > 1:
        rows = _parallel_map(items, fn, max_workers)
        if rows is not None:
            return rows
    return [fn(value) for value in items]


def _parallel_map(
    items: List[Any],
    fn: Callable[[Any], Row],
    max_workers: Optional[Union[int, str]],
) -> Optional[List[Row]]:
    """Map ``fn`` over ``items`` in a process pool; None = fall back."""
    from repro.runner.parallel import default_workers

    if max_workers is None or max_workers == "auto":
        resolved = default_workers()
    elif isinstance(max_workers, str):
        raise ConfigError(
            f"max_workers must be an integer or 'auto', got {max_workers!r}"
        )
    elif max_workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    else:
        resolved = max_workers
    workers = min(resolved, len(items))
    if workers <= 1:
        return None
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib present
        return None
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(fn, value) for value in items]
            return [f.result() for f in futures]
    except (pickle.PicklingError, AttributeError, TypeError,
            OSError, PermissionError, BrokenProcessPool):
        # Unpicklable fn/values or a restricted environment: the
        # caller's serial loop produces the same rows.
        return None


def geometric_space(start: int, stop: int, factor: int = 2) -> List[int]:
    """Integers ``start, start*factor, ... <= stop`` (inclusive ends).

    ``stop`` is appended if the progression does not land on it.
    """
    if start < 1 or stop < start:
        raise ConfigError(f"invalid range [{start}, {stop}]")
    if factor < 2:
        raise ConfigError(f"factor must be >= 2, got {factor}")
    out: List[int] = []
    value = start
    while value <= stop:
        out.append(value)
        value *= factor
    if out[-1] != stop:
        out.append(stop)
    return out


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value and (abs(value) >= 10_000 or abs(value) < 0.001):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned plain-text table.

    Args:
        rows: The data; all rows should share keys.
        columns: Column order (defaults to the first row's keys).
        title: Optional heading line.

    Returns:
        The formatted multi-line string (no trailing newline).
    """
    if not rows:
        return title or "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(cols)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)
