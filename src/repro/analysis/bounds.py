"""Analytic worst-case interference bounds.

The reason bandwidth regulation matters in this research line is
*schedulability*: with every co-runner's traffic bounded, a critical
request's worst-case latency becomes bounded and computable.  This
module implements the (deliberately conservative) bound a designer
would derive for the modelled platform, in the style of the
MemGuard/PREM analyses the paper builds on.

Assumptions (all pessimistic):

* when the critical request arrives, every co-runner has its full
  outstanding window of bursts already queued ahead of it;
* each of those bursts pays a full row-conflict command sequence that
  does not overlap the data bus, plus a read/write turnaround;
* FR-FCFS lets row hits bypass the critical request up to the
  starvation cap, each bypass costing a further burst service;
* one refresh intervenes.

The resulting figure is loose (a real controller overlaps commands
with transfers) but *sound* for the simulator: the property test in
``tests/analysis/test_bounds.py`` and the integration checks assert
that no measured latency ever exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigError
from repro.axi.interconnect import InterconnectConfig
from repro.dram.timing import DramTiming


@dataclass(frozen=True)
class CoRunnerEnvelope:
    """The interference envelope of one co-running master.

    Attributes:
        max_outstanding: Its port's outstanding-transaction limit.
        burst_beats: Beats per burst it issues.
    """

    max_outstanding: int
    burst_beats: int

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")
        if not 1 <= self.burst_beats <= 256:
            raise ConfigError("burst_beats must be 1..256")


def per_burst_worst_cycles(timing: DramTiming, burst_beats: int) -> int:
    """Worst-case memory cycles one interfering burst can cost.

    Full row-conflict command sequence (not overlapped, pessimistic)
    plus the data transfer plus one bus turnaround.
    """
    return (
        timing.conflict_latency
        + timing.data_cycles(burst_beats)
        + timing.rw_turnaround
    )


def worst_case_read_latency(
    timing: DramTiming,
    interconnect: InterconnectConfig,
    co_runners: Sequence[CoRunnerEnvelope],
    critical_burst_beats: int = 4,
    frfcfs_cap: int = 4,
    own_outstanding: int = 1,
) -> int:
    """Upper bound on one critical read's end-to-end latency (cycles).

    Args:
        timing: DRAM timing set.
        interconnect: Fabric pipeline latencies.
        co_runners: Envelope of every other master in the system.
        critical_burst_beats: The critical request's burst length.
        frfcfs_cap: The controller's starvation cap.
        own_outstanding: The critical master's other in-flight
            requests that may be queued ahead of this one.

    Returns:
        A sound (conservative) latency bound in cycles.
    """
    if critical_burst_beats < 1:
        raise ConfigError("critical_burst_beats must be >= 1")
    if own_outstanding < 1:
        raise ConfigError("own_outstanding must be >= 1")
    # Everything already queued ahead of the request.
    queued_ahead = sum(
        env.max_outstanding * per_burst_worst_cycles(timing, env.burst_beats)
        for env in co_runners
    )
    # Own earlier requests (dependent-miss masters have none, MLP>1
    # masters up to own_outstanding-1).
    queued_ahead += (own_outstanding - 1) * per_burst_worst_cycles(
        timing, critical_burst_beats
    )
    # FR-FCFS bypasses after arrival: each is a row hit by definition.
    biggest_burst = max(
        [env.burst_beats for env in co_runners] + [critical_burst_beats]
    )
    bypass_cost = frfcfs_cap * (
        timing.hit_latency
        + timing.data_cycles(biggest_burst)
        + timing.rw_turnaround
    )
    # One refresh may intervene.
    refresh = timing.t_rfc if timing.t_refi else 0
    # The request's own service, fully serialized.
    own = timing.conflict_latency + timing.data_cycles(critical_burst_beats)
    pipeline = interconnect.fwd_latency + interconnect.resp_latency
    # Address channel: every queued-ahead burst also occupies one
    # address slot before ours.
    addr = interconnect.addr_cycles * (
        sum(env.max_outstanding for env in co_runners) + own_outstanding
    )
    return queued_ahead + bypass_cost + refresh + own + pipeline + addr


def guaranteed_bandwidth(
    peak_bytes_per_cycle: float,
    besteffort_rates: Sequence[float],
) -> float:
    """Long-run bandwidth left for the critical actor.

    Args:
        peak_bytes_per_cycle: Channel peak rate.
        besteffort_rates: The regulated rates (bytes/cycle) granted to
            every best-effort actor.

    Returns:
        The residual rate in bytes per cycle.

    Raises:
        ConfigError: if the reservations oversubscribe the channel.
    """
    if peak_bytes_per_cycle <= 0:
        raise ConfigError("peak rate must be positive")
    total = sum(besteffort_rates)
    if total < 0:
        raise ConfigError("rates must be non-negative")
    residual = peak_bytes_per_cycle - total
    if residual <= 0:
        raise ConfigError(
            f"reservations ({total:.2f} B/cyc) oversubscribe the channel "
            f"({peak_bytes_per_cycle:.2f} B/cyc)"
        )
    return residual


def max_tolerable_window(
    timing: DramTiming,
    budget_bytes_per_window: int,
    burst_bytes: int,
) -> Tuple[int, int]:
    """How bursty can a window be before it defeats regulation?

    A window's whole budget can arrive back-to-back at the window
    start.  Returns ``(burst_bytes_per_window, burst_cycles)`` -- the
    size of that worst-case clump and how long it occupies the data
    bus -- the quantity a designer compares against the critical
    task's latency tolerance when choosing the window size.
    """
    if budget_bytes_per_window < 1:
        raise ConfigError("budget must be >= 1")
    if burst_bytes < 1:
        raise ConfigError("burst_bytes must be >= 1")
    # The clump is the budget rounded up to whole bursts (burst-aware
    # charging admits the last burst only if it fully fits, so the
    # clump never exceeds the budget plus zero extra bursts; the
    # oversize path adds at most one burst).
    clump = max(budget_bytes_per_window, burst_bytes)
    beats = -(-clump // timing.bus_bytes_per_beat)
    return clump, timing.data_cycles(max(1, beats))
