"""Terminal plotting helpers.

The benchmark harnesses and examples are terminal programs; these
helpers render the figure-shaped results (time series, distributions,
2-D sweeps) as compact ASCII art so the repository needs no plotting
dependency.

* :func:`sparkline` -- one-line intensity strip for a series;
* :func:`bar_chart` -- labelled horizontal bars;
* :func:`heat_grid` -- a 2-D matrix as an intensity grid with axes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError

#: Intensity ramp from empty to full.
_RAMP = " .:-=+*#%@"


def _intensity(value: float, lo: float, hi: float) -> str:
    span = hi - lo
    if span <= 0:
        return _RAMP[-1]
    index = int((value - lo) / span * (len(_RAMP) - 1))
    return _RAMP[max(0, min(index, len(_RAMP) - 1))]


def sparkline(
    values: Sequence[float],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Render a series as a one-line intensity strip.

    Args:
        values: The series.
        lo / hi: Scale bounds (default: the series' min/max).
    """
    if not values:
        raise ConfigError("cannot plot an empty series")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    return "".join(_intensity(v, lo, hi) for v in values)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values):
        raise ConfigError("labels and values must have equal length")
    if not values:
        raise ConfigError("cannot plot an empty series")
    if width < 1:
        raise ConfigError("width must be >= 1")
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = 0 if peak <= 0 else round(value / peak * width)
        bar = "#" * filled
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def heat_grid(
    rows: Sequence[Sequence[float]],
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    legend: str = "",
) -> str:
    """Render a 2-D matrix as an intensity grid.

    Args:
        rows: Matrix values, one inner sequence per row.
        row_labels / col_labels: Axis annotations.
        legend: Optional trailing legend line.

    Returns:
        Multi-line string; intensity scales over the whole matrix.
    """
    if not rows or not rows[0]:
        raise ConfigError("cannot plot an empty grid")
    if len(row_labels) != len(rows):
        raise ConfigError("row_labels must match the number of rows")
    if any(len(r) != len(col_labels) for r in rows):
        raise ConfigError("every row must match the number of col_labels")
    flat = [v for row in rows for v in row]
    lo, hi = min(flat), max(flat)
    label_width = max(len(label) for label in row_labels)
    col_width = max(len(label) for label in col_labels)
    cell = max(col_width, 1)
    lines: List[str] = []
    header = " " * (label_width + 1) + " ".join(
        label.rjust(cell) for label in col_labels
    )
    lines.append(header)
    for label, row in zip(row_labels, rows):
        cells = " ".join(
            (_intensity(v, lo, hi) * cell) for v in row
        )
        lines.append(f"{label.rjust(label_width)} {cells}")
    scale = f"scale: '{_RAMP[0]}'={lo:g} .. '{_RAMP[-1]}'={hi:g}"
    lines.append(scale + (f"   {legend}" if legend else ""))
    return "\n".join(lines)
