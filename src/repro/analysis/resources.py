"""Analytic FPGA resource model of the regulator IP (experiment E6).

We cannot run Vivado synthesis in this environment, so the paper's
resource-utilization table is substituted by a structural cost model
derived from the IP's register-transfer composition (see DESIGN.md,
section 3).  The model reproduces the *scaling shape* such a table
shows -- cost linear in the number of monitored channels, weakly
(logarithmically) dependent on counter widths, and negligible
relative to the target device.

Per monitored channel the IP instantiates:

* a credit counter and comparator (``credit_bits`` wide);
* a window down-counter (``window_bits`` wide);
* an observed-bytes monitor counter (``monitor_bits`` wide);
* AXI handshake gating logic (fixed);
* four 32-bit configuration/status registers.

Shared once per IP instance: an AXI4-Lite slave for the register
file and the control FSM.

Per-bit LUT/FF coefficients follow standard synthesis results for
counters and comparators on UltraScale+ (a counter bit costs ~1 FF +
~0.5 LUT; a comparator bit ~0.35 LUT).  Absolute numbers are
estimates; the benchmark reports them next to the device budget to
show the paper's qualitative claim (a few tenths of a percent of a
ZU9EG per channel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: Xilinx Zynq UltraScale+ ZU9EG programmable-logic budget.
ZU9EG_LUTS = 274_080
ZU9EG_FFS = 548_160
ZU9EG_BRAM36 = 912


@dataclass(frozen=True)
class ResourceEstimate:
    """LUT/FF/BRAM estimate for one IP configuration."""

    channels: int
    luts: int
    ffs: int
    bram36: int

    def lut_fraction(self, device_luts: int = ZU9EG_LUTS) -> float:
        return self.luts / device_luts

    def ff_fraction(self, device_ffs: int = ZU9EG_FFS) -> float:
        return self.ffs / device_ffs


@dataclass(frozen=True)
class ResourceModel:
    """Structural cost model of the monitor+regulator IP.

    Attributes:
        axi_lite_luts / axi_lite_ffs: Fixed cost of the register-file
            slave and control FSM.
        gating_luts / gating_ffs: Per-channel AXI handshake gating.
        lut_per_counter_bit / ff_per_counter_bit: Counter costs.
        lut_per_comparator_bit: Credit comparator cost.
        config_regs_per_channel: 32-bit registers per channel.
    """

    axi_lite_luts: int = 320
    axi_lite_ffs: int = 420
    gating_luts: int = 45
    gating_ffs: int = 30
    lut_per_counter_bit: float = 0.5
    ff_per_counter_bit: float = 1.0
    lut_per_comparator_bit: float = 0.35
    config_regs_per_channel: int = 4

    def channel_bits(self, window_cycles: int, capacity_bytes: int) -> dict:
        """Counter widths implied by a regulator configuration."""
        if window_cycles < 1 or capacity_bytes < 1:
            raise ConfigError("window and capacity must be >= 1")
        credit_bits = max(1, math.ceil(math.log2(capacity_bytes + 1)))
        window_bits = max(1, math.ceil(math.log2(window_cycles + 1)))
        # Monitor counter sized to count a full second of traffic.
        monitor_bits = 32
        return {
            "credit_bits": credit_bits,
            "window_bits": window_bits,
            "monitor_bits": monitor_bits,
        }

    def estimate(
        self,
        channels: int,
        window_cycles: int = 1024,
        capacity_bytes: int = 4096,
    ) -> ResourceEstimate:
        """Estimate the IP's footprint.

        Args:
            channels: Monitored/regulated AXI master ports.
            window_cycles: Replenish window (sizes the window counter).
            capacity_bytes: Credit capacity (sizes credit counter and
                comparator).
        """
        if channels < 1:
            raise ConfigError(f"channels must be >= 1, got {channels}")
        bits = self.channel_bits(window_cycles, capacity_bytes)
        counter_bits = (
            bits["credit_bits"] + bits["window_bits"] + bits["monitor_bits"]
        )
        per_channel_luts = (
            self.gating_luts
            + counter_bits * self.lut_per_counter_bit
            + bits["credit_bits"] * self.lut_per_comparator_bit
            + self.config_regs_per_channel * 32 * 0.1  # register mux share
        )
        per_channel_ffs = (
            self.gating_ffs
            + counter_bits * self.ff_per_counter_bit
            + self.config_regs_per_channel * 32
        )
        luts = self.axi_lite_luts + math.ceil(channels * per_channel_luts)
        ffs = self.axi_lite_ffs + math.ceil(channels * per_channel_ffs)
        return ResourceEstimate(channels=channels, luts=luts, ffs=ffs, bram36=0)
