"""Derived QoS metrics.

Small, pure functions that turn raw measurements into the quantities
the paper's figures plot.  Each is used by at least one benchmark and
unit-tested against hand-computed values.
"""

from __future__ import annotations

from repro.errors import ConfigError


def slowdown(loaded_runtime: float, solo_runtime: float) -> float:
    """Interference slowdown: loaded completion time over solo.

    1.0 means perfect isolation; the paper's motivation experiment
    reports an order of magnitude without regulation.
    """
    if solo_runtime <= 0:
        raise ConfigError(f"solo runtime must be positive, got {solo_runtime}")
    if loaded_runtime <= 0:
        raise ConfigError(f"loaded runtime must be positive, got {loaded_runtime}")
    return loaded_runtime / solo_runtime


def regulation_error(measured_rate: float, configured_rate: float) -> float:
    """Relative regulation error: ``(measured - configured) / configured``.

    Positive = the regulator let more through than configured
    (overshoot); negative = it was too conservative (undershoot,
    i.e. wasted reservation).
    """
    if configured_rate <= 0:
        raise ConfigError(f"configured rate must be positive, got {configured_rate}")
    if measured_rate < 0:
        raise ConfigError(f"measured rate must be non-negative, got {measured_rate}")
    return (measured_rate - configured_rate) / configured_rate


def utilization_of(total_bytes: float, elapsed: int, peak_bytes_per_cycle: float) -> float:
    """Fraction of the channel peak actually used over the run."""
    if elapsed <= 0:
        raise ConfigError(f"elapsed must be positive, got {elapsed}")
    if peak_bytes_per_cycle <= 0:
        raise ConfigError("peak rate must be positive")
    if total_bytes < 0:
        raise ConfigError("total_bytes must be non-negative")
    return total_bytes / (elapsed * peak_bytes_per_cycle)


def isolation_error(loaded_latency: float, solo_latency: float) -> float:
    """Relative inflation of the critical actor's latency.

    0.0 = perfect isolation; 0.10 = the "below 10%" target the
    authors' CMRI line of work uses as the acceptable QoS envelope.
    """
    if solo_latency <= 0:
        raise ConfigError(f"solo latency must be positive, got {solo_latency}")
    if loaded_latency < 0:
        raise ConfigError("loaded latency must be non-negative")
    return (loaded_latency - solo_latency) / solo_latency
