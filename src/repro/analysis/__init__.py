"""Analysis utilities (substrate S9).

* :mod:`repro.analysis.metrics` -- derived QoS metrics: slowdown,
  regulation accuracy, utilization, isolation quality.
* :mod:`repro.analysis.resources` -- the analytic FPGA resource model
  of the regulator IP (substitutes the paper's synthesis table, E6).
* :mod:`repro.analysis.sweep` -- parameter-sweep helpers and plain
  text table rendering for the benchmark harnesses.
"""

from repro.analysis.metrics import (
    isolation_error,
    regulation_error,
    slowdown,
    utilization_of,
)
from repro.analysis.resources import ResourceEstimate, ResourceModel
from repro.analysis.sweep import format_table, geometric_space, sweep

__all__ = [
    "isolation_error",
    "regulation_error",
    "slowdown",
    "utilization_of",
    "ResourceEstimate",
    "ResourceModel",
    "format_table",
    "geometric_space",
    "sweep",
]
