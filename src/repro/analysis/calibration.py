"""Platform calibration: measure what the system can actually do.

Budgets are meaningful relative to the *achievable* bandwidth, not
the theoretical pin rate: row misses, refresh and turnarounds make a
real channel deliver 75-90% of peak.  The paper's methodology (like
MemGuard's) starts by profiling the platform; this module implements
that step for any :class:`~repro.soc.platform.PlatformConfig`:

* :func:`measure_peak_bandwidth` -- saturate the system with one
  streaming DMA and report the sustained rate;
* :func:`measure_solo_latency` -- the critical master's latency floor;
* :func:`calibrate` -- both, bundled with derived efficiency figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.soc.experiment import run_experiment, run_solo_baseline
from repro.soc.platform import MasterSpec, PlatformConfig

#: Region used by the synthetic probe hog.
_PROBE_BASE = 0x4000_0000
_PROBE_EXTENT = 8 << 20


@dataclass(frozen=True)
class CalibrationResult:
    """Measured capabilities of a platform configuration.

    Attributes:
        theoretical_peak: Data-bus limit in bytes/cycle.
        achievable_peak: Sustained streaming rate in bytes/cycle.
        efficiency: ``achievable / theoretical``.
        solo_latency_mean / solo_latency_p99: The critical master's
            isolation latency floor in cycles (0 when the config has
            no critical master).
    """

    theoretical_peak: float
    achievable_peak: float
    efficiency: float
    solo_latency_mean: float
    solo_latency_p99: float

    def budget_for_fraction(self, fraction: float, window_cycles: int) -> int:
        """Bytes-per-window budget for a fraction of *achievable* peak."""
        if not 0 < fraction <= 1:
            raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
        if window_cycles < 1:
            raise ConfigError("window_cycles must be >= 1")
        return max(1, round(fraction * self.achievable_peak * window_cycles))


def measure_peak_bandwidth(
    config: PlatformConfig, horizon: int = 200_000
) -> float:
    """Sustained bandwidth of one unregulated streaming DMA (B/cycle).

    Builds a probe system with the same clock/interconnect/DRAM as
    ``config`` but a single saturating hog.
    """
    if horizon < 10_000:
        raise ConfigError("horizon too short to reach steady state")
    probe = MasterSpec(
        name="calibration_probe",
        workload="stream_read",
        region_base=_PROBE_BASE,
        region_extent=_PROBE_EXTENT,
        work=None,
        max_outstanding=16,
    )
    probe_config = config.with_masters((probe,))
    result = run_experiment(
        probe_config, max_cycles=horizon, stop_when_critical_done=False
    )
    return result.master("calibration_probe").bytes_moved / horizon


def measure_solo_latency(config: PlatformConfig) -> tuple:
    """``(mean, p99)`` latency of the critical master running alone.

    Returns ``(0.0, 0.0)`` when the config marks no master critical.
    """
    critical = [m for m in config.masters if m.critical]
    if not critical:
        return (0.0, 0.0)
    result = run_solo_baseline(config, critical[0].name)
    master = result.master(critical[0].name)
    return (master.latency_mean, master.latency_p99)


def calibrate(config: PlatformConfig, horizon: int = 200_000) -> CalibrationResult:
    """Profile a platform configuration (see module docstring)."""
    theoretical = config.peak_bytes_per_cycle
    achievable = measure_peak_bandwidth(config, horizon)
    mean, p99 = measure_solo_latency(config)
    return CalibrationResult(
        theoretical_peak=theoretical,
        achievable_peak=achievable,
        efficiency=achievable / theoretical,
        solo_latency_mean=mean,
        solo_latency_p99=p99,
    )
