"""Comparing two runs.

A recurring analysis step -- "same system, two configurations, what
changed?" -- packaged as a function: :func:`compare_results` lines up
two :class:`~repro.soc.experiment.PlatformResult` objects master by
master and reports the deltas that matter for QoS work (bandwidth,
tail latency, completion time), plus the DRAM-level view.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.soc.experiment import PlatformResult


def _ratio(after: float, before: float) -> float:
    if before == 0:
        return float("inf") if after else 1.0
    return after / before


def compare_results(
    before: PlatformResult,
    after: PlatformResult,
    label_before: str = "before",
    label_after: str = "after",
) -> List[Dict[str, object]]:
    """Tabulate per-master deltas between two runs.

    Args:
        before / after: The two runs; they must share master names.
        label_before / label_after: Column-name prefixes.

    Returns:
        One row per master plus a final ``dram`` row; each row holds
        both absolute values and the after/before ratios.

    Raises:
        ConfigError: if the runs' master sets differ.
    """
    if set(before.masters) != set(after.masters):
        raise ConfigError(
            f"cannot compare runs with different masters: "
            f"{sorted(before.masters)} vs {sorted(after.masters)}"
        )
    rows: List[Dict[str, object]] = []
    for name in sorted(before.masters):
        b, a = before.master(name), after.master(name)
        rows.append(
            {
                "master": name,
                f"{label_before}_bw": b.bandwidth_bytes_per_cycle,
                f"{label_after}_bw": a.bandwidth_bytes_per_cycle,
                "bw_ratio": _ratio(
                    a.bandwidth_bytes_per_cycle, b.bandwidth_bytes_per_cycle
                ),
                f"{label_before}_p99": b.latency_p99,
                f"{label_after}_p99": a.latency_p99,
                "p99_ratio": _ratio(a.latency_p99, b.latency_p99),
            }
        )
    rows.append(
        {
            "master": "(dram)",
            f"{label_before}_bw": before.dram.utilization,
            f"{label_after}_bw": after.dram.utilization,
            "bw_ratio": _ratio(after.dram.utilization, before.dram.utilization),
            f"{label_before}_p99": before.dram.row_hit_rate,
            f"{label_after}_p99": after.dram.row_hit_rate,
            "p99_ratio": _ratio(
                after.dram.row_hit_rate, before.dram.row_hit_rate
            ),
        }
    )
    return rows


def critical_summary(
    before: PlatformResult, after: PlatformResult
) -> Dict[str, float]:
    """The headline deltas for the critical master."""
    b, a = before.critical(), after.critical()
    out: Dict[str, float] = {
        "p99_ratio": _ratio(a.latency_p99, b.latency_p99),
        "mean_ratio": _ratio(a.latency_mean, b.latency_mean),
    }
    if b.finished_at and a.finished_at:
        out["runtime_ratio"] = _ratio(a.finished_at, b.finished_at)
    return out
