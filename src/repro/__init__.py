"""repro -- cycle-level reproduction of *Fine-Grained QoS Control via
Tightly-Coupled Bandwidth Monitoring and Regulation for FPGA-based
Heterogeneous SoCs* (Brilli et al., DAC 2023).

The package models an FPGA-based heterogeneous SoC (CPU cores + FPGA
accelerators sharing one DRAM channel) at the AXI-transaction level
and implements the paper's tightly-coupled hardware bandwidth
monitor/regulator IP alongside the baselines it is compared against
(software MemGuard, static AXI QoS, no regulation).

Quickstart::

    from repro import zcu102, run_experiment, RegulatorSpec

    # 4 unregulated DMA hogs next to one critical core:
    unreg = zcu102(num_accels=4)
    loaded = run_experiment(unreg)

    # The same system with each hog held to 10% of channel peak by
    # the tightly-coupled regulator (budget in bytes per window):
    spec = RegulatorSpec(kind="tightly_coupled",
                         window_cycles=1024, budget_bytes=1638)
    regulated = run_experiment(zcu102(num_accels=4, accel_regulator=spec))

    print(loaded.critical().latency_p99, regulated.critical().latency_p99)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.errors import (
    CacheError,
    CheckError,
    ConfigError,
    LintError,
    ProbeError,
    ProtocolError,
    RegulationError,
    ReproError,
    SanitizerError,
    SimulationError,
)
from repro.checks import SanitizingQueue, lint_paths, sanitize_enabled
from repro.sim.config import ClockSpec
from repro.sim.kernel import Simulator
from repro.axi.bridge import Bridge
from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.axi.qos import QosMap
from repro.axi.txn import Transaction
from repro.dram.controller import DramConfig, DramController
from repro.dram.timing import DramTiming
from repro.monitor.histogram import LatencyHistogram
from repro.monitor.latency import LatencyMonitor
from repro.monitor.window import WindowedBandwidthMonitor
from repro.qos.admission import AdmissionController, AdmissionDecision
from repro.qos.budget import BandwidthBudget
from repro.qos.manager import QosManager
from repro.qos.policy import QosPolicy, critical_plus_besteffort, proportional_shares
from repro.regulation.factory import RegulatorSpec, make_regulator
from repro.regulation.memguard import MemGuardConfig, MemGuardRegulator, ReclaimPool
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.regulation.token_bucket import TokenBucket
from repro.soc.experiment import (
    PlatformResult,
    run_experiment,
    run_solo_baseline,
)
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform
from repro.soc.platform import MasterSpec, Platform, PlatformConfig
from repro.soc.presets import kv260, zcu102
from repro.probes import (
    FlightRecorder,
    Probe,
    ProbeMap,
    ProbeSampler,
    SloRule,
    SloViolation,
    WatchView,
    build_probe_map,
    iter_watch,
    parse_rules,
    probe_list,
)
from repro.runner import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    RunSummary,
    WorkerPool,
    execute_spec,
    resolve_workers,
)
from repro.telemetry import (
    MetricsRegistry,
    PhaseProfiler,
    RunnerTelemetry,
    TraceEventSink,
    export_platform_trace,
    get_registry,
    profile_experiment,
    use_registry,
)
from repro.analysis.metrics import (
    isolation_error,
    regulation_error,
    slowdown,
    utilization_of,
)
from repro.analysis.bounds import (
    CoRunnerEnvelope,
    guaranteed_bandwidth,
    worst_case_read_latency,
)
from repro.analysis.calibration import CalibrationResult, calibrate
from repro.analysis.compare import compare_results, critical_summary
from repro.analysis.report import render_report
from repro.analysis.resources import ResourceEstimate, ResourceModel

__version__ = "1.0.0"

__all__ = [
    # errors
    "CacheError",
    "CheckError",
    "ConfigError",
    "LintError",
    "ProbeError",
    "ProtocolError",
    "RegulationError",
    "ReproError",
    "SanitizerError",
    "SimulationError",
    # checks (invariant lint + kernel sanitizer)
    "SanitizingQueue",
    "lint_paths",
    "sanitize_enabled",
    # kernel / units
    "ClockSpec",
    "Simulator",
    # axi
    "Bridge",
    "Interconnect",
    "InterconnectConfig",
    "MasterPort",
    "PortConfig",
    "QosMap",
    "Transaction",
    # dram
    "DramConfig",
    "DramController",
    "DramTiming",
    # monitoring
    "LatencyHistogram",
    "LatencyMonitor",
    "WindowedBandwidthMonitor",
    # qos
    "AdmissionController",
    "AdmissionDecision",
    "BandwidthBudget",
    "QosManager",
    "QosPolicy",
    "critical_plus_besteffort",
    "proportional_shares",
    # regulation
    "RegulatorSpec",
    "make_regulator",
    "MemGuardConfig",
    "MemGuardRegulator",
    "ReclaimPool",
    "TightlyCoupledConfig",
    "TightlyCoupledRegulator",
    "TokenBucket",
    # platform
    "PlatformResult",
    "run_experiment",
    "run_solo_baseline",
    "MasterSpec",
    "Platform",
    "PlatformConfig",
    "TwoLevelConfig",
    "TwoLevelPlatform",
    "kv260",
    "zcu102",
    # probes (live observability plane)
    "FlightRecorder",
    "Probe",
    "ProbeMap",
    "ProbeSampler",
    "SloRule",
    "SloViolation",
    "WatchView",
    "build_probe_map",
    "iter_watch",
    "parse_rules",
    "probe_list",
    # runner
    "ParallelRunner",
    "ResultCache",
    "RunSpec",
    "RunSummary",
    "WorkerPool",
    "execute_spec",
    "resolve_workers",
    # telemetry
    "MetricsRegistry",
    "PhaseProfiler",
    "RunnerTelemetry",
    "TraceEventSink",
    "export_platform_trace",
    "get_registry",
    "profile_experiment",
    "use_registry",
    # analysis
    "isolation_error",
    "regulation_error",
    "slowdown",
    "utilization_of",
    "CoRunnerEnvelope",
    "guaranteed_bandwidth",
    "worst_case_read_latency",
    "CalibrationResult",
    "calibrate",
    "compare_results",
    "critical_summary",
    "render_report",
    "ResourceEstimate",
    "ResourceModel",
    "__version__",
]
