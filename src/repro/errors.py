"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single type at the API boundary.  Subclasses mark
the subsystem in which the error originated.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation kernel detected an impossible state.

    Examples: scheduling an event in the past, running a simulator
    that has already been finalized, or an event callback raising
    during dispatch.
    """


class ProtocolError(ReproError):
    """A component violated the transaction-level AXI protocol.

    Examples: completing a transaction twice, issuing more outstanding
    transactions than the port allows, or returning a response for a
    transaction the interconnect never accepted.
    """


class RegulationError(ReproError):
    """A regulator was configured or driven inconsistently.

    Examples: a negative budget, a zero-length replenish window, or
    charging a transaction that was never admitted.
    """
