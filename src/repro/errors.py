"""Exception hierarchy for the ``repro`` package.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single type at the API boundary.  Subclasses mark
the subsystem in which the error originated.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """The simulation kernel detected an impossible state.

    Examples: scheduling an event in the past, running a simulator
    that has already been finalized, or an event callback raising
    during dispatch.
    """


class ProtocolError(ReproError):
    """A component violated the transaction-level AXI protocol.

    Examples: completing a transaction twice, issuing more outstanding
    transactions than the port allows, or returning a response for a
    transaction the interconnect never accepted.
    """


class RegulationError(ReproError):
    """A regulator was configured or driven inconsistently.

    Examples: a negative budget, a zero-length replenish window, or
    charging a transaction that was never admitted.
    """


class CacheError(ReproError):
    """A result-cache entry is unreadable or inconsistent.

    Raised (and caught) internally by :mod:`repro.runner.cache` to
    mark a poisoned entry; poisoning costs a recompute, never
    correctness, so this error does not normally escape the cache.
    """


class ProbeError(ReproError):
    """The live probe plane was configured or driven inconsistently.

    Examples: registering two probes under one name, selecting a
    pattern that matches nothing, a malformed SLO rule, or an SLO
    bound on a probe the sampler does not sample.
    """


class ServeError(ReproError):
    """A ``repro serve`` request failed at the protocol level.

    Examples: a malformed request line, an unknown op code, a spec
    that does not deserialize, or a response stream that ended before
    the final ``done`` message.
    """


class CheckError(ReproError):
    """Base class for the correctness-tooling layer (``repro.checks``)."""


class LintError(CheckError):
    """The static lint engine itself failed.

    Examples: an unreadable or syntactically invalid input file, a
    corrupt baseline file, or a rule registered under a duplicate id.
    Rule *findings* are data, not exceptions; this error means the
    engine could not produce findings at all.
    """


class SanitizerError(CheckError):
    """The runtime kernel sanitizer detected an invariant violation.

    Examples: a dispatch-time rewind, an event freed twice into the
    pool, a freed event mutated before reuse, or scheduler occupancy
    accounting that disagrees with the queue's actual contents.  The
    message carries the offending event's provenance.
    """
