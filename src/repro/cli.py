"""Command-line interface.

Small, scriptable front-ends over the experiment API::

    python -m repro interfere --hogs 4
    python -m repro regulate --kind tightly_coupled --share 0.1 --window 256
    python -m repro accuracy --share 0.2
    python -m repro resources --channels 1 2 4 8
    python -m repro bound --hogs 4
    python -m repro profile --hogs 4
    python -m repro trace --export perfetto --out trace.json
    python -m repro check lint src/
    python -m repro check sanitize --diff
    python -m repro serve --socket .repro_serve.sock
    python -m repro watch --socket .repro_serve.sock --once --json
    python -m repro watch adas --slo '["port/cam/last_latency<=500"]'

Every subcommand prints an aligned table on stdout and returns a
process exit code (0 = success), so the CLI slots into shell
pipelines and CI jobs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.bounds import CoRunnerEnvelope, worst_case_read_latency
from repro.analysis.metrics import regulation_error, slowdown
from repro.analysis.resources import ResourceModel
from repro.analysis.sweep import format_table
from repro.errors import ReproError
from repro.regulation.factory import RegulatorSpec
from repro.soc.experiment import DEFAULT_MAX_CYCLES, run_experiment
from repro.soc.presets import zcu102, zcu102_dram, zcu102_interconnect

PEAK = 16.0


def _spec_from_args(args) -> Optional[RegulatorSpec]:
    if args.kind == "none":
        return None
    if args.kind == "tightly_coupled":
        return RegulatorSpec(
            kind="tightly_coupled",
            window_cycles=args.window,
            budget_bytes=max(1, round(args.share * PEAK * args.window)),
            work_conserving=args.work_conserving,
        )
    if args.kind == "memguard":
        return RegulatorSpec(
            kind="memguard",
            period_cycles=args.period,
            budget_bytes=max(1, round(args.share * PEAK * args.period)),
            reclaim=args.reclaim,
        )
    raise ReproError(f"unhandled regulator kind {args.kind!r}")


def cmd_interfere(args) -> int:
    solo = run_experiment(zcu102(num_accels=0, cpu_work=args.work))
    base = solo.critical_runtime()
    rows = []
    for hogs in range(0, args.hogs + 1):
        result = run_experiment(zcu102(num_accels=hogs, cpu_work=args.work))
        rows.append(
            {
                "hogs": hogs,
                "runtime_cyc": result.critical_runtime(),
                "slowdown": slowdown(result.critical_runtime(), base),
                "p99_latency": result.critical().latency_p99,
                "dram_util": result.dram.utilization,
            }
        )
    print(format_table(rows, title="Interference characterization"))
    return 0


def cmd_regulate(args) -> int:
    solo = run_experiment(zcu102(num_accels=0, cpu_work=args.work))
    base = solo.critical_runtime()
    spec = _spec_from_args(args)
    result = run_experiment(
        zcu102(num_accels=args.hogs, cpu_work=args.work, accel_regulator=spec)
    )
    rows = []
    for name in sorted(result.masters):
        m = result.master(name)
        rows.append(
            {
                "master": name,
                "bandwidth_B_cyc": m.bandwidth_bytes_per_cycle,
                "p99_latency": m.latency_p99,
                "denials": m.regulator_denials,
            }
        )
    title = (
        f"Regulation: {args.kind}, {args.hogs} hogs, critical slowdown "
        f"{slowdown(result.critical_runtime(), base):.2f}x"
    )
    print(format_table(rows, title=title))
    return 0


def cmd_accuracy(args) -> int:
    configured = args.share * PEAK
    rows = []
    for kind in ("tightly_coupled", "memguard"):
        ns = argparse.Namespace(**vars(args))
        ns.kind = kind
        spec = _spec_from_args(ns)
        result = run_experiment(
            zcu102(num_accels=1, cpu_work=1, accel_regulator=spec),
            max_cycles=args.horizon,
            stop_when_critical_done=False,
        )
        achieved = result.master("acc0").bytes_moved / args.horizon
        rows.append(
            {
                "scheme": kind,
                "configured_B_cyc": configured,
                "achieved_B_cyc": achieved,
                "error_pct": 100 * regulation_error(achieved, configured),
            }
        )
    print(format_table(rows, title="Regulation accuracy"))
    return 0


def cmd_resources(args) -> int:
    model = ResourceModel()
    rows = []
    for channels in args.channels:
        est = model.estimate(channels=channels, window_cycles=args.window)
        rows.append(
            {
                "channels": channels,
                "LUTs": est.luts,
                "FFs": est.ffs,
                "LUT_pct_ZU9EG": 100 * est.lut_fraction(),
            }
        )
    print(format_table(rows, title="Regulator IP resource estimate"))
    return 0


def cmd_report(args) -> int:
    from repro.analysis.report import render_report
    from repro.soc.experiment import run_solo_baseline

    spec = _spec_from_args(args)
    config = zcu102(
        num_accels=args.hogs, cpu_work=args.work, accel_regulator=spec
    )
    result = run_experiment(config)
    solo = run_solo_baseline(config, "cpu0")
    print(
        render_report(
            result,
            title=(
                f"Scenario: {args.hogs} hogs, regulation={args.kind}, "
                f"share={args.share:.0%}"
            ),
            solo=solo,
        )
    )
    return 0


def cmd_scenario(args) -> int:
    from repro.analysis.report import render_report
    from repro.soc.experiment import run_solo_baseline
    from repro.soc.scenarios import SCENARIOS, make_scenario

    if args.list:
        rows = [
            {"scenario": s.name, "actors": len(s.actors),
             "description": s.description}
            for s in SCENARIOS.values()
        ]
        print(format_table(rows, title="Available scenarios"))
        return 0
    spec = _spec_from_args(args)
    scenario = SCENARIOS.get(args.name)
    if scenario is None:
        print(f"error: unknown scenario {args.name!r}", file=sys.stderr)
        return 2
    regulators = {}
    if spec is not None:
        regulators = {
            actor.name: spec for actor in scenario.actors if not actor.critical
        }
    config = make_scenario(args.name, regulators=regulators)
    result = run_experiment(config, max_cycles=8_000_000)
    critical = next(a.name for a in scenario.actors if a.critical)
    solo = run_solo_baseline(config, critical, max_cycles=8_000_000)
    print(
        render_report(
            result,
            title=f"Scenario {args.name!r} (regulation={args.kind})",
            solo=solo,
        )
    )
    return 0


def _experiment_config(args):
    """Resolve an ``experiment`` argument (``zcu102`` or a scenario
    name) plus the shared regulator knobs into a platform config."""
    from repro.soc.scenarios import SCENARIOS, make_scenario

    spec = _spec_from_args(args)
    if args.experiment in SCENARIOS:
        scenario = SCENARIOS[args.experiment]
        regulators = {}
        if spec is not None:
            regulators = {
                a.name: spec for a in scenario.actors if not a.critical
            }
        return make_scenario(args.experiment, regulators=regulators)
    if args.experiment == "zcu102":
        return zcu102(
            num_accels=args.hogs, cpu_work=args.work, accel_regulator=spec
        )
    raise ReproError(f"unknown experiment {args.experiment!r}")


def cmd_profile(args) -> int:
    from repro.telemetry import profile_experiment

    config = _experiment_config(args)
    result, profiler = profile_experiment(config, max_cycles=args.max_cycles)
    print(profiler.format_table(limit=args.limit))
    print(
        f"\n{result.elapsed} cycles simulated, "
        f"{profiler.events} events dispatched, "
        f"{profiler.wall_seconds:.3f}s wall"
    )
    return 0


def cmd_trace(args) -> int:
    from dataclasses import replace

    from repro.telemetry import export_platform_trace

    spec = _spec_from_args(args)
    config = zcu102(
        num_accels=args.hogs, cpu_work=args.work, accel_regulator=spec
    )
    config = replace(
        config, trace_masters=tuple(m.name for m in config.masters)
    )
    result = run_experiment(config, max_cycles=args.max_cycles)
    sink = export_platform_trace(
        result.platform, path=args.out, ring_buffer=args.ring_buffer
    )
    print(
        f"wrote {len(sink)} {args.export} events "
        f"({sink.dropped} dropped) to {args.out}"
    )
    return 0


def cmd_check(args) -> int:
    if args.check_command == "lint":
        from repro.checks.lint import format_rule_catalogue, run_lint

        if args.list_rules:
            print(format_rule_catalogue())
            return 0
        return run_lint(
            args.paths or ["src"],
            baseline_path=args.baseline,
            fmt=args.format,
            update_baseline=args.write_baseline,
            jobs=args.jobs,
        )
    if args.check_command == "deep":
        from repro.checks.deep import run_deep_cli

        return run_deep_cli(
            args.paths or ["src"],
            baseline_path=args.baseline,
            fmt=args.format,
            update_baseline=args.write_baseline,
            jobs=args.jobs,
        )
    if args.check_command == "ffdiff":
        from repro.checks.ffdiff import run_ffdiff

        return run_ffdiff(quick=args.quick)
    if args.check_command == "sanitize":
        return _cmd_check_sanitize(args)
    raise ReproError(f"unhandled check subcommand {args.check_command!r}")


def _cmd_check_sanitize(args) -> int:
    import io
    import os
    from contextlib import redirect_stdout

    from repro.checks.sanitize import SANITIZE_ENV

    def render() -> str:
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            cmd_regulate(args)
        return buffer.getvalue()

    # The CLI *sets* the sanitizer knob for the child runs and must
    # restore whatever the caller had.  # repro: allow[DET003]
    previous = os.environ.get(SANITIZE_ENV)
    try:
        os.environ[SANITIZE_ENV] = "1"
        sanitized = render()
        if not args.diff:
            print(sanitized, end="")
            print("sanitizer: no invariant violations")
            return 0
        os.environ.pop(SANITIZE_ENV, None)
        plain = render()
    finally:
        if previous is None:
            os.environ.pop(SANITIZE_ENV, None)
        else:
            os.environ[SANITIZE_ENV] = previous
    print(sanitized, end="")
    if sanitized != plain:
        print("sanitizer DIFF: sanitized run diverged from the plain run")
        return 1
    print("sanitizer: no invariant violations; outputs byte-identical")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.runner import ParallelRunner, ResultCache
    from repro.runner.serve import BatchServer

    cache = None if args.no_cache else ResultCache.from_env()
    runner = ParallelRunner(
        max_workers=args.jobs,
        cache=cache,
        chunk_size=args.chunk_size,
    )
    workers, source = runner.worker_resolution()
    server = BatchServer(
        runner, socket_path=args.socket, max_requests=args.max_requests
    )
    print(
        f"repro serve: listening on {args.socket} "
        f"({workers} workers via {source}, "
        f"cache={'off' if cache is None else cache.root})"
    )
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:
        pass
    finally:
        runner.close()
    stats = server.stats
    print(
        f"repro serve: {stats.requests} requests, {stats.specs} specs, "
        f"{stats.coalesced} coalesced, {stats.batches} batches, "
        f"{stats.errors} errors"
    )
    return 0


def cmd_watch(args) -> int:
    if args.socket:
        return _watch_socket(args)
    return _watch_local(args)


def _watch_socket(args) -> int:
    """Attach to a ``repro serve`` socket and stream probe frames."""
    import json

    from repro.probes import WatchView, iter_watch

    view = WatchView()
    max_frames = 1 if args.once else args.max_frames
    frames = 0
    try:
        for message in iter_watch(
            args.socket,
            probes=args.probes,
            max_frames=max_frames,
            timeout=args.timeout,
        ):
            event = message.get("event")
            if event == "frame":
                frames += 1
                if args.json:
                    print(json.dumps(message))
                else:
                    print(view.render(message))
            elif event == "meta" and not args.json:
                print(
                    f"watching run {message.get('run', '<pending>')} "
                    f"({len(message.get('probes', []))} probes)"
                )
            elif event == "end" and not args.json:
                print(f"run {message.get('run', '?')} finished")
    except OSError as exc:
        print(f"error: watch on {args.socket}: {exc}", file=sys.stderr)
        return 1
    if frames == 0:
        print("error: no frames received", file=sys.stderr)
        return 1
    return 0


def _watch_local(args) -> int:
    """Run an experiment locally with a sampler attached and render
    its frames (one table or JSON line per sample)."""
    import json

    from repro.probes import (
        FlightRecorder,
        ProbeSampler,
        WatchView,
        rules_from_json,
    )
    from repro.soc.platform import Platform

    config = _experiment_config(args)
    platform = Platform(config)
    sampler = ProbeSampler(
        platform.sim,
        platform.probes,
        probes=args.probes,
        period=args.sample_period,
    )
    if args.slo:
        raw = args.slo.strip()
        if raw.startswith("["):
            rules = rules_from_json(raw)
        else:
            try:
                with open(raw, encoding="utf-8") as fh:
                    rules = rules_from_json(fh.read())
            except OSError as exc:
                print(f"error: --slo {raw!r}: {exc}", file=sys.stderr)
                return 2
        recorder = FlightRecorder(rules, out_dir=args.flightrec)
    else:
        recorder = FlightRecorder.from_env()
    if recorder is not None:
        recorder.context.setdefault("experiment", args.experiment)
        recorder.arm(sampler)

    view = WatchView()
    printed = 0
    limit = args.max_frames if not args.once else None

    def emit(now, names, row) -> None:
        nonlocal printed
        values = dict(zip(names, row))
        if args.json:
            print(json.dumps({"event": "frame", "time": now, "values": values}))
        else:
            print(view.render({"time": now, "values": values}))
        printed += 1
        if limit is not None and printed >= limit:
            platform.sim.request_stop()

    if not args.once:
        sampler.consumers.append(emit)
    sampler.attach()
    elapsed = platform.run(args.max_cycles)
    if args.once:
        frame = sampler.last_frame()
        if frame is None:
            print(
                f"error: run ended at cycle {elapsed} before the first "
                f"sample (period {sampler.period}); lower --sample-period",
                file=sys.stderr,
            )
            return 1
        if args.json:
            print(json.dumps({"event": "frame", **frame}))
        else:
            print(view.render(frame))
    if recorder is not None and recorder.dump_dirs:
        for path in recorder.dump_dirs:
            print(f"flight recorder: dumped {path}")
    return 0


def cmd_bound(args) -> int:
    dram = zcu102_dram()
    bound = worst_case_read_latency(
        timing=dram.timing,
        interconnect=zcu102_interconnect(),
        co_runners=[
            CoRunnerEnvelope(max_outstanding=8, burst_beats=16)
            for _ in range(args.hogs)
        ],
        critical_burst_beats=4,
        frfcfs_cap=dram.frfcfs_cap,
        own_outstanding=2,
    )
    result = run_experiment(zcu102(num_accels=args.hogs, cpu_work=args.work))
    rows = [
        {
            "hogs": args.hogs,
            "analytic_bound_cyc": bound,
            "measured_max_cyc": result.critical().latency_max,
            "measured_p99_cyc": result.critical().latency_p99,
            "bound_headroom": bound / max(1.0, result.critical().latency_max),
        }
    ]
    print(format_table(rows, title="Worst-case latency bound vs measurement"))
    return 0 if bound >= result.critical().latency_max else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Cycle-level reproduction of 'Fine-Grained QoS Control via "
            "Tightly-Coupled Bandwidth Monitoring and Regulation for "
            "FPGA-based Heterogeneous SoCs' (DAC 2023)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("interfere", help="unregulated interference sweep")
    p.add_argument("--hogs", type=int, default=4)
    p.add_argument("--work", type=int, default=3000)
    p.set_defaults(fn=cmd_interfere)

    p = sub.add_parser("regulate", help="run one regulated scenario")
    p.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    p.add_argument("--share", type=float, default=0.1,
                   help="per-hog share of channel peak")
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--hogs", type=int, default=4)
    p.add_argument("--work", type=int, default=3000)
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_regulate)

    p = sub.add_parser("accuracy", help="configured vs achieved bandwidth")
    p.add_argument("--share", type=float, default=0.1)
    p.add_argument("--window", type=int, default=1024)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--horizon", type=int, default=400_000)
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_accuracy)

    p = sub.add_parser("resources", help="IP footprint estimate")
    p.add_argument("--channels", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--window", type=int, default=1024)
    p.set_defaults(fn=cmd_resources)

    p = sub.add_parser("bound", help="analytic worst-case latency bound")
    p.add_argument("--hogs", type=int, default=4)
    p.add_argument("--work", type=int, default=3000)
    p.set_defaults(fn=cmd_bound)

    p = sub.add_parser("scenario", help="run a named application scenario")
    p.add_argument("name", nargs="?", default="adas")
    p.add_argument("--list", action="store_true",
                   help="list available scenarios and exit")
    p.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    p.add_argument("--share", type=float, default=0.1)
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_scenario)

    p = sub.add_parser(
        "profile", help="per-component time/event profile of one run"
    )
    p.add_argument("experiment", nargs="?", default="zcu102",
                   help="'zcu102' or a scenario name (adas, ...)")
    p.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    p.add_argument("--share", type=float, default=0.1)
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--hogs", type=int, default=4)
    p.add_argument("--work", type=int, default=3000)
    p.add_argument("--max-cycles", type=int, default=None)
    p.add_argument("--limit", type=int, default=None,
                   help="show only the top N handlers")
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "trace", help="export a transaction-level trace of one run"
    )
    p.add_argument("--export", default="perfetto", choices=["perfetto"],
                   help="trace format (Chrome trace-event JSON)")
    p.add_argument("--out", default="trace.json")
    p.add_argument("--ring-buffer", type=int, default=None,
                   help="keep only the most recent N slices")
    p.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    p.add_argument("--share", type=float, default=0.1)
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--hogs", type=int, default=2)
    p.add_argument("--work", type=int, default=1000)
    p.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES)
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "check", help="correctness tooling (invariant lint, kernel sanitizer)"
    )
    check_sub = p.add_subparsers(dest="check_command", required=True)

    c = check_sub.add_parser(
        "lint", help="AST lint: determinism, hot-path, telemetry rules"
    )
    c.add_argument("paths", nargs="*", help="files/directories (default: src)")
    c.add_argument("--format", default="human", choices=["human", "json"])
    c.add_argument("--baseline", default=None,
                   help="baseline file (default .repro-lint-baseline.json)")
    c.add_argument("--write-baseline", action="store_true",
                   help="record current findings as the new baseline")
    c.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    c.add_argument("--jobs", type=int, default=None,
                   help="scan files with N pool workers (default: serial)")
    c.set_defaults(fn=cmd_check)

    c = check_sub.add_parser(
        "deep",
        help="whole-program analyses: hot-set propagation, CONC, FFC",
    )
    c.add_argument("paths", nargs="*", help="files/directories (default: src)")
    c.add_argument("--format", default="human",
                   choices=["human", "json", "sarif"])
    c.add_argument("--baseline", default=None,
                   help="baseline file (default .repro-deep-baseline.json)")
    c.add_argument("--write-baseline", action="store_true",
                   help="record current findings as the new baseline")
    c.add_argument("--jobs", type=int, default=None,
                   help="scan files with N pool workers (default: auto)")
    c.set_defaults(fn=cmd_check)

    c = check_sub.add_parser(
        "ffdiff",
        help="fast-forward differential harness over shipped regulators",
    )
    c.add_argument("--quick", action="store_true",
                   help="one grid point per regulator family")
    c.set_defaults(fn=cmd_check)

    c = check_sub.add_parser(
        "sanitize",
        help="run one regulated scenario under the kernel sanitizer",
    )
    c.add_argument("--diff", action="store_true",
                   help="also run unsanitized and require identical output")
    c.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    c.add_argument("--share", type=float, default=0.1)
    c.add_argument("--window", type=int, default=256)
    c.add_argument("--period", type=int, default=100_000)
    c.add_argument("--hogs", type=int, default=2)
    c.add_argument("--work", type=int, default=1000)
    c.add_argument("--work-conserving", action="store_true")
    c.add_argument("--reclaim", action="store_true")
    c.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "serve",
        help="batch front-end: JSON run requests over a local socket",
    )
    p.add_argument("--socket", default=".repro_serve.sock",
                   help="Unix socket path to listen on")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: auto via REPRO_JOBS / "
                        "affinity / cgroup quota)")
    p.add_argument("--chunk-size", type=int, default=None,
                   help="specs per pool submission (default: per-spec "
                        "work stealing)")
    p.add_argument("--no-cache", action="store_true",
                   help="do not attach the on-disk result cache")
    p.add_argument("--max-requests", type=int, default=None,
                   help="exit after N run requests (default: serve forever)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "watch",
        help="live probe view: per-master bandwidth, throttle duty, "
             "budget headroom",
    )
    p.add_argument("experiment", nargs="?", default="zcu102",
                   help="'zcu102' or a scenario name (local mode; "
                        "ignored with --socket)")
    p.add_argument("--socket", default=None,
                   help="attach to a 'repro serve' socket instead of "
                        "running locally")
    p.add_argument("--probes", nargs="+", default=None, metavar="GLOB",
                   help="probe-name glob patterns (default: all probes)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit")
    p.add_argument("--json", action="store_true",
                   help="newline-JSON frames instead of tables")
    p.add_argument("--max-frames", type=int, default=None,
                   help="stop after N frames")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-read socket timeout in seconds (socket mode)")
    p.add_argument("--sample-period", type=int, default=None,
                   help="sampling period in cycles (default: "
                        "REPRO_PROBE_PERIOD or 4096; local mode)")
    p.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES)
    p.add_argument("--slo", default=None,
                   help="SLO rules arming a flight recorder: inline JSON "
                        "list or a file path (local mode; default: "
                        "REPRO_SLO)")
    p.add_argument("--flightrec", default=None,
                   help="flight-recorder dump root (default: "
                        "REPRO_FLIGHTREC or results/flightrec)")
    p.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    p.add_argument("--share", type=float, default=0.1)
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--hogs", type=int, default=4)
    p.add_argument("--work", type=int, default=3000)
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("report", help="full scenario report")
    p.add_argument("--kind", default="tightly_coupled",
                   choices=["none", "tightly_coupled", "memguard"])
    p.add_argument("--share", type=float, default=0.1)
    p.add_argument("--window", type=int, default=256)
    p.add_argument("--period", type=int, default=100_000)
    p.add_argument("--hogs", type=int, default=4)
    p.add_argument("--work", type=int, default=3000)
    p.add_argument("--work-conserving", action="store_true")
    p.add_argument("--reclaim", action="store_true")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
