"""Unit helpers shared by configuration objects.

All simulator time is counted in cycles of a single reference clock
(the FPGA fabric / interconnect clock).  :class:`ClockSpec` converts
between cycles, nanoseconds, and bandwidth figures so configurations
can be written in datasheet units (MHz, GB/s, microseconds) while the
engine stays purely integer-cycle based.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ClockSpec:
    """The reference clock of the modelled SoC fabric.

    Attributes:
        freq_mhz: Reference clock frequency in MHz.
    """

    freq_mhz: float = 250.0

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ConfigError(f"clock frequency must be positive, got {self.freq_mhz}")

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.freq_mhz

    def cycles_from_ns(self, ns: float) -> int:
        """Round a duration in nanoseconds to whole cycles (>= 1 if ns > 0)."""
        if ns < 0:
            raise ConfigError(f"duration must be non-negative, got {ns} ns")
        if ns == 0:
            return 0
        return max(1, round(ns / self.period_ns))

    def cycles_from_us(self, us: float) -> int:
        return self.cycles_from_ns(us * 1000.0)

    def ns_from_cycles(self, cycles: int) -> float:
        return cycles * self.period_ns

    def bytes_per_cycle_from_gbps(self, gbps: float) -> float:
        """Convert GB/s (decimal gigabytes) to bytes per cycle."""
        if gbps < 0:
            raise ConfigError(f"bandwidth must be non-negative, got {gbps} GB/s")
        bytes_per_second = gbps * 1e9
        cycles_per_second = self.freq_mhz * 1e6
        return bytes_per_second / cycles_per_second

    def gbps_from_bytes_per_cycle(self, bpc: float) -> float:
        """Convert bytes per cycle to GB/s (decimal gigabytes)."""
        return bpc * self.freq_mhz * 1e6 / 1e9

    def gbps_from_bytes(self, nbytes: float, cycles: int) -> float:
        """Average bandwidth over an interval, in GB/s."""
        if cycles <= 0:
            raise ConfigError(f"interval must be positive, got {cycles} cycles")
        return self.gbps_from_bytes_per_cycle(nbytes / cycles)
