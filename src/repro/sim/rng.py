"""Stable per-component random number generators.

Every stochastic component (random-address traffic generators, jittered
compute phases, ...) draws from its own :class:`random.Random` seeded
from ``(global_seed, component_name)``.  The name is folded through
CRC32 rather than Python's built-in ``hash`` because string hashing is
salted per process and would break run-to-run determinism.
"""

from __future__ import annotations

import random
import zlib

#: The generator type handed out by :func:`component_rng`.  Modules
#: outside this file import the *type* from here (for annotations and
#: isinstance checks) instead of importing :mod:`random` directly --
#: the DET002 lint rule enforces that every stream is created here.
Rng = random.Random


def component_rng(seed: int, name: str) -> random.Random:
    """Return a deterministic RNG unique to ``(seed, name)``.

    Args:
        seed: The experiment-level seed.
        name: A stable component identifier (e.g. ``"accel3"``).

    Returns:
        A ``random.Random`` whose stream depends only on the inputs.
    """
    mixed = (seed & 0xFFFFFFFF) ^ zlib.crc32(name.encode("utf-8"))
    # Spread the 32-bit mix into a wider seed so nearby seeds do not
    # produce correlated Mersenne-Twister states.
    return random.Random(mixed * 0x9E3779B97F4A7C15 & (2**64 - 1))
