"""Simulation kernel (substrate S1).

A deterministic, event-driven, cycle-level simulation engine.  Time is
an integer cycle count of a single reference clock (the FPGA fabric /
interconnect clock); slower clock domains are expressed as integer
multiples of the reference period.

Public entry points:

* :class:`repro.sim.kernel.Simulator` -- the event loop.
* :class:`repro.sim.stats.StatSet` -- named counters and samplers.
* :class:`repro.sim.trace.TraceRecorder` -- optional transaction traces.
* :func:`repro.sim.rng.component_rng` -- stable per-component RNGs.
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.event import Event, EventQueue
from repro.sim.kernel import SCHED_ENV, SCHEDULERS, Simulator, resolve_scheduler
from repro.sim.rng import component_rng
from repro.sim.stats import Counter, Sampler, StatSet, TimeSeries
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "CalendarQueue",
    "Event",
    "EventQueue",
    "SCHED_ENV",
    "SCHEDULERS",
    "Simulator",
    "resolve_scheduler",
    "component_rng",
    "Counter",
    "Sampler",
    "StatSet",
    "TimeSeries",
    "TraceRecord",
    "TraceRecorder",
]
