"""Optional transaction tracing.

A :class:`TraceRecorder` collects one :class:`TraceRecord` per
completed transaction.  Traces serve three purposes: debugging,
trace-replay traffic generation (:mod:`repro.traffic.trace`), and
offline analysis in the examples.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One completed memory transaction.

    Attributes:
        master: Name of the issuing master.
        txn_id: Per-run unique transaction id.
        is_write: True for writes.
        addr: Byte address of the first beat.
        nbytes: Total payload bytes.
        created: Cycle the master generated the request.
        issued: Cycle the address phase was presented to the port.
        accepted: Cycle the interconnect accepted the address phase.
        completed: Cycle the response returned to the master.
    """

    master: str
    txn_id: int
    is_write: bool
    addr: int
    nbytes: int
    created: int
    issued: int
    accepted: int
    completed: int

    @property
    def latency(self) -> int:
        """End-to-end latency from creation to response."""
        return self.completed - self.created

    @property
    def queueing_delay(self) -> int:
        """Cycles spent waiting before the interconnect accepted it."""
        return self.accepted - self.created


def _parse_bool(value: str) -> bool:
    """Parse the ``is_write`` CSV column.

    :meth:`TraceRecorder.write_csv` emits ``0``/``1``, but traces
    written by other tools (or a ``str(bool)``-style dump) carry
    ``True``/``False`` -- accept both rather than silently mis-parsing.
    """
    text = value.strip().lower()
    if text in ("true", "false"):
        return text == "true"
    return bool(int(text))


class TraceRecorder:
    """Accumulates trace records, optionally filtered by master name."""

    def __init__(self, masters: Optional[Iterable[str]] = None) -> None:
        self._filter = set(masters) if masters is not None else None
        self._records: List[TraceRecord] = []

    def record(self, rec: TraceRecord) -> None:
        if self._filter is None or rec.master in self._filter:
            self._records.append(rec)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def for_master(self, master: str) -> List[TraceRecord]:
        return [r for r in self._records if r.master == master]

    def write_csv(self, path: str) -> None:
        """Dump all records to a CSV file usable by trace replay."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                [
                    "master",
                    "txn_id",
                    "is_write",
                    "addr",
                    "nbytes",
                    "created",
                    "issued",
                    "accepted",
                    "completed",
                ]
            )
            for r in self._records:
                writer.writerow(
                    [
                        r.master,
                        r.txn_id,
                        int(r.is_write),
                        r.addr,
                        r.nbytes,
                        r.created,
                        r.issued,
                        r.accepted,
                        r.completed,
                    ]
                )

    @staticmethod
    def read_csv(path: str) -> List[TraceRecord]:
        """Load records produced by :meth:`write_csv`."""
        records: List[TraceRecord] = []
        with open(path, newline="") as fh:
            reader = csv.DictReader(fh)
            for row in reader:
                records.append(
                    TraceRecord(
                        master=row["master"],
                        txn_id=int(row["txn_id"]),
                        is_write=_parse_bool(row["is_write"]),
                        addr=int(row["addr"]),
                        nbytes=int(row["nbytes"]),
                        created=int(row["created"]),
                        issued=int(row["issued"]),
                        accepted=int(row["accepted"]),
                        completed=int(row["completed"]),
                    )
                )
        return records
