"""Calendar-queue scheduler backend.

The production event queue (``REPRO_SCHED=calendar``, the default).
It exploits the temporal locality of this simulator's workloads:
events overwhelmingly land within a few hundred cycles of ``now``
(arbitration passes, DRAM bank timings, regulator retries), with a
thin far-future tail (DRAM refresh, MemGuard periods, horizon stats).

Structure:

* A **ring** of per-cycle buckets covering the sliding window
  ``[cursor, cursor + _BUCKETS)``.  Push is an O(1) list append;
  within a bucket, events are lazily sorted by ``(priority, seq)``
  descending so the next event is an O(1) ``list.pop()`` from the end.
* An **overflow heap** for events at or beyond the window's far edge.
  Each overflow event is migrated into the ring exactly once, when the
  cursor advances far enough -- amortized O(log n) per far event,
  instead of O(log n) per *every* event as in the reference heap.

The dispatch order is bit-identical to :class:`repro.sim.event.
EventQueue`: globally by ``(time, priority, seq)``.  Time order comes
from the cursor scan (ascending cycles), intra-cycle order from the
per-bucket sort; sequence numbers are assigned identically on push.
A differential test (``tests/sim/test_scheduler_differential.py``)
enforces this contract over randomized workloads.

Invariants:

* ``cursor`` never exceeds the time of the earliest live event, so a
  bucket index uniquely identifies one cycle of the current window.
* Every ring entry's time lies in ``[cursor, cursor + _BUCKETS)``
  *or* the entry is a cancelled shell left behind by a cursor jump
  (shells are skipped/purged, so they can never be mis-dispatched).
* Every overflow entry's time is ``>= cursor + _BUCKETS`` (restored
  by migration whenever the cursor advances).
* Pushing below the cursor (legal for direct queue users, and
  reachable through ``Simulator.run(until=...)`` bounds) triggers a
  rare full re-placement of the ring (:meth:`CalendarQueue._rewind`).

Like the reference backend, cancellation is lazy with exact
``live_foreground`` accounting, cancelled shells are compacted away
once they hold the majority, and dispatched events are recycled
through the shared free-list pool.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.event import Event, EventPoolMixin, _COMPACT_MIN_HEAP

#: Ring size (power of two): the near-future horizon, in cycles.
#: Sized to cover DRAM timings, retry windows and arbitration delays
#: of the modelled platforms while bounding the worst-case idle scan.
_BUCKETS = 256
_MASK = _BUCKETS - 1

#: Ring bucket entries are ``(priority, seq, event)`` -- time is
#: implied by the bucket, and the event itself carries it for audits.
_RingEntry = Tuple[int, int, Event]

#: Precomputed single-bit masks for the occupancy word (avoids
#: allocating fresh shift results on the hot paths).
_BIT = [1 << i for i in range(_BUCKETS)]


def _descending(entry: _RingEntry) -> Tuple[int, int]:
    """Sort key inverting ``(priority, seq)`` for descending buckets."""
    return (-entry[0], -entry[1])


class CalendarQueue(EventPoolMixin):
    """Calendar queue with the same protocol as ``EventQueue``."""

    def __init__(self) -> None:
        self._ring: List[List[_RingEntry]] = [[] for _ in range(_BUCKETS)]
        self._ring_count = 0  # entries resident in the ring (incl. shells)
        self._cursor = 0  # lower bound on the earliest live event time
        #: The settled cursor bucket (sorted descending, next event
        #: last) or ``None`` when a fresh settle scan is needed.  While
        #: set, peek/pop are O(1) list-end operations -- the common
        #: case: many dispatches per settled cycle.  Invalidated by
        #: anything that could disturb that bucket's order: a push into
        #: it, a rewind, a clear.  Cancellations need no invalidation;
        #: the fast paths skip shells at the list end inline.
        self._front: Optional[List[_RingEntry]] = None
        #: Occupancy word: bit ``i`` set means ``ring[i]`` *may* be
        #: non-empty.  Bits are set on insertion and cleared when a
        #: dispatch path drains the cursor bucket; bits left stale by
        #: compaction or purges are cleared lazily by the settle scan
        #: (amortized O(1): each stale bit is visited once).  The scan
        #: finds the next occupied cycle with two big-int operations
        #: instead of walking empty buckets one by one.
        self._occupied = 0
        self._overflow: List[Tuple[int, int, int, Event]] = []
        self._next_seq = 0
        self._live_foreground = 0
        self._cancelled_pending = 0
        self._pool: List[Event] = []
        # Telemetry: cold-path counters only (overflow pushes,
        # migrations, rewinds, compactions).  The ring push/pop fast
        # paths carry no instrumentation; ring-tier hits are derived
        # by subtraction in :meth:`stats`.
        self._overflow_pushes = 0
        self._migrations = 0
        self._rewinds = 0
        self._compactions = 0

    def __len__(self) -> int:
        return self._ring_count + len(self._overflow)

    @property
    def live_foreground(self) -> int:
        """Pending non-daemon, non-cancelled events (exact count)."""
        return self._live_foreground

    @property
    def cancelled_pending(self) -> int:
        """Cancelled shells still occupying ring or overflow slots."""
        return self._cancelled_pending

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    # repro: hot
    def push(
        self,
        time: int,
        priority: int,
        callback: Callable[[], object],
        daemon: bool = False,
    ) -> Event:
        """Create and enqueue an event; returns it so it can be cancelled."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = self._acquire(time, priority, seq, callback, daemon)
        cursor = self._cursor
        if time < cursor:
            self._rewind(time)
            cursor = time
        if time < cursor + _BUCKETS:
            index = time & _MASK
            bucket = self._ring[index]
            if not bucket:
                self._occupied |= _BIT[index]
                bucket.append((priority, seq, event))
            elif time == cursor and self._front is not None:
                # The cursor bucket is settled (sorted descending with
                # the next event last).  Same-cycle pushes are the
                # simulator's dominant pattern -- arbitration chains
                # within one cycle -- so keep the order intact with an
                # ordered insert instead of invalidating and re-sorting
                # the bucket on the next dispatch.
                insort(bucket, (priority, seq, event), key=_descending)
            else:
                bucket.append((priority, seq, event))
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (time, priority, seq, event))
            self._overflow_pushes += 1
        if not daemon:
            self._live_foreground += 1
        return event

    def _rewind(self, time: int) -> None:
        """Re-anchor the window at an earlier cycle.

        Only reachable when a push lands below the cursor (the cursor
        may run ahead of the *simulator* clock after a bounded
        ``run(until=...)``).  Rare, so a full re-placement of resident
        ring entries is fine.
        """
        entries: List[_RingEntry] = []
        for bucket in self._ring:
            if bucket:
                entries.extend(bucket)
                del bucket[:]
        self._cursor = time
        self._front = None
        self._ring_count = 0
        self._occupied = 0
        self._rewinds += 1
        limit = time + _BUCKETS
        ring = self._ring
        overflow = self._overflow
        for entry in entries:
            etime = entry[2].time
            if etime < limit:
                index = etime & _MASK
                ring[index].append(entry)
                self._ring_count += 1
                self._occupied |= _BIT[index]
            else:
                heapq.heappush(overflow, (etime, entry[0], entry[1], entry[2]))

    def _migrate(self) -> None:
        """Pull overflow events that entered the window into the ring."""
        overflow = self._overflow
        if not overflow:
            return
        limit = self._cursor + _BUCKETS
        ring = self._ring
        while overflow and overflow[0][0] < limit:
            time, priority, seq, event = heapq.heappop(overflow)
            index = time & _MASK
            ring[index].append((priority, seq, event))
            self._ring_count += 1
            self._migrations += 1
            self._occupied |= _BIT[index]

    # ------------------------------------------------------------------
    # the cursor scan
    # ------------------------------------------------------------------
    # repro: hot -- cursor scan, amortized once per dispatched cycle
    def _settle(self) -> Optional[int]:
        """Advance the cursor to the earliest live event; purge shells.

        Returns that event's time (== the new cursor), or ``None`` if
        no live event remains.  After a successful settle, the bucket
        at ``cursor & _MASK`` is sorted with the next event last and
        cached as :attr:`_front`.

        The scan splits the occupancy word at the cursor's bit: the
        lowest set bit at-or-above it (or, wrapping, the lowest set bit
        overall) is the next occupied cycle -- found in O(1),
        independent of how many empty cycles lie in between.
        """
        while True:
            ring = self._ring
            while self._occupied:
                cursor = self._cursor
                shift = cursor & _MASK
                occupied = self._occupied
                high = occupied >> shift
                if high:
                    t = cursor + (high & -high).bit_length() - 1
                else:
                    t = (
                        cursor
                        - shift
                        + _BUCKETS
                        + (occupied & -occupied).bit_length()
                        - 1
                    )
                index = t & _MASK
                bucket = ring[index]
                if len(bucket) > 1:
                    # Lazy order: timsort on an almost-sorted
                    # (descending) list is near-linear.
                    bucket.sort(reverse=True)
                while bucket and bucket[-1][2].cancelled:
                    del bucket[-1]
                    self._ring_count -= 1
                    self._cancelled_pending -= 1
                if bucket:
                    if t != cursor:
                        self._cursor = t
                        if self._overflow:
                            self._migrate()
                    self._front = bucket
                    return t
                # Verified empty (was a stale or purged-out bit).
                self._occupied &= ~_BIT[index]
            overflow = self._overflow
            while overflow and overflow[0][3].cancelled:
                heapq.heappop(overflow)
                self._cancelled_pending -= 1
            if not overflow:
                self._front = None
                return None
            # Jump the window to the far-future tail and loop back:
            # migration makes the ring non-empty at the new cursor.
            self._cursor = overflow[0][0]
            self._migrate()

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    # repro: hot
    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        bucket = self._front
        while True:
            if bucket:
                event = bucket.pop()[2]
                self._ring_count -= 1
                if not bucket:
                    self._occupied &= ~_BIT[self._cursor & _MASK]
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                if not event.daemon:
                    self._live_foreground -= 1
                event._queue = None
                return event
            if self._settle() is None:
                raise SimulationError("pop() on an empty event queue")
            bucket = self._front

    # repro: hot
    def pop_if_at(self, time: int) -> Optional[Event]:
        """Pop the next live event only if it fires at ``time``.

        The same-cycle fast path of :meth:`Simulator.run`: one front
        inspection both answers "is there more work this cycle?" and
        delivers the event.
        """
        bucket = self._front
        while True:
            if bucket:
                event = bucket[-1][2]
                if event.cancelled:
                    del bucket[-1]
                    self._ring_count -= 1
                    self._cancelled_pending -= 1
                    if not bucket:
                        self._occupied &= ~_BIT[self._cursor & _MASK]
                    continue
                if self._cursor != time:
                    return None
                del bucket[-1]
                self._ring_count -= 1
                if not bucket:
                    self._occupied &= ~_BIT[self._cursor & _MASK]
                if not event.daemon:
                    self._live_foreground -= 1
                event._queue = None
                return event
            next_time = self._settle()
            if next_time is None or next_time != time:
                return None
            bucket = self._front

    # repro: hot
    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or None."""
        bucket = self._front
        while bucket:
            if not bucket[-1][2].cancelled:
                return self._cursor
            del bucket[-1]
            self._ring_count -= 1
            self._cancelled_pending -= 1
            if not bucket:
                self._occupied &= ~_BIT[self._cursor & _MASK]
        return self._settle()

    def clear(self) -> None:
        for bucket in self._ring:
            for entry in bucket:
                entry[2]._queue = None
            del bucket[:]
        for entry in self._overflow:
            entry[3]._queue = None
        self._overflow.clear()
        self._ring_count = 0
        self._front = None
        self._occupied = 0
        self._live_foreground = 0
        self._cancelled_pending = 0

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _on_cancel(self, event: Event) -> None:
        """Account a cancellation of a still-resident event."""
        if not event.daemon:
            self._live_foreground -= 1
        self._cancelled_pending += 1
        resident = self._ring_count + len(self._overflow)
        if resident >= _COMPACT_MIN_HEAP and self._cancelled_pending * 2 > resident:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled shells from the ring and the overflow heap."""
        count = 0
        for bucket in self._ring:
            if bucket:
                bucket[:] = [e for e in bucket if not e[2].cancelled]
                count += len(bucket)
        self._ring_count = count
        overflow = [e for e in self._overflow if not e[3].cancelled]
        heapq.heapify(overflow)
        self._overflow = overflow
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Pull-style queue statistics (cold-path counters + state).

        ``ring_pushes`` is derived by subtraction -- the ring tier
        (the hot path) carries no instrumentation of its own.
        """
        return {
            "backend": "calendar",
            "pending": self._ring_count + len(self._overflow),
            "live_foreground": self._live_foreground,
            "cancelled_pending": self._cancelled_pending,
            "events_scheduled": self._next_seq,
            "ring_pushes": self._next_seq - self._overflow_pushes,
            "overflow_pushes": self._overflow_pushes,
            "overflow_pending": len(self._overflow),
            "migrations": self._migrations,
            "rewinds": self._rewinds,
            "pool_allocations": self._pool_allocations,
            "pool_reuses": self._next_seq - self._pool_allocations,
            "pool_size": len(self._pool),
            "recycle_leaks": self._recycle_leaks,
            "compactions": self._compactions,
        }
