"""Calendar-queue scheduler backend.

The production event queue (``REPRO_SCHED=calendar``, the default).
It exploits the temporal locality of this simulator's workloads:
events overwhelmingly land within a few hundred cycles of ``now``
(arbitration passes, DRAM bank timings, regulator retries), with a
thin far-future tail (DRAM refresh, MemGuard periods, horizon stats).

Structure:

* A **ring** of per-cycle buckets covering the sliding window
  ``[cursor, cursor + _BUCKETS)``.  Push is an O(1) list append;
  within a bucket, events are lazily sorted by ``(priority, seq)``
  descending so the next event is an O(1) ``list.pop()`` from the end.
* An **overflow heap** for events at or beyond the window's far edge.
  Each overflow event is migrated into the ring exactly once, when the
  cursor advances far enough -- amortized O(log n) per far event,
  instead of O(log n) per *every* event as in the reference heap.

The dispatch order is bit-identical to :class:`repro.sim.event.
EventQueue`: globally by ``(time, priority, seq)``.  Time order comes
from the cursor scan (ascending cycles), intra-cycle order from the
per-bucket sort; sequence numbers are assigned identically on push.
A differential test (``tests/sim/test_scheduler_differential.py``)
enforces this contract over randomized workloads.

Invariants:

* ``cursor`` never exceeds the time of the earliest live event, so a
  bucket index uniquely identifies one cycle of the current window.
* Every ring entry's time lies in ``[cursor, cursor + _BUCKETS)``
  *or* the entry is a cancelled shell left behind by a cursor jump
  (shells are skipped/purged, so they can never be mis-dispatched).
* Every overflow entry's time is ``>= cursor + _BUCKETS`` (restored
  by migration whenever the cursor advances).
* Pushing below the cursor (legal for direct queue users, and
  reachable through ``Simulator.run(until=...)`` bounds) triggers a
  rare full re-placement of the ring (:meth:`CalendarQueue._rewind`).

Like the reference backend, cancellation is lazy with exact
``live_foreground`` accounting, cancelled shells are compacted away
once they hold the majority, and dispatched events are recycled
through the shared free-list pool.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.event import Event, EventPoolMixin, EventQueue, _COMPACT_MIN_HEAP

#: Ring size (power of two): the near-future horizon, in cycles.
#: Sized to cover DRAM timings, retry windows and arbitration delays
#: of the modelled platforms while bounding the worst-case idle scan.
_BUCKETS = 256
_MASK = _BUCKETS - 1

#: Ring bucket entries are ``(priority, seq, event)`` -- time is
#: implied by the bucket, and the event itself carries it for audits.
_RingEntry = Tuple[int, int, Event]

#: Precomputed single-bit masks for the occupancy word (avoids
#: allocating fresh shift results on the hot paths).
_BIT = [1 << i for i in range(_BUCKETS)]


def _descending(entry: _RingEntry) -> Tuple[int, int]:
    """Sort key inverting ``(priority, seq)`` for descending buckets."""
    return (-entry[0], -entry[1])


class CalendarQueue(EventPoolMixin):
    """Calendar queue with the same protocol as ``EventQueue``."""

    def __init__(self) -> None:
        self._ring: List[List[_RingEntry]] = [[] for _ in range(_BUCKETS)]
        self._ring_count = 0  # entries resident in the ring (incl. shells)
        self._cursor = 0  # lower bound on the earliest live event time
        #: The settled cursor bucket (sorted descending, next event
        #: last) or ``None`` when a fresh settle scan is needed.  While
        #: set, peek/pop are O(1) list-end operations -- the common
        #: case: many dispatches per settled cycle.  Invalidated by
        #: anything that could disturb that bucket's order: a push into
        #: it, a rewind, a clear.  Cancellations need no invalidation;
        #: the fast paths skip shells at the list end inline.
        self._front: Optional[List[_RingEntry]] = None
        #: Occupancy word: bit ``i`` set means ``ring[i]`` *may* be
        #: non-empty.  Bits are set on insertion and cleared when a
        #: dispatch path drains the cursor bucket; bits left stale by
        #: compaction or purges are cleared lazily by the settle scan
        #: (amortized O(1): each stale bit is visited once).  The scan
        #: finds the next occupied cycle with two big-int operations
        #: instead of walking empty buckets one by one.
        self._occupied = 0
        self._overflow: List[Tuple[int, int, int, Event]] = []
        self._next_seq = 0
        self._live_foreground = 0
        self._cancelled_pending = 0
        # Live (non-cancelled) daemon events resident in ring or
        # overflow.  Together with ``_cancelled_pending == 0`` this
        # gates the bulk batch-drain fast path: when both are zero,
        # every bucket entry is a live foreground event and a cycle
        # transfers with C-level bulk operations instead of a
        # per-entry check loop.
        self._live_daemons = 0
        self._pool: List[Event] = []
        # Telemetry: cold-path counters only (overflow pushes,
        # migrations, rewinds, compactions).  The ring push/pop fast
        # paths carry no instrumentation; ring-tier hits are derived
        # by subtraction in :meth:`stats`.
        self._overflow_pushes = 0
        self._migrations = 0
        self._rewinds = 0
        self._compactions = 0

    def __len__(self) -> int:
        return self._ring_count + len(self._overflow)

    @property
    def live_foreground(self) -> int:
        """Pending non-daemon, non-cancelled events (exact count)."""
        return self._live_foreground

    @property
    def cancelled_pending(self) -> int:
        """Cancelled shells still occupying ring or overflow slots."""
        return self._cancelled_pending

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    # repro: hot
    def push(
        self,
        time: int,
        priority: int,
        callback: Callable[[], object],
        daemon: bool = False,
    ) -> Event:
        """Create and enqueue an event; returns it so it can be cancelled."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = self._acquire(time, priority, seq, callback, daemon)
        cursor = self._cursor
        if time < cursor:
            self._rewind(time)
            cursor = time
        if time < cursor + _BUCKETS:
            index = time & _MASK
            bucket = self._ring[index]
            if not bucket:
                self._occupied |= _BIT[index]
                bucket.append((priority, seq, event))
            elif time == cursor and self._front is not None:
                # The cursor bucket is settled (sorted descending with
                # the next event last).  Same-cycle pushes are the
                # simulator's dominant pattern -- arbitration chains
                # within one cycle -- so keep the order intact with an
                # ordered insert instead of invalidating and re-sorting
                # the bucket on the next dispatch.
                insort(bucket, (priority, seq, event), key=_descending)
            else:
                bucket.append((priority, seq, event))
            self._ring_count += 1
        else:
            heapq.heappush(self._overflow, (time, priority, seq, event))
            self._overflow_pushes += 1
        if not daemon:
            self._live_foreground += 1
        else:
            self._live_daemons += 1
        return event

    def _rewind(self, time: int) -> None:
        """Re-anchor the window at an earlier cycle.

        Only reachable when a push lands below the cursor (the cursor
        may run ahead of the *simulator* clock after a bounded
        ``run(until=...)``).  Rare, so a full re-placement of resident
        ring entries is fine.
        """
        entries: List[_RingEntry] = []
        for bucket in self._ring:
            if bucket:
                entries.extend(bucket)
                del bucket[:]
        self._cursor = time
        self._front = None
        self._ring_count = 0
        self._occupied = 0
        self._rewinds += 1
        limit = time + _BUCKETS
        ring = self._ring
        overflow = self._overflow
        for entry in entries:
            etime = entry[2].time
            if etime < limit:
                index = etime & _MASK
                ring[index].append(entry)
                self._ring_count += 1
                self._occupied |= _BIT[index]
            else:
                heapq.heappush(overflow, (etime, entry[0], entry[1], entry[2]))

    def _migrate(self) -> None:
        """Pull overflow events that entered the window into the ring."""
        overflow = self._overflow
        if not overflow:
            return
        limit = self._cursor + _BUCKETS
        ring = self._ring
        while overflow and overflow[0][0] < limit:
            time, priority, seq, event = heapq.heappop(overflow)
            index = time & _MASK
            ring[index].append((priority, seq, event))
            self._ring_count += 1
            self._migrations += 1
            self._occupied |= _BIT[index]

    # ------------------------------------------------------------------
    # the cursor scan
    # ------------------------------------------------------------------
    # repro: hot -- cursor scan, amortized once per dispatched cycle
    def _settle(self) -> Optional[int]:
        """Advance the cursor to the earliest live event; purge shells.

        Returns that event's time (== the new cursor), or ``None`` if
        no live event remains.  After a successful settle, the bucket
        at ``cursor & _MASK`` is sorted with the next event last and
        cached as :attr:`_front`.

        The scan splits the occupancy word at the cursor's bit: the
        lowest set bit at-or-above it (or, wrapping, the lowest set bit
        overall) is the next occupied cycle -- found in O(1),
        independent of how many empty cycles lie in between.
        """
        while True:
            ring = self._ring
            while self._occupied:
                cursor = self._cursor
                shift = cursor & _MASK
                occupied = self._occupied
                high = occupied >> shift
                if high:
                    t = cursor + (high & -high).bit_length() - 1
                else:
                    t = (
                        cursor
                        - shift
                        + _BUCKETS
                        + (occupied & -occupied).bit_length()
                        - 1
                    )
                index = t & _MASK
                bucket = ring[index]
                if len(bucket) > 1:
                    # Lazy order: timsort on an almost-sorted
                    # (descending) list is near-linear.
                    bucket.sort(reverse=True)
                while bucket and bucket[-1][2].cancelled:
                    del bucket[-1]
                    self._ring_count -= 1
                    self._cancelled_pending -= 1
                if bucket:
                    if t != cursor:
                        self._cursor = t
                        if self._overflow:
                            self._migrate()
                    self._front = bucket
                    return t
                # Verified empty (was a stale or purged-out bit).
                self._occupied &= ~_BIT[index]
            overflow = self._overflow
            while overflow and overflow[0][3].cancelled:
                heapq.heappop(overflow)
                self._cancelled_pending -= 1
            if not overflow:
                self._front = None
                return None
            # Jump the window to the far-future tail and loop back:
            # migration makes the ring non-empty at the new cursor.
            self._cursor = overflow[0][0]
            self._migrate()

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    # repro: hot
    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        bucket = self._front
        while True:
            if bucket:
                event = bucket.pop()[2]
                self._ring_count -= 1
                if not bucket:
                    self._occupied &= ~_BIT[self._cursor & _MASK]
                if event.cancelled:
                    self._cancelled_pending -= 1
                    continue
                if not event.daemon:
                    self._live_foreground -= 1
                else:
                    self._live_daemons -= 1
                event._queue = None
                return event
            if self._settle() is None:
                raise SimulationError("pop() on an empty event queue")
            bucket = self._front

    # repro: hot
    def pop_if_at(self, time: int) -> Optional[Event]:
        """Pop the next live event only if it fires at ``time``.

        The same-cycle fast path of :meth:`Simulator.run`: one front
        inspection both answers "is there more work this cycle?" and
        delivers the event.
        """
        bucket = self._front
        while True:
            if bucket:
                event = bucket[-1][2]
                if event.cancelled:
                    del bucket[-1]
                    self._ring_count -= 1
                    self._cancelled_pending -= 1
                    if not bucket:
                        self._occupied &= ~_BIT[self._cursor & _MASK]
                    continue
                if self._cursor != time:
                    return None
                del bucket[-1]
                self._ring_count -= 1
                if not bucket:
                    self._occupied &= ~_BIT[self._cursor & _MASK]
                if not event.daemon:
                    self._live_foreground -= 1
                else:
                    self._live_daemons -= 1
                event._queue = None
                return event
            next_time = self._settle()
            if next_time is None or next_time != time:
                return None
            bucket = self._front

    # repro: hot -- batch drain, once per dispatched cycle (or chunk)
    def pop_cycle_batch(
        self,
        time: int,
        out: List[Any],
        owner: object = None,
        limit: Optional[int] = None,
    ) -> int:
        """Drain the live events firing at ``time`` into ``out``.

        The batched dispatch protocol (see :meth:`Simulator.run`).
        The settled cursor bucket is already sorted descending, so a
        cycle transfers with one reversed scan -- no per-event
        ``pop_if_at`` round-trips.  Cancelled shells are purged on the
        way (same timing as the per-event purge: at delivery).
        ``owner`` is installed as each event's ``_queue`` so mid-batch
        ``cancel()`` calls stay observable to the dispatch loop.

        ``limit`` caps how many entries one call delivers; dense
        cycles drain in chunks so the dispatch loop's event-pool
        working set stays cache-resident (a 10k+-event cycle in
        flight at once makes every pool reuse a cold cache miss --
        measured as a net batching *loss* at stress populations).
        Undelivered same-cycle entries simply stay queued, where any
        later same-cycle push sorts among them naturally, so chunking
        cannot change dispatch order.

        ``out`` receives the bucket's ``(priority, seq, event)`` entry
        tuples (event last, priority third-from-last, matching
        :meth:`EventQueue.pop_cycle_batch`), not bare events, so the
        dispatch loop can release one tuple per callback instead of
        this method freeing the whole cycle's tuples in one burst --
        see the heap variant's docstring for why that burst is a
        measured GC pathology.

        Returns:
            The number of *foreground* events appended.
        """
        bucket = self._front
        if bucket is None or self._cursor != time:
            if self._settle() != time:
                return 0
            bucket = self._front
        chunked = limit is not None and len(bucket) > limit
        if self._cancelled_pending == 0 and self._live_daemons == 0:
            # Fast path: no cancelled shell anywhere in the queue and
            # no live daemon means every entry in the bucket is a live
            # foreground event, so the cycle (or chunk) transfers with
            # C-level bulk operations (slice/reverse + extend); the
            # only per-entry Python work left is the owner store that
            # keeps mid-batch ``cancel()`` visible to the dispatch
            # loop.
            if chunked:
                # Soonest entries sit at the descending bucket's end;
                # the shortened bucket stays settled for the cycle's
                # next chunk, so the cursor and occupancy bit hold.
                chunk = bucket[-limit:]
                del bucket[-limit:]
                chunk.reverse()
                for entry in chunk:
                    entry[2]._queue = owner
                out += chunk
                fg = limit
            else:
                bucket.reverse()
                for entry in bucket:
                    entry[2]._queue = owner
                out += bucket
                fg = len(bucket)
                del bucket[:]
                self._occupied &= ~_BIT[time & _MASK]
                self._front = None
            self._ring_count -= fg
            self._live_foreground -= fg
            return fg
        append = out.append
        fg = 0
        delivered = 0
        drained = 0
        for i in range(len(bucket) - 1, -1, -1):
            if chunked and delivered == limit:
                break
            entry = bucket[i]
            drained += 1
            event = entry[2]
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            if not event.daemon:
                fg += 1
            else:
                self._live_daemons -= 1
            event._queue = owner
            delivered += 1
            append(entry)
        self._ring_count -= drained
        if drained == len(bucket):
            del bucket[:]
            self._occupied &= ~_BIT[time & _MASK]
            self._front = None
        else:
            del bucket[-drained:]
        self._live_foreground -= fg
        return fg

    def requeue_batch(self, time: int, entries: List[Any], start: int) -> None:
        """Restore the undispatched tail ``entries[start:]`` to the ring.

        Cold path (interrupted batches only); see
        :meth:`EventQueue.requeue_batch` for the contract.  The batch
        was drained from the cursor bucket at ``time``, and callbacks
        can only have pushed at or after ``now``, so the cursor still
        equals ``time`` and the original ``(priority, seq, event)``
        tuples land back in their original bucket unchanged; the settle
        scan re-sorts it before the next dispatch.
        """
        index = time & _MASK
        bucket = self._ring[index]
        for i in range(start, len(entries)):
            entry = entries[i]
            event = entry[2]
            if event.cancelled:
                event._queue = None
                continue
            event._queue = self
            bucket.append(entry)
            self._ring_count += 1
            if not event.daemon:
                self._live_foreground += 1
            else:
                self._live_daemons += 1
        if bucket:
            self._occupied |= _BIT[index]
            self._front = None

    @classmethod
    def from_heap(cls, heap: "EventQueue") -> "CalendarQueue":
        """Adopt a live :class:`EventQueue`'s contents and identity.

        The migration path behind ``REPRO_SCHED=auto``: when a run's
        live-event population crosses the promotion threshold, the
        kernel transplants the heap's pending events (original times,
        priorities and *sequence numbers*), its sequence counter and
        its free-list pool into a fresh calendar queue.  Because both
        backends dispatch globally by ``(time, priority, seq)`` and the
        sequence counter continues uninterrupted, dispatch order after
        the swap is bit-identical to either static backend.  Cancelled
        shells are dropped during the transfer (their live accounting
        already happened at cancel time).  The source heap is emptied
        so it cannot be used by mistake afterwards.
        """
        queue = cls()
        entries = heap._heap
        base: Optional[int] = None
        for entry in entries:
            if not entry[3].cancelled and (base is None or entry[0] < base):
                base = entry[0]
        queue._next_seq = heap._next_seq
        queue._pool = heap._pool
        queue._pool_allocations = heap._pool_allocations
        queue._recycle_leaks = heap._recycle_leaks
        if base is not None:
            queue._cursor = base
        limit = queue._cursor + _BUCKETS
        ring = queue._ring
        for time, priority, seq, event in entries:
            if event.cancelled:
                event._queue = None
                continue
            if event.daemon:
                queue._live_daemons += 1
            event._queue = queue
            if time < limit:
                index = time & _MASK
                ring[index].append((priority, seq, event))
                queue._ring_count += 1
                queue._occupied |= _BIT[index]
            else:
                heapq.heappush(queue._overflow, (time, priority, seq, event))
        queue._live_foreground = heap._live_foreground
        heap._heap = []
        heap._pool = []
        heap._live_foreground = 0
        heap._cancelled_in_heap = 0
        return queue

    # repro: hot
    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or None."""
        bucket = self._front
        while bucket:
            if not bucket[-1][2].cancelled:
                return self._cursor
            del bucket[-1]
            self._ring_count -= 1
            self._cancelled_pending -= 1
            if not bucket:
                self._occupied &= ~_BIT[self._cursor & _MASK]
        return self._settle()

    def clear(self) -> None:
        for bucket in self._ring:
            for entry in bucket:
                entry[2]._queue = None
            del bucket[:]
        for entry in self._overflow:
            entry[3]._queue = None
        self._overflow.clear()
        self._ring_count = 0
        self._front = None
        self._occupied = 0
        self._live_foreground = 0
        self._cancelled_pending = 0
        self._live_daemons = 0

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _on_cancel(self, event: Event) -> None:
        """Account a cancellation of a still-resident event."""
        if not event.daemon:
            self._live_foreground -= 1
        else:
            self._live_daemons -= 1
        self._cancelled_pending += 1
        resident = self._ring_count + len(self._overflow)
        if resident >= _COMPACT_MIN_HEAP and self._cancelled_pending * 2 > resident:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled shells from the ring and the overflow heap."""
        count = 0
        for bucket in self._ring:
            if bucket:
                bucket[:] = [e for e in bucket if not e[2].cancelled]
                count += len(bucket)
        self._ring_count = count
        overflow = [e for e in self._overflow if not e[3].cancelled]
        heapq.heapify(overflow)
        self._overflow = overflow
        self._cancelled_pending = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Pull-style queue statistics (cold-path counters + state).

        ``ring_pushes`` is derived by subtraction -- the ring tier
        (the hot path) carries no instrumentation of its own.
        """
        return {
            "backend": "calendar",
            "pending": self._ring_count + len(self._overflow),
            "live_foreground": self._live_foreground,
            "cancelled_pending": self._cancelled_pending,
            "events_scheduled": self._next_seq,
            "ring_pushes": self._next_seq - self._overflow_pushes,
            "overflow_pushes": self._overflow_pushes,
            "overflow_pending": len(self._overflow),
            "migrations": self._migrations,
            "rewinds": self._rewinds,
            "pool_allocations": self._pool_allocations,
            "pool_reuses": self._next_seq - self._pool_allocations,
            "pool_size": len(self._pool),
            "recycle_leaks": self._recycle_leaks,
            "compactions": self._compactions,
        }
