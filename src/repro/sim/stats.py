"""Statistics primitives shared by every subsystem.

Three collector flavours cover all the measurements the benchmarks
need:

* :class:`Counter` -- a monotonically increasing tally (bytes, beats,
  transactions, stall cycles).
* :class:`Sampler` -- a value population with mean / percentile
  queries (transaction latencies).
* :class:`TimeSeries` -- values bucketed into fixed-width time bins
  (per-window bandwidth).

A :class:`StatSet` groups named collectors per component and renders
them as a plain dictionary for reporting.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Union

from repro.errors import SimulationError

Number = Union[int, float]


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: Number = 1) -> None:
        if amount < 0:
            raise SimulationError(f"counter {self.name!r} decremented by {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Sampler:
    """A population of samples with summary-statistic queries.

    Stores every sample; the workloads in this package produce at most
    a few hundred thousand samples per run, which is cheap to keep and
    makes exact percentiles possible.
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[Number] = []
        self._sorted = True

    def record(self, value: Number) -> None:
        self._samples.append(value)
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> Number:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> Number:
        if not self._samples:
            return 0
        return min(self._samples)

    @property
    def maximum(self) -> Number:
        if not self._samples:
            return 0
        return max(self._samples)

    @property
    def stdev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self._samples) / (n - 1))

    def percentile(self, pct: float) -> Number:
        """Exact percentile via the nearest-rank method.

        Args:
            pct: Percentile in [0, 100].
        """
        if not 0 <= pct <= 100:
            raise SimulationError(f"percentile {pct} out of [0, 100]")
        if not self._samples:
            return 0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        rank = max(1, math.ceil(pct / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def values(self) -> List[Number]:
        """Return a copy of the raw samples (insertion order not kept)."""
        return list(self._samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": float(self.mean),
            "min": float(self.minimum),
            "max": float(self.maximum),
            "p50": float(self.percentile(50)),
            "p95": float(self.percentile(95)),
            "p99": float(self.percentile(99)),
        }


class TimeSeries:
    """Values accumulated into fixed-width time bins.

    Used for per-window bandwidth traces: ``add(now, nbytes)`` folds
    the contribution into bin ``now // bin_width``.

    Bins are a dense array indexed by bin number (simulation time is
    non-negative and mostly advances monotonically, so the array stays
    compact and the hot ``add`` path is an index-and-add instead of a
    dict hash/lookup).  A plain list is used rather than the ``array``
    module so integer byte counts stay exact integers in reports
    instead of being coerced to a fixed C type.
    """

    __slots__ = ("name", "bin_width", "_bins")

    def __init__(self, name: str, bin_width: int) -> None:
        if bin_width <= 0:
            raise SimulationError(f"bin width must be positive, got {bin_width}")
        self.name = name
        self.bin_width = bin_width
        self._bins: List[Number] = []

    def add(self, time: int, value: Number) -> None:
        index = time // self.bin_width
        bins = self._bins
        if index < len(bins):
            bins[index] += value
            return
        if index < 0:
            raise SimulationError(
                f"time series {self.name!r}: negative time {time}"
            )
        if index > len(bins):
            bins.extend([0] * (index - len(bins)))
        bins.append(value)

    def bins(self, first: int = 0, last: Optional[int] = None) -> List[Number]:
        """Densely materialized bin values over ``[first, last]``.

        Args:
            first: First bin index.
            last: Last bin index (defaults to the highest touched bin).
        """
        bins = self._bins
        if not bins:
            return []
        if last is None:
            last = len(bins) - 1
        count = len(bins)
        return [bins[i] if 0 <= i < count else 0 for i in range(first, last + 1)]

    def max_bin(self) -> Number:
        return max(self._bins) if self._bins else 0

    def last_bin(self) -> Number:
        """Value of the most recently touched bin (0 before any add)."""
        return self._bins[-1] if self._bins else 0

    def total(self) -> Number:
        return sum(self._bins)


class StatSet:
    """A named group of collectors belonging to one component."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._counters: Dict[str, Counter] = {}
        self._samplers: Dict[str, Sampler] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(f"{self.owner}.{name}")
        return self._counters[name]

    def sampler(self, name: str) -> Sampler:
        if name not in self._samplers:
            self._samplers[name] = Sampler(f"{self.owner}.{name}")
        return self._samplers[name]

    def series(self, name: str, bin_width: int) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(f"{self.owner}.{name}", bin_width)
        return self._series[name]

    def as_dict(self) -> Dict[str, object]:
        """Flatten all collectors into a report dictionary."""
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, sampler in self._samplers.items():
            out[name] = sampler.summary()
        for name, series in self._series.items():
            out[name] = {
                "bin_width": series.bin_width,
                "total": series.total(),
                "max_bin": series.max_bin(),
            }
        return out
