"""The discrete-event simulation kernel.

The :class:`Simulator` advances an integer cycle counter by dispatching
events in deterministic order.  Components never busy-wait: anything
that has to happen later schedules a callback.  This keeps the cost of
a simulated cycle proportional to the activity in it, which is what
makes million-cycle SoC runs practical in pure Python.

Intra-cycle ordering is expressed with event priorities; the kernel
reserves a small set of well-known levels in :class:`Phase` so that,
within one cycle, regulators replenish before masters retry, masters
present requests before the interconnect arbitrates, and statistics
snapshots run last.

Two scheduler backends implement the event queue (selected with the
``REPRO_SCHED`` environment variable or the ``scheduler=`` argument):

* ``calendar`` -- :class:`repro.sim.calendar.CalendarQueue`, per-cycle
  buckets over a sliding near-future window with a heap overflow tier;
  the fast backend at large live-event populations.
* ``heap`` -- :class:`repro.sim.event.EventQueue`, a single binary
  heap; the reference implementation, and the faster backend for the
  small populations of tiny platform configs.
* ``auto`` (default) -- population-aware runtime selection: the run
  starts on the heap and is promoted in place to the calendar queue
  the first time its live-event occupancy crosses
  :data:`AUTO_PROMOTE_THRESHOLD`.  The decision reads the occupancy
  counter both backends already maintain, once per dispatched cycle,
  so it costs zero per-event instructions; the migration preserves
  times, priorities and sequence numbers, so dispatch order is
  bit-identical to either static backend.

All of them produce bit-identical dispatch traces, so results never
depend on the knob; it exists for performance work and differential
testing.

Dispatch itself is **batched** (``REPRO_BATCH``; the default is
population-aware, see below): each
iteration of :meth:`Simulator.run` drains an entire cycle's events
into a preallocated buffer with one ``pop_cycle_batch`` queue call,
invokes the callbacks from a tight local loop, and returns the shells
with one ``recycle_batch`` call -- one queue/observer round-trip per
cycle instead of four per event.  Same-cycle pushes *into* the live
batch are detected with a priority guard in :meth:`schedule`; the rare
push that would sort before the batch's remaining entries requeues the
tail and falls back to per-event dispatch for that cycle, which keeps
batched dispatch bit-identical to the per-event reference loop (kept
as ``REPRO_BATCH=off``, and differentially tested).  Between cycles
the clock jumps straight to the next scheduled event -- idle cycles
are skipped analytically, never scanned -- and the skipped-cycle count
is reported through :meth:`kernel_stats`.

Like the scheduler, the dispatch mode defaults to ``auto``: batching
amortizes queue round-trips at large event populations but measures
as a 13-21% *loss* on tiny (tens-of-events) populations, so an
``auto`` run starts on the per-event loop and hands over to the
batched loop the first time live-foreground occupancy crosses
:data:`AUTO_PROMOTE_THRESHOLD` -- the same population signal, read
the same zero-cost way, as scheduler promotion.  Both modes are
bit-identical by contract, so the switch can never change a result.

One optional layer sits above dispatch: the steady-state
**fast-forward engine** (``REPRO_FASTFORWARD``, off by default; see
:mod:`repro.sim.fastforward`).  When attached, the dispatch loops
offer it every peeked cycle; if the entire pending population is a
set of regulator-blocked open-loop streams it advances the clock to
the next analytic boundary (token refill, window-bin edge, daemon
tick, retry kick, ``until``) in one macro-step, emitting the skipped
arrivals analytically.  Results are byte-identical to event-accurate
dispatch; only kernel telemetry (events dispatched, idle cycles)
differs, and the engine's own counters are surfaced through
:meth:`kernel_stats`.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.checks.sanitize import SanitizingQueue, sanitize_enabled
from repro.errors import ConfigError, SimulationError
from repro.sim.calendar import CalendarQueue
from repro.sim.event import Event, EventQueue

#: Environment variable selecting the scheduler backend.
SCHED_ENV = "REPRO_SCHED"

#: Environment variable selecting the dispatch mode
#: (batch | event | auto).
BATCH_ENV = "REPRO_BATCH"

#: Environment variable enabling the steady-state fast-forward engine
#: (see :mod:`repro.sim.fastforward`; off unless set to an on-value).
FASTFORWARD_ENV = "REPRO_FASTFORWARD"

#: Backend registry: name -> queue factory (concrete backends only;
#: ``auto`` is a kernel-level mode over these, not a third queue).
SCHEDULERS = {
    "calendar": CalendarQueue,
    "heap": EventQueue,
}

#: The adaptive mode name accepted alongside the concrete backends.
AUTO_SCHED = "auto"

#: The adaptive dispatch-mode name accepted by ``REPRO_BATCH`` /
#: ``batch=`` (population-aware batching; also the default).
AUTO_BATCH = "auto"

#: Live-foreground occupancy at which an ``auto`` run is promoted from
#: the heap to the calendar queue.  Measured on the hold-model probe
#: (``scripts/bench_smoke.py``): tiny platform configs hold tens of
#: live events (where end-to-end sweeps measure the heap ~1.15x
#: faster), stress workloads hold tens of thousands (where the
#: calendar queue measures >= 2x); 2048 sits far above the former and
#: far below the latter, so the decision is insensitive to noise in
#: the crossover region.
AUTO_PROMOTE_THRESHOLD = 2048

_DEFAULT_SCHED = AUTO_SCHED

#: Sentinel for the same-cycle push guard while no batch is live: no
#: priority compares below it, so the guard can stay branch-only.
_GUARD_OFF = -(1 << 62)

#: Max entries one ``pop_cycle_batch`` call delivers.  Dense cycles
#: drain in chunks so the in-flight event-pool working set stays
#: cache-resident: with a whole 10k+-event cycle drained at once,
#: every pool reuse walks a ~1 MB ring and is a cold miss (measured
#: as a net batching loss at stress populations), while chunks of a
#: few hundred events keep the reuse distance inside L2 and retain
#: nearly all of the batching amortization.  Chunking cannot change
#: dispatch order: the undelivered remainder stays queued, where
#: later same-cycle pushes sort among it naturally.
BATCH_CHUNK = 512


def resolve_scheduler(name: Optional[str] = None) -> str:
    """Resolve a scheduler name (argument > ``REPRO_SCHED`` > default).

    Returns one of the concrete backend names in :data:`SCHEDULERS`
    or :data:`AUTO_SCHED`.

    Raises:
        ConfigError: for any other name.
    """
    if name is None:
        # This *is* the REPRO_SCHED knob's resolution point; backends
        # are bit-identical by contract.  # repro: allow[DET003]
        name = os.environ.get(SCHED_ENV, "").strip().lower() or _DEFAULT_SCHED
    else:
        name = name.strip().lower()
    if name != AUTO_SCHED and name not in SCHEDULERS:
        raise ConfigError(
            f"unknown scheduler {name!r} (expected one of "
            f"{sorted(SCHEDULERS) + [AUTO_SCHED]}; set via {SCHED_ENV} "
            "or scheduler=)"
        )
    return name


def resolve_batch(batch: Optional[object] = None) -> object:
    """Resolve the dispatch mode (argument > ``REPRO_BATCH`` > auto).

    Returns ``True`` (always batched), ``False`` (always per-event)
    or :data:`AUTO_BATCH` (start per-event, promote to batched when
    live-foreground occupancy crosses
    :data:`AUTO_PROMOTE_THRESHOLD`).  Batched and per-event dispatch
    are bit-identical by contract (the differential suite enforces
    it), so the promotion can never change a result; the explicit
    modes exist for performance comparison and as the oracle mode for
    those tests.
    """
    if batch is not None:
        if batch == AUTO_BATCH:
            return AUTO_BATCH
        return bool(batch)
    value = os.environ.get(BATCH_ENV, "").strip().lower()  # repro: allow[DET003]
    if not value or value == AUTO_BATCH:
        return AUTO_BATCH
    return value not in ("0", "off", "no", "false", "event", "per-event")


def resolve_fastforward(enabled: Optional[bool] = None) -> bool:
    """Resolve the fast-forward knob (argument > env > off).

    Off by default: the engine only pays off on regulation-bound
    steady streaming, and keeping the event-accurate path the default
    keeps every existing workflow's telemetry (event counts, idle
    cycles) unchanged.  Results are byte-identical either way.
    """
    if enabled is not None:
        return bool(enabled)
    # The REPRO_FASTFORWARD knob's resolution point; on/off runs are
    # byte-identical by contract.  # repro: allow[DET003]
    value = os.environ.get(FASTFORWARD_ENV, "").strip().lower()
    return value in ("1", "on", "yes", "true")


class Phase:
    """Well-known intra-cycle dispatch phases (lower fires first)."""

    REGULATOR = 0  #: window replenish / budget updates
    MASTER = 10  #: traffic generators present new requests
    ARBITER = 20  #: interconnect picks among pending requests
    MEMORY = 30  #: DRAM controller scheduling and completions
    RESPONSE = 40  #: responses delivered back to masters
    MONITOR = 50  #: bandwidth/latency sampling
    CONTROL = 60  #: QoS manager actions (register writes landing)
    STATS = 90  #: end-of-cycle bookkeeping


class _BatchCancelSink:
    """Owner installed on batch-popped events while they await dispatch.

    ``Event.cancel`` routes through ``_queue._on_cancel``; pointing a
    batched (already dequeued) event here keeps mid-batch cancels of
    its not-yet-dispatched siblings visible to the dispatch loop's
    drain bookkeeping, without touching real queue accounting (the
    events already left the queue when the batch was popped).
    """

    __slots__ = ("fg_cancels",)

    def __init__(self) -> None:
        self.fg_cancels = 0

    def _on_cancel(self, event: Event) -> None:
        if not event.daemon:
            self.fg_cancels += 1


class Simulator:
    """Deterministic event-driven simulator with an integer cycle clock.

    Args:
        scheduler: Event-queue backend name (``"calendar"``, ``"heap"``
            or ``"auto"``); ``None`` defers to ``REPRO_SCHED`` and the
            default.  Dispatch order is identical across backends.
        batch: Dispatch mode (``True``, ``False`` or ``"auto"``);
            ``None`` defers to ``REPRO_BATCH`` and the ``auto``
            default (per-event until the live-event population earns
            batching), ``False`` forces the per-event reference loop.
            Dispatch order is identical across modes.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5]
    """

    def __init__(
        self, scheduler: Optional[str] = None, batch: Optional[object] = None
    ) -> None:
        self.scheduler = resolve_scheduler(scheduler)
        if self.scheduler == AUTO_SCHED:
            #: Concrete backend currently in charge (auto starts on the
            #: heap and may be promoted to the calendar queue mid-run).
            self.backend = "heap"
            self._auto_pending = True
        else:
            self.backend = self.scheduler
            self._auto_pending = False
        self._queue: Any = SCHEDULERS[self.backend]()
        if sanitize_enabled():
            # Debugging build: every queue operation runs through the
            # invariant assertions of repro.checks.sanitize.  Dispatch
            # order (and therefore every result) is unchanged.
            self._queue = SanitizingQueue(self._queue)
        mode = resolve_batch(batch)
        #: Resolved dispatch policy: ``"batch"``, ``"event"`` or
        #: ``"auto"`` (kernel_stats' ``dispatch_mode`` keeps naming
        #: the loop currently in charge).
        self.batch_mode = (
            AUTO_BATCH if mode == AUTO_BATCH else ("batch" if mode else "event")
        )
        self._batch_auto_pending = mode == AUTO_BATCH
        self._batch_promote = False
        #: Times an ``auto`` run switched per-event -> batched (0 or 1).
        self.batch_promotions = 0
        self.batched = mode is True
        #: Attached :class:`repro.sim.fastforward.FastForwardEngine`
        #: (None = pure event-accurate dispatch).
        self._ff: Optional[Any] = None
        self._now = 0
        self._running = False
        self._finished = False
        self._stop_requested = False
        #: Components that want a ``finalize(now)`` call at the end of a run.
        self._finalizers: List[Callable[[int], None]] = []
        #: Free-form registry so components can find each other by name.
        self.registry: Dict[str, Any] = {}
        #: Total events dispatched by this simulator (run() and step()).
        #: Accumulated from a loop-local counter at run exit, so the
        #: per-event dispatch cost is one local integer add.
        self.events_dispatched = 0
        #: Idle cycles jumped over by the batched dispatch loop (gaps
        #: between consecutive dispatched cycles; accumulated per run).
        self.idle_cycles_skipped = 0
        #: Times an ``auto`` run promoted its backend (0 or 1).
        self.auto_promotions = 0
        #: Attached :class:`repro.telemetry.profiler.PhaseProfiler`
        #: (None = the unprofiled fast dispatch loop runs).
        self._profiler: Optional[Any] = None
        # Batched-dispatch state: the reusable cycle buffer (queue
        # entry tuples, each overwritten with its event at dispatch),
        # the cancel sink installed on in-flight batch events, and the
        # same-cycle push guard (armed while a batch is live; see
        # schedule()).
        self._batch: List[Any] = []
        self._batch_sink = _BatchCancelSink()
        self._batch_next_priority = _GUARD_OFF
        self._batch_dirty = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in reference-clock cycles."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], Any],
        priority: int = Phase.MASTER,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Args:
            delay: Non-negative number of cycles from the current time.
            callback: Zero-argument callable.
            priority: Intra-cycle phase (see :class:`Phase`).
            daemon: Daemon events (self-rescheduling background
                activity like DRAM refresh) do not keep the run alive.

        Returns:
            The :class:`Event`, which the caller may ``cancel()``.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        # Same-cycle push guard: while a batch for the current cycle is
        # mid-dispatch, a push that sorts before *some* undispatched
        # batch entry flags the batch dirty so the dispatch loop can
        # requeue its tail and fall back to per-event order.  Entries
        # are ascending and new seqs sort after equal priorities, so
        # "before some remaining entry" is exactly "strictly below the
        # batch's last entry's priority" -- one constant per batch.
        if delay == 0 and priority < self._batch_next_priority:
            self._batch_dirty = True
        return self._queue.push(self._now + delay, priority, callback, daemon=daemon)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = Phase.MASTER,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` at an absolute cycle ``time >= now``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current time is {self._now}"
            )
        if time == self._now and priority < self._batch_next_priority:
            self._batch_dirty = True
        return self._queue.push(time, priority, callback, daemon=daemon)

    def add_finalizer(self, fn: Callable[[int], None]) -> None:
        """Register ``fn(now)`` to be invoked when a run completes."""
        self._finalizers.append(fn)

    def attach_fastforward(self, engine: Any) -> None:
        """Attach a steady-state fast-forward engine.

        The dispatch loops offer the engine every peeked cycle (one
        ``attempt`` call; its pure pre-checks fail fast, so irregular
        workloads pay a few attribute reads).  See
        :mod:`repro.sim.fastforward` for the exactness argument.
        """
        self._ff = engine

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    # repro: hot -- batched dispatch loop: one queue round-trip per cycle
    def run(self, until: Optional[int] = None) -> int:
        """Dispatch events until the queue drains or ``until`` is reached.

        Args:
            until: Optional absolute cycle bound (inclusive).  Events
                scheduled after ``until`` remain queued; the clock is
                left at ``until`` so a subsequent ``run()`` continues.

        Returns:
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event callback")
        if self._profiler is not None:
            if self._batch_auto_pending:
                # Profiled runs resolve "auto" to batched upfront: the
                # profiler already perturbs per-event cost, and modes
                # are bit-identical by contract.
                self._batch_auto_pending = False
                self.batched = True
            return self._run_profiled(until)
        if not self.batched:
            result = self._run_per_event(until)
            if self._batch_promote:
                # The per-event loop crossed the population threshold
                # mid-run ("auto" mode); finish on the batched loop.
                self._batch_promote = False
                return self.run(until)
            return result
        self._running = True
        self._stop_requested = False
        queue = self._queue
        # Pre-bound references keep the per-cycle loop free of repeated
        # attribute lookups; the per-event work inside a batch is plain
        # list indexing and local arithmetic.
        peek_time = queue.peek_time
        pop_cycle_batch = queue.pop_cycle_batch
        requeue_batch = queue.requeue_batch
        recycle_batch = queue.recycle_batch
        pop_if_at = queue.pop_if_at
        recycle = queue.recycle
        batch = self._batch
        sink = self._batch_sink
        ff = self._ff
        dispatched = 0
        idle_skipped = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if (
                    self._auto_pending
                    and queue.live_foreground >= AUTO_PROMOTE_THRESHOLD
                ):
                    self._promote()
                    queue = self._queue
                    peek_time = queue.peek_time
                    pop_cycle_batch = queue.pop_cycle_batch
                    requeue_batch = queue.requeue_batch
                    recycle_batch = queue.recycle_batch
                    pop_if_at = queue.pop_if_at
                    recycle = queue.recycle
                next_time = peek_time()
                if next_time is None or queue.live_foreground == 0:
                    # Drained: nothing left, or only daemon events
                    # (background refresh/ticks) remain.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if ff is not None:
                    # Steady-state macro-step: when the whole pending
                    # population is analytically advanceable, the
                    # engine moves the clock to the next boundary and
                    # returns the idle cycles the jump covered.
                    skipped = ff.attempt(next_time, until)
                    if skipped is not None:
                        idle_skipped += skipped
                        continue
                if next_time - self._now > 1:
                    # Analytic idle skip: the clock jumps the gap; no
                    # empty cycle is ever visited.
                    idle_skipped += next_time - self._now - 1
                self._now = next_time
                # Chunked drain (BATCH_CHUNK): a dense cycle spans
                # several batches; the outer loop re-peeks the same
                # time and drains the rest, keeping the in-flight pool
                # working set cache-resident.
                fg_remaining = pop_cycle_batch(next_time, batch, sink, BATCH_CHUNK)
                n = len(batch)
                sink.fg_cancels = 0
                self._batch_dirty = False
                dirty = False
                i = 0
                if n:
                    # Arm the push guard with the batch's *maximum*
                    # remaining priority (entries are ascending, so the
                    # last entry's -- one constant for the whole batch).
                    # A same-cycle push interleaves before some
                    # undispatched entry iff its priority is strictly
                    # below this, wherever dispatch currently stands.
                    # (Pushes sorting after the in-flight chunk but
                    # among the still-queued remainder need no guard:
                    # queue order handles them.)
                    self._batch_next_priority = batch[n - 1][-3]
                # The batch holds the queues' own entry tuples (event
                # last, priority third-from-last); each slot is
                # overwritten with its bare event as it is consumed, so
                # one tuple dies per callback -- interleaved with the
                # callback's own push allocations.  Releasing the whole
                # cycle's tuples in one burst instead zero-clamps the
                # GC nursery counter and the push burst that follows
                # triggers dozens of collections per cycle (measured:
                # ~2x throughput loss at stress populations).
                while i < n:
                    entry = batch[i]
                    event = entry[-1]
                    i += 1
                    if event.cancelled:
                        # Cancelled mid-batch by an earlier callback;
                        # consume the sink's note and skip (the
                        # per-event loop would have purged it unpopped).
                        batch[i - 1] = event
                        event._queue = None
                        if not event.daemon:
                            fg_remaining -= 1
                            sink.fg_cancels -= 1
                        continue
                    if event.daemon:
                        if queue.live_foreground + fg_remaining - sink.fg_cancels == 0:
                            # No live foreground work remains ahead of
                            # this daemon: the per-event loop stops
                            # here, leaving it queued.
                            i -= 1
                            break
                    else:
                        fg_remaining -= 1
                    if i == n:
                        # Last entry: same-cycle pushes land behind the
                        # batch and are re-batched by the outer loop in
                        # the same order per-event dispatch would use.
                        self._batch_next_priority = _GUARD_OFF
                    batch[i - 1] = event
                    # Detach before invoking: per-event pops detach at
                    # pop time, so a cancel() from within the event's
                    # own callback must be an accounting no-op here too.
                    event._queue = None
                    event.callback()
                    dispatched += 1
                    if self._stop_requested:
                        break
                    if self._batch_dirty:
                        dirty = True
                        break
                self._batch_next_priority = _GUARD_OFF
                if i < n:
                    requeue_batch(next_time, batch, i)
                event = None
                entry = None
                recycle_batch(batch, i)
                if dirty:
                    # A same-cycle push sorted before the (requeued)
                    # batch tail; finish this cycle on the per-event
                    # reference path, which interleaves exactly.
                    while not self._stop_requested and queue.live_foreground > 0:
                        event = pop_if_at(self._now)
                        if event is None:
                            break
                        event.callback()
                        recycle(event)
                        dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
            self.idle_cycles_skipped += idle_skipped
        for fn in self._finalizers:
            fn(self._now)
        self._finished = True
        return self._now

    # repro: hot -- per-event reference loop (REPRO_BATCH=off oracle)
    def _run_per_event(self, until: Optional[int] = None) -> int:
        """The per-event reference dispatch loop.

        Kept as the oracle that batched dispatch is differentially
        tested against (``REPRO_BATCH=off``); one full Python loop
        iteration (peek, pop, invoke, recycle) per event.
        """
        self._running = True
        self._stop_requested = False
        queue = self._queue
        # Pre-bound references keep the per-event loop free of
        # repeated attribute lookups (this loop runs once per
        # dispatched event -- millions of times per experiment).
        peek_time = queue.peek_time
        pop = queue.pop
        pop_if_at = queue.pop_if_at
        recycle = queue.recycle
        ff = self._ff
        dispatched = 0
        try:
            while True:
                if self._stop_requested:
                    break
                if self._batch_auto_pending and (
                    queue.live_foreground >= AUTO_PROMOTE_THRESHOLD
                ):
                    # "auto" dispatch mode: the population just earned
                    # batching; hand the rest of the run to the
                    # batched loop (run() re-enters it).
                    self._batch_auto_pending = False
                    self.batched = True
                    self.batch_promotions += 1
                    self._batch_promote = True
                    break
                if (
                    self._auto_pending
                    and queue.live_foreground >= AUTO_PROMOTE_THRESHOLD
                ):
                    self._promote()
                    queue = self._queue
                    peek_time = queue.peek_time
                    pop = queue.pop
                    pop_if_at = queue.pop_if_at
                    recycle = queue.recycle
                next_time = peek_time()
                if next_time is None or queue.live_foreground == 0:
                    # Drained: nothing left, or only daemon events
                    # (background refresh/ticks) remain.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if ff is not None and ff.attempt(next_time, until) is not None:
                    # Macro-stepped; the per-event reference loop does
                    # not account idle cycles, so the count is dropped.
                    continue
                event = pop()
                self._now = event.time
                event.callback()
                recycle(event)
                dispatched += 1
                # Same-cycle fast path: drain the rest of this cycle
                # with single-scan pops, skipping the redundant
                # peek/horizon checks (the horizon can only be crossed
                # when time advances).
                while not self._stop_requested and queue.live_foreground > 0:
                    event = pop_if_at(self._now)
                    if event is None:
                        break
                    event.callback()
                    recycle(event)
                    dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
        if self._batch_promote:
            # Mid-run handoff to the batched loop: finalizers and the
            # finished flag belong to the real end of the run.
            return self._now
        for fn in self._finalizers:
            fn(self._now)
        self._finished = True
        return self._now

    # repro: hot -- instrumented twin of run(), same discipline
    def _run_profiled(self, until: Optional[int] = None) -> int:
        """Instrumented twin of :meth:`run` (profiler attached).

        Brackets every callback with two clock reads and feeds the
        attached profiler; kept as a separate loop so detached runs
        pay nothing for the capability.  Follows the same batched
        protocol (batch pops, cancel sink, dirty fallback), so a
        profiled run dispatches bit-identically to an unprofiled one.
        """
        if not self.batched:
            return self._run_per_event_profiled(until)
        profiler = self._profiler
        clock = profiler.clock
        observe = profiler.observe
        self._running = True
        self._stop_requested = False
        queue = self._queue
        peek_time = queue.peek_time
        pop_cycle_batch = queue.pop_cycle_batch
        requeue_batch = queue.requeue_batch
        recycle_batch = queue.recycle_batch
        pop_if_at = queue.pop_if_at
        recycle = queue.recycle
        batch = self._batch
        sink = self._batch_sink
        ff = self._ff
        dispatched = 0
        idle_skipped = 0
        wall_start = clock()
        try:
            while True:
                if self._stop_requested:
                    break
                if (
                    self._auto_pending
                    and queue.live_foreground >= AUTO_PROMOTE_THRESHOLD
                ):
                    self._promote()
                    queue = self._queue
                    peek_time = queue.peek_time
                    pop_cycle_batch = queue.pop_cycle_batch
                    requeue_batch = queue.requeue_batch
                    recycle_batch = queue.recycle_batch
                    pop_if_at = queue.pop_if_at
                    recycle = queue.recycle
                next_time = peek_time()
                if next_time is None or queue.live_foreground == 0:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if ff is not None:
                    skipped = ff.attempt(next_time, until)
                    if skipped is not None:
                        idle_skipped += skipped
                        continue
                if next_time - self._now > 1:
                    idle_skipped += next_time - self._now - 1
                self._now = next_time
                fg_remaining = pop_cycle_batch(next_time, batch, sink, BATCH_CHUNK)
                n = len(batch)
                sink.fg_cancels = 0
                self._batch_dirty = False
                dirty = False
                i = 0
                if n:
                    self._batch_next_priority = batch[n - 1][-3]
                # Entry-tuple discipline as in run(): consume one tuple
                # per callback to keep GC nursery pressure interleaved.
                while i < n:
                    entry = batch[i]
                    event = entry[-1]
                    i += 1
                    if event.cancelled:
                        batch[i - 1] = event
                        event._queue = None
                        if not event.daemon:
                            fg_remaining -= 1
                            sink.fg_cancels -= 1
                        continue
                    if event.daemon:
                        if queue.live_foreground + fg_remaining - sink.fg_cancels == 0:
                            i -= 1
                            break
                    else:
                        fg_remaining -= 1
                    if i == n:
                        self._batch_next_priority = _GUARD_OFF
                    batch[i - 1] = event
                    event._queue = None
                    callback = event.callback
                    start = clock()
                    callback()
                    observe(callback, clock() - start)
                    dispatched += 1
                    if self._stop_requested:
                        break
                    if self._batch_dirty:
                        dirty = True
                        break
                self._batch_next_priority = _GUARD_OFF
                if i < n:
                    requeue_batch(next_time, batch, i)
                event = None
                entry = None
                recycle_batch(batch, i)
                if dirty:
                    while not self._stop_requested and queue.live_foreground > 0:
                        event = pop_if_at(self._now)
                        if event is None:
                            break
                        callback = event.callback
                        start = clock()
                        callback()
                        observe(callback, clock() - start)
                        recycle(event)
                        dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
            self.idle_cycles_skipped += idle_skipped
            profiler.wall_seconds += clock() - wall_start
        for fn in self._finalizers:
            fn(self._now)
        self._finished = True
        return self._now

    # repro: hot -- instrumented twin of _run_per_event()
    def _run_per_event_profiled(self, until: Optional[int] = None) -> int:
        """Instrumented twin of :meth:`_run_per_event`."""
        profiler = self._profiler
        clock = profiler.clock
        observe = profiler.observe
        self._running = True
        self._stop_requested = False
        queue = self._queue
        peek_time = queue.peek_time
        pop = queue.pop
        pop_if_at = queue.pop_if_at
        recycle = queue.recycle
        ff = self._ff
        dispatched = 0
        wall_start = clock()
        try:
            while True:
                if self._stop_requested:
                    break
                if (
                    self._auto_pending
                    and queue.live_foreground >= AUTO_PROMOTE_THRESHOLD
                ):
                    self._promote()
                    queue = self._queue
                    peek_time = queue.peek_time
                    pop = queue.pop
                    pop_if_at = queue.pop_if_at
                    recycle = queue.recycle
                next_time = peek_time()
                if next_time is None or queue.live_foreground == 0:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if ff is not None and ff.attempt(next_time, until) is not None:
                    continue
                event = pop()
                self._now = event.time
                callback = event.callback
                start = clock()
                callback()
                observe(callback, clock() - start)
                recycle(event)
                dispatched += 1
                while not self._stop_requested and queue.live_foreground > 0:
                    event = pop_if_at(self._now)
                    if event is None:
                        break
                    callback = event.callback
                    start = clock()
                    callback()
                    observe(callback, clock() - start)
                    recycle(event)
                    dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
            profiler.wall_seconds += clock() - wall_start
        for fn in self._finalizers:
            fn(self._now)
        self._finished = True
        return self._now

    # ------------------------------------------------------------------
    # adaptive backend selection
    # ------------------------------------------------------------------
    def _promote(self) -> None:
        """Swap the live heap backend for a calendar queue (auto mode).

        Called by the dispatch loops between cycles, the first time
        live-event occupancy crosses :data:`AUTO_PROMOTE_THRESHOLD`.
        The migration (:meth:`CalendarQueue.from_heap`) preserves every
        pending event's time, priority and sequence number plus the
        sequence counter and event pool, so dispatch order -- and
        therefore every simulation result -- is unchanged.
        """
        self._auto_pending = False
        self.auto_promotions += 1
        target = self._queue
        if isinstance(target, SanitizingQueue):
            target.inner = CalendarQueue.from_heap(target.inner)
        else:
            self._queue = CalendarQueue.from_heap(target)
        self.backend = "calendar"

    def kernel_stats(self) -> Dict[str, Any]:
        """Snapshot of kernel and queue telemetry (pull-style).

        Combines the simulator's dispatch count with the scheduler
        backend's cold-path counters (see ``EventQueue.stats`` /
        ``CalendarQueue.stats``); collecting it costs nothing until
        called, so it is always available -- ``REPRO_TELEMETRY``
        gates only the push-style registry, not this.

        ``idle_cycles_skipped`` counts the empty cycles the batched
        dispatch loop jumped over analytically (per-event runs report
        0: they advance the clock identically but do not account the
        gaps).  Under ``scheduler="auto"``, ``scheduler`` stays
        ``"auto"`` while ``backend`` (and the queue's own ``backend``
        field) names the concrete queue currently in charge;
        ``auto_promotions`` records whether the promotion happened.
        ``batch_policy`` / ``batch_promotions`` are the dispatch-mode
        analogues (``dispatch_mode`` names the loop currently in
        charge).  With a fast-forward engine attached, ``ff_regions``,
        ``ff_cycles_skipped`` and ``ff_arrivals`` report its activity
        (macro-stepped regions, cycles covered, arrivals emitted
        analytically).
        """
        stats: Dict[str, Any] = {
            "scheduler": self.scheduler,
            "dispatch_mode": "batch" if self.batched else "event",
            "batch_policy": self.batch_mode,
            "now": self._now,
            "events_dispatched": self.events_dispatched,
            "idle_cycles_skipped": self.idle_cycles_skipped,
            "auto_promotions": self.auto_promotions,
            "batch_promotions": self.batch_promotions,
        }
        ff = self._ff
        if ff is not None:
            stats["ff_regions"] = ff.regions
            stats["ff_cycles_skipped"] = ff.cycles_skipped
            stats["ff_arrivals"] = ff.arrivals_emitted
        stats.update(self._queue.stats())
        return stats

    def request_stop(self) -> None:
        """Ask a running :meth:`run` to return after the current event.

        Used by experiment harnesses to end a run as soon as the
        masters under measurement finish their work, instead of
        simulating background traffic to the horizon.
        """
        self._stop_requested = True

    # repro: hot
    def step(self) -> Optional[int]:
        """Dispatch exactly one event; returns its time or None if idle.

        Consistent with :meth:`run`: when only daemon events
        (background refresh/ticks) remain, the simulation counts as
        drained and ``step()`` returns ``None`` instead of ticking
        daemons forever.  Stepping is always per-event (a batch of one
        would only add overhead), which is bit-identical by contract.
        """
        queue = self._queue
        if self._auto_pending and queue.live_foreground >= AUTO_PROMOTE_THRESHOLD:
            self._promote()
            queue = self._queue
        if queue.live_foreground == 0 or queue.peek_time() is None:
            return None
        event = queue.pop()
        time = event.time
        self._now = time
        event.callback()
        queue.recycle(event)
        self.events_dispatched += 1
        return time

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled shells count until
        the queue compacts or pops them).  While a batch is mid-flight
        inside :meth:`run`, the current cycle's events are in the
        dispatch buffer, not the queue, and are not counted."""
        return len(self._queue)
