"""The discrete-event simulation kernel.

The :class:`Simulator` advances an integer cycle counter by dispatching
events in deterministic order.  Components never busy-wait: anything
that has to happen later schedules a callback.  This keeps the cost of
a simulated cycle proportional to the activity in it, which is what
makes million-cycle SoC runs practical in pure Python.

Intra-cycle ordering is expressed with event priorities; the kernel
reserves a small set of well-known levels in :class:`Phase` so that,
within one cycle, regulators replenish before masters retry, masters
present requests before the interconnect arbitrates, and statistics
snapshots run last.

Two scheduler backends implement the event queue (selected with the
``REPRO_SCHED`` environment variable or the ``scheduler=`` argument):

* ``calendar`` (default) -- :class:`repro.sim.calendar.CalendarQueue`,
  per-cycle buckets over a sliding near-future window with a heap
  overflow tier; the fast path for this simulator's workloads.
* ``heap`` -- :class:`repro.sim.event.EventQueue`, a single binary
  heap; the reference implementation.

Both produce bit-identical dispatch traces, so results never depend
on the knob; it exists for performance work and differential testing.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.checks.sanitize import SanitizingQueue, sanitize_enabled
from repro.errors import ConfigError, SimulationError
from repro.sim.calendar import CalendarQueue
from repro.sim.event import Event, EventQueue

#: Environment variable selecting the scheduler backend.
SCHED_ENV = "REPRO_SCHED"

#: Backend registry: name -> queue factory.
SCHEDULERS = {
    "calendar": CalendarQueue,
    "heap": EventQueue,
}

_DEFAULT_SCHED = "calendar"


def resolve_scheduler(name: Optional[str] = None) -> str:
    """Resolve a scheduler name (argument > ``REPRO_SCHED`` > default).

    Raises:
        ConfigError: for a name outside :data:`SCHEDULERS`.
    """
    if name is None:
        # This *is* the REPRO_SCHED knob's resolution point; backends
        # are bit-identical by contract.  # repro: allow[DET003]
        name = os.environ.get(SCHED_ENV, "").strip().lower() or _DEFAULT_SCHED
    else:
        name = name.strip().lower()
    if name not in SCHEDULERS:
        raise ConfigError(
            f"unknown scheduler {name!r} (expected one of "
            f"{sorted(SCHEDULERS)}; set via {SCHED_ENV} or scheduler=)"
        )
    return name


class Phase:
    """Well-known intra-cycle dispatch phases (lower fires first)."""

    REGULATOR = 0  #: window replenish / budget updates
    MASTER = 10  #: traffic generators present new requests
    ARBITER = 20  #: interconnect picks among pending requests
    MEMORY = 30  #: DRAM controller scheduling and completions
    RESPONSE = 40  #: responses delivered back to masters
    MONITOR = 50  #: bandwidth/latency sampling
    CONTROL = 60  #: QoS manager actions (register writes landing)
    STATS = 90  #: end-of-cycle bookkeeping


class Simulator:
    """Deterministic event-driven simulator with an integer cycle clock.

    Args:
        scheduler: Event-queue backend name (``"calendar"`` or
            ``"heap"``); ``None`` defers to ``REPRO_SCHED`` and the
            default.  Dispatch order is identical across backends.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5]
    """

    def __init__(self, scheduler: Optional[str] = None) -> None:
        self.scheduler = resolve_scheduler(scheduler)
        self._queue: Any = SCHEDULERS[self.scheduler]()
        if sanitize_enabled():
            # Debugging build: every queue operation runs through the
            # invariant assertions of repro.checks.sanitize.  Dispatch
            # order (and therefore every result) is unchanged.
            self._queue = SanitizingQueue(self._queue)
        self._now = 0
        self._running = False
        self._finished = False
        self._stop_requested = False
        #: Components that want a ``finalize(now)`` call at the end of a run.
        self._finalizers: List[Callable[[int], None]] = []
        #: Free-form registry so components can find each other by name.
        self.registry: Dict[str, Any] = {}
        #: Total events dispatched by this simulator (run() and step()).
        #: Accumulated from a loop-local counter at run exit, so the
        #: per-event dispatch cost is one local integer add.
        self.events_dispatched = 0
        #: Attached :class:`repro.telemetry.profiler.PhaseProfiler`
        #: (None = the unprofiled fast dispatch loop runs).
        self._profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in reference-clock cycles."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[[], Any],
        priority: int = Phase.MASTER,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        Args:
            delay: Non-negative number of cycles from the current time.
            callback: Zero-argument callable.
            priority: Intra-cycle phase (see :class:`Phase`).
            daemon: Daemon events (self-rescheduling background
                activity like DRAM refresh) do not keep the run alive.

        Returns:
            The :class:`Event`, which the caller may ``cancel()``.

        Raises:
            SimulationError: if ``delay`` is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} cycles in the past")
        return self._queue.push(self._now + delay, priority, callback, daemon=daemon)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        priority: int = Phase.MASTER,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` at an absolute cycle ``time >= now``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, current time is {self._now}"
            )
        return self._queue.push(time, priority, callback, daemon=daemon)

    def add_finalizer(self, fn: Callable[[int], None]) -> None:
        """Register ``fn(now)`` to be invoked when a run completes."""
        self._finalizers.append(fn)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    # repro: hot -- dispatch loop, runs once per event (repro.checks HOT rules)
    def run(self, until: Optional[int] = None) -> int:
        """Dispatch events until the queue drains or ``until`` is reached.

        Args:
            until: Optional absolute cycle bound (inclusive).  Events
                scheduled after ``until`` remain queued; the clock is
                left at ``until`` so a subsequent ``run()`` continues.

        Returns:
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event callback")
        if self._profiler is not None:
            return self._run_profiled(until)
        self._running = True
        self._stop_requested = False
        queue = self._queue
        # Pre-bound references keep the per-event loop free of
        # repeated attribute lookups (this loop runs once per
        # dispatched event -- millions of times per experiment).
        peek_time = queue.peek_time
        pop = queue.pop
        pop_if_at = queue.pop_if_at
        recycle = queue.recycle
        dispatched = 0
        try:
            while True:
                if self._stop_requested:
                    break
                next_time = peek_time()
                if next_time is None or queue.live_foreground == 0:
                    # Drained: nothing left, or only daemon events
                    # (background refresh/ticks) remain.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = pop()
                self._now = event.time
                event.callback()
                recycle(event)
                dispatched += 1
                # Same-cycle fast path: drain the rest of this cycle
                # with single-scan pops, skipping the redundant
                # peek/horizon checks (the horizon can only be crossed
                # when time advances).
                while not self._stop_requested and queue.live_foreground > 0:
                    event = pop_if_at(self._now)
                    if event is None:
                        break
                    event.callback()
                    recycle(event)
                    dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
        for fn in self._finalizers:
            fn(self._now)
        self._finished = True
        return self._now

    # repro: hot -- instrumented twin of run(), same discipline
    def _run_profiled(self, until: Optional[int] = None) -> int:
        """Instrumented twin of :meth:`run` (profiler attached).

        Brackets every callback with two clock reads and feeds the
        attached profiler; kept as a separate loop so detached runs
        pay nothing for the capability.
        """
        profiler = self._profiler
        clock = profiler.clock
        observe = profiler.observe
        self._running = True
        self._stop_requested = False
        queue = self._queue
        peek_time = queue.peek_time
        pop = queue.pop
        pop_if_at = queue.pop_if_at
        recycle = queue.recycle
        dispatched = 0
        wall_start = clock()
        try:
            while True:
                if self._stop_requested:
                    break
                next_time = peek_time()
                if next_time is None or queue.live_foreground == 0:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                event = pop()
                self._now = event.time
                callback = event.callback
                start = clock()
                callback()
                observe(callback, clock() - start)
                recycle(event)
                dispatched += 1
                while not self._stop_requested and queue.live_foreground > 0:
                    event = pop_if_at(self._now)
                    if event is None:
                        break
                    callback = event.callback
                    start = clock()
                    callback()
                    observe(callback, clock() - start)
                    recycle(event)
                    dispatched += 1
        finally:
            self._running = False
            self.events_dispatched += dispatched
            profiler.wall_seconds += clock() - wall_start
        for fn in self._finalizers:
            fn(self._now)
        self._finished = True
        return self._now

    def kernel_stats(self) -> Dict[str, Any]:
        """Snapshot of kernel and queue telemetry (pull-style).

        Combines the simulator's dispatch count with the scheduler
        backend's cold-path counters (see ``EventQueue.stats`` /
        ``CalendarQueue.stats``); collecting it costs nothing until
        called, so it is always available -- ``REPRO_TELEMETRY``
        gates only the push-style registry, not this.
        """
        stats: Dict[str, Any] = {
            "scheduler": self.scheduler,
            "now": self._now,
            "events_dispatched": self.events_dispatched,
        }
        stats.update(self._queue.stats())
        return stats

    def request_stop(self) -> None:
        """Ask a running :meth:`run` to return after the current event.

        Used by experiment harnesses to end a run as soon as the
        masters under measurement finish their work, instead of
        simulating background traffic to the horizon.
        """
        self._stop_requested = True

    # repro: hot
    def step(self) -> Optional[int]:
        """Dispatch exactly one event; returns its time or None if idle.

        Consistent with :meth:`run`: when only daemon events
        (background refresh/ticks) remain, the simulation counts as
        drained and ``step()`` returns ``None`` instead of ticking
        daemons forever.
        """
        queue = self._queue
        if queue.live_foreground == 0 or queue.peek_time() is None:
            return None
        event = queue.pop()
        time = event.time
        self._now = time
        event.callback()
        queue.recycle(event)
        self.events_dispatched += 1
        return time

    @property
    def pending_events(self) -> int:
        """Number of events still queued (cancelled shells count until
        the queue compacts or pops them)."""
        return len(self._queue)
