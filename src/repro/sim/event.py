"""Event primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing tie-breaker, which makes event
dispatch fully deterministic: two events scheduled for the same cycle
at the same priority always fire in scheduling order.

This module holds the :class:`Event` object, the shared free-list
pooling machinery, and the *reference* scheduler backend
(:class:`EventQueue`, a single binary heap).  The production backend
is the calendar queue in :mod:`repro.sim.calendar`; both implement the
same queue protocol and are required to produce bit-identical dispatch
traces (see ``tests/sim/test_scheduler_differential.py``).

Three implementation choices keep the queues fast on the simulator's
hot path (entered once per dispatched event):

* Heap entries are ``(time, priority, seq, event)`` tuples, so
  ``heapq`` sibling comparisons run through the C tuple fast path
  instead of calling :meth:`Event.__lt__` for every swap.
* Cancellation is *lazy* (events are flagged and skipped when they
  surface), but the queue counts cancelled shells and compacts when
  they outnumber the live entries, bounding both memory and the
  pop-side skip work under cancel-heavy workloads.
* Dispatched :class:`Event` objects are recycled through a free list
  (:class:`EventPoolMixin`) instead of being garbage collected, so a
  steady-state run allocates almost no event objects.  Recycling is
  guarded by a reference-count check: an event whose reference escaped
  to user code (e.g. a caller keeping the handle to ``cancel()`` it
  later) is simply left to the garbage collector, which keeps the
  documented "``cancel()`` after dispatch is a no-op" contract safe.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Heap size below which compaction is never attempted (a rebuild of a
#: tiny heap costs more in constant factors than the shells it frees).
_COMPACT_MIN_HEAP = 64

#: Upper bound on pooled (recycled) events per queue; beyond this the
#: garbage collector takes over.  Bounds worst-case retained memory
#: after a burst of in-flight events.
_POOL_CAP = 4096


class Event:
    """A single scheduled callback.

    Attributes:
        time: Absolute cycle at which the event fires.
        priority: Lower values fire first within the same cycle.
            Components use priorities to model intra-cycle ordering
            (e.g. regulators replenish *before* ports retry).
        seq: Deterministic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked at dispatch.
        cancelled: When True the event is skipped at dispatch time.
        daemon: Daemon events (periodic background activity such as
            DRAM refresh or OS ticks) do not keep a simulation run
            alive: when only daemons remain, the run is considered
            drained.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "daemon", "_queue")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.daemon = daemon
        self._queue: Optional["EventPoolMixin"] = None

    def cancel(self) -> None:
        """Mark the event so it is ignored when popped.

        Cancellation is routed back to the owning queue so its live
        event accounting stays exact: a run whose only remaining
        foreground events are cancelled shells is treated as drained
        immediately, not when the shells happen to be popped.
        """
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._on_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, {state})"


def _measure_recycle_refs() -> int:
    """Reference count seen by :meth:`EventPoolMixin.recycle` for an
    event that nothing else references.

    Measured once at import instead of hard-coded, because the exact
    count (caller's local + callee parameter + ``getrefcount``'s own
    argument) is an implementation detail of the interpreter.
    """
    seen: List[int] = []

    class _Probe:
        def recycle(self, event: Event) -> None:
            seen.append(getrefcount(event))

    def _dispatch_site(queue: "_Probe") -> None:
        event = Event(0, 0, 0, None)
        queue.recycle(event)

    _dispatch_site(_Probe())
    return seen[0]


_RECYCLE_REFS = _measure_recycle_refs()


def _measure_batch_recycle_refs() -> int:
    """Reference count seen by :meth:`EventPoolMixin.recycle_batch` for
    a batch entry that nothing else references.

    The batch path holds different references than the per-event path
    (the batch list's slot plus the loop local, instead of the dispatch
    site's local), so it gets its own measured baseline.  The probe
    replicates the exact reference shape of the real loop: an event
    reachable only through the batch list, read into a loop local.
    """
    seen: List[int] = []

    class _Probe:
        def recycle_batch(self, events: List[Event], count: int) -> None:
            for i in range(count):
                event = events[i]
                seen.append(getrefcount(event))

    def _dispatch_site(queue: "_Probe") -> None:
        events = [Event(0, 0, 0, None)]
        queue.recycle_batch(events, 1)

    _dispatch_site(_Probe())
    return seen[0]


_BATCH_RECYCLE_REFS = _measure_batch_recycle_refs()


class EventPoolMixin:
    """Free-list :class:`Event` recycling shared by queue backends.

    ``_acquire`` replaces ``Event(...)`` on the push path; ``recycle``
    is called by the simulator after an event's callback has run.  An
    event is only pooled when the dispatch loop holds the *sole*
    remaining reference (checked via the interpreter's reference
    count), so user code that retained the handle -- to inspect it or
    call ``cancel()`` late -- can never observe its event object being
    reincarnated as a different scheduled callback.
    """

    _pool: List[Event]
    # Telemetry (cold-path only: the pool-hit branch of ``_acquire``
    # and the successful-recycle path run once per event and stay
    # untouched).  Class-level zeros; incremented as instance attrs.
    _pool_allocations = 0
    _recycle_leaks = 0

    # repro: hot -- pool fast path, once per push
    def _acquire(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        daemon: bool,
    ) -> Event:
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event.daemon = daemon
        else:
            event = Event(time, priority, seq, callback, daemon=daemon)
            self._pool_allocations += 1
        event._queue = self
        return event

    # repro: hot -- once per dispatched event
    def recycle(self, event: Event) -> None:
        """Return a dispatched event to the free list (if safe).

        Safe means: no reference beyond the dispatch loop's own
        survives, so the object cannot be reached -- let alone
        cancelled -- by stale user code after reuse.
        """
        if getrefcount(event) != _RECYCLE_REFS:
            self._recycle_leaks += 1
            return
        event.callback = None  # release the closure promptly
        event.cancelled = False
        event._queue = None
        pool = self._pool
        if len(pool) < _POOL_CAP:
            pool.append(event)

    # repro: hot -- once per dispatched cycle, one loop pass per event
    def recycle_batch(self, events: List[Event], count: int) -> None:
        """Return the dispatched prefix ``events[:count]`` to the free
        list and clear the whole batch buffer.

        The batched twin of :meth:`recycle`: one call per dispatched
        cycle instead of one per event.  Entries that were cancelled
        mid-batch were never dispatched and are left to the garbage
        collector (matching the per-event path, which drops cancelled
        shells at pop time without recycling them).  Entries past
        ``count`` were requeued by the caller and must only be
        released from the buffer, not pooled.

        Unlike :meth:`recycle`, no pool cap applies: a whole cycle's
        events arrive at once, and a dense cycle (tens of thousands of
        events under stress workloads) must flow back to the pool or
        the next cycle's pushes degrade to fresh allocations.  Memory
        stays bounded anyway -- every pooled event was resident in the
        queue moments earlier, so the pool's high-water mark (the
        largest cycle seen) never exceeds the queue's own.
        """
        pool = self._pool
        append = pool.append
        for i in range(count):
            event = events[i]
            if event.cancelled:
                continue
            if getrefcount(event) != _BATCH_RECYCLE_REFS:
                self._recycle_leaks += 1
                continue
            event.callback = None  # release the closure promptly
            event._queue = None
            append(event)
        del events[:]

    def _on_cancel(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class EventQueue(EventPoolMixin):
    """The reference scheduler backend: one deterministic binary heap.

    Kept as the oracle implementation (``REPRO_SCHED=heap``) that the
    calendar queue is differentially tested against; also the better
    fit for pathological workloads whose events are spread uniformly
    over a very long horizon.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, Event]] = []
        self._next_seq = 0
        self._live_foreground = 0
        self._cancelled_in_heap = 0
        self._pool = []
        self._compactions = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def live_foreground(self) -> int:
        """Pending non-daemon, non-cancelled events (exact count:
        cancellation via :meth:`Event.cancel` is accounted the moment
        it happens, not when the shell is popped)."""
        return self._live_foreground

    @property
    def cancelled_pending(self) -> int:
        """Cancelled shells still occupying heap slots."""
        return self._cancelled_in_heap

    # repro: hot
    def push(
        self,
        time: int,
        priority: int,
        callback: Callable[[], Any],
        daemon: bool = False,
    ) -> Event:
        """Create and enqueue an event; returns it so it can be cancelled."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = self._acquire(time, priority, seq, callback, daemon)
        heapq.heappush(self._heap, (time, priority, seq, event))
        if not daemon:
            self._live_foreground += 1
        return event

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _on_cancel(self, event: Event) -> None:
        """Account a cancellation of an event still in the heap."""
        if not event.daemon:
            self._live_foreground -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= _COMPACT_MIN_HEAP
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled shells and re-heapify the survivors.

        Runs when shells hold the majority of the heap; amortized cost
        is O(1) per cancellation because each compaction at least
        halves the heap.
        """
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _detach(self, event: Event) -> Event:
        """Release a popped event from queue bookkeeping."""
        if not event.daemon:
            self._live_foreground -= 1
        # A late cancel() on an already-dispatched event must not touch
        # the counters of events still queued.
        event._queue = None
        return event

    # ------------------------------------------------------------------
    # removal
    # ------------------------------------------------------------------
    # repro: hot
    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            return self._detach(event)
        raise SimulationError("pop() on an empty event queue")

    # repro: hot
    def pop_if_at(self, time: int) -> Optional[Event]:
        """Pop the next live event only if it fires at ``time``.

        The same-cycle fast path of :meth:`Simulator.run`: one heap
        inspection both answers "is there more work this cycle?" and
        delivers the event, instead of a ``peek_time`` purge scan
        followed by a ``pop`` re-scan.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            if entry[0] != time:
                return None
            heapq.heappop(heap)
            return self._detach(entry[3])
        return None

    # repro: hot
    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or None."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        if not heap:
            return None
        return heap[0][0]

    # repro: hot -- batch drain, once per dispatched cycle
    def pop_cycle_batch(
        self,
        time: int,
        out: List[Any],
        owner: object = None,
        limit: Optional[int] = None,
    ) -> int:
        """Drain the live events firing at ``time`` into ``out``.

        The batched dispatch protocol (see :meth:`Simulator.run`):
        one queue call delivers a whole cycle in dispatch order
        ``(priority, seq)``, already detached from queue accounting.
        ``owner`` (typically the kernel's batch cancel sink) is
        installed as each event's ``_queue`` so mid-batch ``cancel()``
        calls stay observable to the dispatch loop.

        ``limit`` caps how many entries one call delivers, so a dense
        cycle drains in cache-sized chunks; the undelivered remainder
        stays heap-resident, where later same-cycle pushes sort among
        it naturally -- chunking cannot change dispatch order.

        ``out`` receives the queue's own *entry tuples* (event last,
        priority third-from-last -- a shape both backends share), not
        bare events.  Deliberate: the dispatch loop replaces each slot
        with its event as it dispatches, so entry tuples die one per
        callback, interleaved with the callback's own pushes.  Freeing
        the whole cycle's tuples up front would zero-clamp the GC's
        nursery counter and the push burst that follows would trigger
        dozens of young-generation collections per cycle (measured at
        a ~2x throughput loss at stress populations).

        Returns:
            The number of *foreground* events appended (the caller's
            drain bookkeeping needs it; ``len(out)`` gives the total).
        """
        heap = self._heap
        heappop = heapq.heappop
        append = out.append
        fg = 0
        delivered = 0
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            if entry[0] != time:
                break
            if delivered == limit:
                break
            heappop(heap)
            event = entry[3]
            if not event.daemon:
                fg += 1
            event._queue = owner
            append(entry)
            delivered += 1
        self._live_foreground -= fg
        return fg

    def requeue_batch(self, time: int, entries: List[Any], start: int) -> None:
        """Restore the undispatched tail ``entries[start:]`` to the heap.

        Cold path: only reached when a batch is interrupted (a stop
        request, a same-cycle push that sorts before the remaining
        entries, or a mid-cycle drain).  The tail still holds the
        original entry tuples, which are re-pushed as-is, so a later
        pop dispatches them exactly where per-event dispatch would
        have.  Cancelled-in-batch shells are dropped (their accounting
        already left the queue when the batch was popped).
        """
        heap = self._heap
        for i in range(start, len(entries)):
            entry = entries[i]
            event = entry[3]
            if event.cancelled:
                event._queue = None
                continue
            event._queue = self
            heapq.heappush(heap, entry)
            if not event.daemon:
                self._live_foreground += 1

    def clear(self) -> None:
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live_foreground = 0
        self._cancelled_in_heap = 0

    def stats(self) -> dict:
        """Pull-style queue statistics (cold-path counters + state).

        The hot push/pop loops carry no instrumentation; derived
        figures (pool reuses) come from subtracting the cold-path
        allocation count from the total scheduled count.
        """
        return {
            "backend": "heap",
            "pending": len(self._heap),
            "live_foreground": self._live_foreground,
            "cancelled_pending": self._cancelled_in_heap,
            "events_scheduled": self._next_seq,
            "pool_allocations": self._pool_allocations,
            "pool_reuses": self._next_seq - self._pool_allocations,
            "pool_size": len(self._pool),
            "recycle_leaks": self._recycle_leaks,
            "compactions": self._compactions,
        }
