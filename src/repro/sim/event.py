"""Event primitives for the simulation kernel.

Events are ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing tie-breaker, which makes event
dispatch fully deterministic: two events scheduled for the same cycle
at the same priority always fire in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


class Event:
    """A single scheduled callback.

    Attributes:
        time: Absolute cycle at which the event fires.
        priority: Lower values fire first within the same cycle.
            Components use priorities to model intra-cycle ordering
            (e.g. regulators replenish *before* ports retry).
        seq: Deterministic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked at dispatch.
        cancelled: When True the event is skipped at dispatch time.
        daemon: Daemon events (periodic background activity such as
            DRAM refresh or OS ticks) do not keep a simulation run
            alive: when only daemons remain, the run is considered
            drained.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "daemon")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        """Mark the event so it is ignored when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, prio={self.priority}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._next_seq = 0
        self._live_foreground = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def live_foreground(self) -> int:
        """Pending non-daemon, non-cancelled events (approximate upper
        bound: cancellation is only accounted when events are popped or
        explicitly discarded via :meth:`Event.cancel` bookkeeping)."""
        return self._live_foreground

    def push(
        self,
        time: int,
        priority: int,
        callback: Callable[[], Any],
        daemon: bool = False,
    ) -> Event:
        """Create and enqueue an event; returns it so it can be cancelled."""
        event = Event(time, priority, self._next_seq, callback, daemon=daemon)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        if not daemon:
            self._live_foreground += 1
        return event

    def _account_removed(self, event: Event) -> None:
        if not event.daemon:
            self._live_foreground -= 1

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            self._account_removed(event)
            if not event.cancelled:
                return event
        raise SimulationError("pop() on an empty event queue")

    def peek_time(self) -> Optional[int]:
        """Return the firing time of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            self._account_removed(heapq.heappop(self._heap))
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        self._heap.clear()
        self._live_foreground = 0
