"""Steady-state fast-forward: analytic macro-stepping over regular
traffic regions.

The event-accurate kernel pays one arrival event, one arbitration
pass and one regulator denial per open-loop arrival while a stream is
throttled -- even though nothing *observable* changes until the
regulator's next replenish boundary.  On regulation-bound steady
streaming (experiment E2/E3-style saturation points) those blocked
cycles dominate the run.

The :class:`FastForwardEngine` detects such regions and advances the
clock many cycles at once.  A region is entered only when the entire
pending-event population is *analytically advanceable*:

* every foreground event is either a tracked open-loop arrival or a
  port retry kick (population counted exactly, so any in-flight
  memory work, CPU activity or control event declines the region);
* every port has zero outstanding transactions and every non-empty
  port is regulator-blocked (denied head, retry scheduled, throttle
  interval open);
* the DRAM controller is quiescent (empty queues, no scheduler event,
  banks settled -- :meth:`repro.dram.controller.DramController.ff_quiescent`);
* every blocking regulator can bound its own behaviour analytically
  via :meth:`repro.regulation.base.BandwidthRegulator.ff_horizon`
  (non-analytic policies return ``None`` and opt out).

The *safe horizon* of a region is the minimum of the regulator
horizons (token-refill crossing, window-bin edge, MemGuard tick, TDMA
slot start), the earliest remaining queued event (which covers retry
kicks and every daemon: DRAM refresh, monitor sample ticks, probe
sampler ticks, scheduled reconfigurations), and the run's ``until``
bound.  Within the horizon the engine *walks* each stream's
precomputed arrival vectors, creating and enqueuing the transactions
the per-event path would have created (same RNG draw order, same
block refills, same queue contents) and settling every counter the
skipped events would have touched: per-pass interconnect telemetry,
per-pass regulator denials, per-arrival submit/issue statistics.  The
regulators are then settled with ``ff_advance_bulk`` and the
remaining arrivals are rescheduled as ordinary events.

Equivalence argument (the detector enforces every premise):

* With all ports blocked and outstanding-free, each distinct arrival
  cycle triggers exactly one arbitration pass (the interconnect kick
  is deduplicated), which denies each non-empty port's head exactly
  once and re-arms its retry via a deduplicated no-op (the pending
  retry kick fires at or before the next opportunity, which is
  non-decreasing while no credit is granted).
* ``ff_horizon`` is a contract that a denied head *stays* denied up
  to the returned cycle, so no pass in the region can accept.
* Regulator clock state is path-independent (e.g. the token bucket's
  lazy refill composes), so one ``ff_advance_bulk`` at the region end
  reproduces the per-pass advances.
* Same-cycle ordering between a retry kick and an arrival is
  result-invariant (both only kick the deduplicated arbiter), so the
  fresh sequence numbers of rescheduled arrivals cannot change any
  outcome.

Result tables are therefore byte-identical to the event-accurate
kernel (enforced by ``tests/sim/test_fastforward.py`` and the CI
differential gate); only kernel telemetry -- events dispatched, idle
cycles -- legitimately differs, and the engine reports its own
activity through :meth:`Simulator.kernel_stats` (``ff_regions``,
``ff_cycles_skipped``, ``ff_arrivals``).

The engine is off by default and enabled with ``REPRO_FASTFORWARD=1``
(see :func:`repro.sim.kernel.resolve_fastforward`); the platform
builder attaches it automatically when the config contains open-loop
masters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.sim.kernel import Phase, Simulator
from repro.axi.txn import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.axi.interconnect import Interconnect
    from repro.axi.port import MasterPort
    from repro.dram.controller import DramController
    from repro.traffic.arrivals import OpenLoopMaster

#: Consecutive declines after which the engine stops probing for a
#: while.  Declines come in long runs (a CPU phase, a drain burst):
#: probing every cycle through one would cost a few percent of the
#: event-accurate run for nothing.
DECLINE_STREAK = 4

#: Probe calls skipped after the first decline streak.  Small against
#: region length (hundreds to thousands of cycles), so re-engagement
#: after a refill burst is delayed imperceptibly; deterministic, so
#: runs stay reproducible.
DECLINE_BACKOFF = 16

#: Backoff ceiling.  Consecutive streak hits double the skip span up
#: to this bound, so a run the engine never helps (irregular traffic,
#: a long CPU phase) converges to a handful of full probes per
#: thousand dispatch iterations; any successful region resets the
#: span to DECLINE_BACKOFF.
DECLINE_BACKOFF_MAX = 256


class FastForwardEngine:
    """Macro-steps the clock across steady blocked-stream regions.

    Args:
        sim: The simulation kernel (the engine attaches itself).
        interconnect: The fabric switch (its port list is the full
            port population the detector audits).
        dram: The memory controller (quiescence gate).
        streams: The open-loop masters whose arrivals may be walked
            analytically; tracking of their pending arrival event is
            enabled here.
    """

    def __init__(
        self,
        sim: Simulator,
        interconnect: "Interconnect",
        dram: "DramController",
        streams: List["OpenLoopMaster"],
    ) -> None:
        self.sim = sim
        self.interconnect = interconnect
        self.dram = dram
        self.streams = list(streams)
        for stream in self.streams:
            stream._ff_track = True
        #: A region needs at least one pending stream, and a pending
        #: stream's (necessarily non-empty) port must be regulator-
        #: blocked -- so with no regulated stream port the engine can
        #: never engage, and the per-cycle probe reduces to one check.
        self._capable = any(
            stream.port.regulator is not None for stream in self.streams
        )
        #: Regions successfully macro-stepped.
        self.regions = 0
        #: Cycles the clock advanced inside macro-steps.
        self.cycles_skipped = 0
        #: Arrivals emitted analytically (events never dispatched).
        self.arrivals_emitted = 0
        #: Decline-backoff state (see DECLINE_STREAK/DECLINE_BACKOFF).
        self._streak = 0
        self._skip = 0
        self._backoff = DECLINE_BACKOFF
        sim.attach_fastforward(self)

    # ------------------------------------------------------------------
    # detection + macro-step
    # ------------------------------------------------------------------
    # repro: hot -- consulted once per dispatch-loop iteration
    def attempt(self, next_time: int, until: Optional[int]) -> Optional[int]:
        """Try to macro-step from ``next_time``; None = declined.

        Called by the dispatch loops between cycles, with ``next_time``
        the queue's peeked next event time.  On success the clock has
        been advanced and the return value is the idle-cycle count the
        batched loop would have accounted over the region (skipped
        span minus dispatched cycles).

        This wrapper keeps the per-iteration cost bounded on runs the
        engine cannot help: configs with no regulated stream port
        decline in one check, and a streak of full-detector declines
        (irregular traffic, a CPU phase, a drain burst) backs probing
        off for a fixed number of calls.  Skipping a probe is always
        safe -- the engine is opportunistic -- and the schedule of
        probes is deterministic, so results stay reproducible.
        """
        if not self._capable:
            return None
        if next_time <= self.sim._now:
            # Mid-cycle re-peek (chunked batch drain): never enter,
            # and never count against the decline streak.
            return None
        if self._skip:
            self._skip -= 1
            return None
        result = self._attempt(next_time, until)
        if result is None:
            self._streak += 1
            if self._streak >= DECLINE_STREAK:
                self._streak = 0
                self._skip = self._backoff
                if self._backoff < DECLINE_BACKOFF_MAX:
                    self._backoff *= 2
        else:
            self._streak = 0
            self._backoff = DECLINE_BACKOFF
        return result

    def _attempt(self, next_time: int, until: Optional[int]) -> Optional[int]:
        """The full detector + macro-step; None = declined.

        All checks with side effects run only after every pure
        structural check has passed, and the side effects (regulator
        clock advances) exactly pre-play the arbitration pass the
        per-event path is already committed to running at
        ``next_time``.
        """
        sim = self.sim
        ic = self.interconnect
        if ic._arb_scheduled_at is not None or ic.config.split_addr_channels:
            return None
        if ic._next_free[None] > next_time:
            return None

        # The tracked streams' pending arrivals; the region starts at
        # the earliest of them, which must be the very next event.
        streams = self.streams
        pend: List[Tuple[int, int]] = []
        t_first = None
        for index, stream in enumerate(streams):
            event = stream._pending_arrival
            if event is None or event.cancelled:
                continue
            pend.append((event.time, index))
            if t_first is None or event.time < t_first:
                t_first = event.time
        if t_first != next_time:
            return None

        # Full port-population audit: nothing in flight anywhere, and
        # every non-empty port is regulator-blocked with a live retry.
        expected = len(pend)
        blocked: List["MasterPort"] = []
        for port in ic.ports:
            if port._outstanding:
                return None
            expected += port._retry_events_live
            if not port.queue_depth:
                continue
            if port.config.split_channels:
                return None
            if (
                port.regulator is None
                or port._throttle_since is None
                or port._retry_scheduled_at is None
                or port._retry_scheduled_at <= next_time
            ):
                return None
            blocked.append(port)
        # An arrival into an *empty* port could be accepted at the
        # pass; only already-blocked ports may receive walked arrivals.
        for _time, index in pend:
            if not streams[index].port.queue_depth:
                return None
        # Exact population match: pending arrivals + retry kicks must
        # be the *entire* foreground; anything else declines.
        queue = sim._queue
        if queue.live_foreground != expected:
            return None
        if not self.dram.ff_quiescent(next_time):
            return None

        # Regulator checks (these may advance lazy regulator clocks to
        # next_time; the pass at next_time performs the same advances,
        # and they are idempotent, so a late decline is still exact).
        reg_bound = None
        for port in blocked:
            regulator = port.regulator
            horizon = regulator.ff_horizon(next_time)
            if horizon is None or horizon <= next_time:
                return None
            if reg_bound is None or horizon < reg_bound:
                reg_bound = horizon
            head = port._queues[False][0]
            if regulator.may_issue(head, next_time):
                return None
            opportunity = regulator.next_opportunity(head, next_time)
            if opportunity < next_time + 1:
                opportunity = next_time + 1
            if port._retry_scheduled_at > opportunity:
                # The pass would re-arm a second, earlier retry; the
                # region's event population would grow mid-flight.
                return None

        # Commit point: cancel the pending arrivals so the queue peek
        # exposes the earliest *other* event (retry kicks, daemons --
        # refresh, monitor/probe ticks, reconfigurations), which
        # together with the regulator horizons and the run bound
        # defines the safe horizon.
        for _time, index in pend:
            stream = streams[index]
            stream._pending_arrival.cancel()
            stream._pending_arrival = None
        bound = reg_bound
        peek = queue.peek_time()
        if peek is not None and peek < bound:
            bound = peek
        if until is not None and until + 1 < bound:
            bound = until + 1
        if bound <= next_time:
            # Boundary immediately ahead: restore and dispatch
            # event-accurately.
            pend.sort()
            for time, index in pend:
                stream = streams[index]
                stream._pending_arrival = sim.schedule_at(
                    time, stream._arrive, priority=Phase.MASTER
                )
            return None

        # ---- the walk -------------------------------------------------
        now_before = sim._now
        emitted = [0] * len(streams)
        remaining: List[Tuple[int, int]] = []
        if len(pend) == 1:
            index = pend[0][1]
            count, t_last, nxt = self._walk_single(streams[index], bound)
            emitted[index] = count
            arrival_cycles = count  # gaps are >= 1: cycles are distinct
            total = count
            if nxt is not None:
                remaining.append((nxt, index))
        else:
            total, t_last, arrival_cycles = self._walk_merged(
                pend, bound, emitted, remaining
            )

        # ---- settlement ----------------------------------------------
        sim._now = t_last
        for index, count in enumerate(emitted):
            if not count:
                continue
            stream = streams[index]
            stream._arrived += count
            nbytes = stream.config.burst_len * stream.config.bytes_per_beat
            # Same first-creation order Master.issue uses.
            counter = stream.stats.counter
            counter("issued").add(count)
            counter("issued_bytes").add(count * nbytes)
            port = stream.port
            port._stat_submitted.add(count)
            port._tm_issued.inc(count)
        # One arbitration pass per distinct arrival cycle, each
        # denying every blocked port's head exactly once.
        ic._tm_passes.inc(arrival_cycles)
        for port in blocked:
            port._stat_denials.add(arrival_cycles)
            port._tm_denials.inc(arrival_cycles)
            port.regulator.ff_advance_bulk(t_last)
        remaining.sort()
        for time, index in remaining:
            stream = streams[index]
            stream._pending_arrival = sim.schedule_at(
                time, stream._arrive, priority=Phase.MASTER
            )
        self.regions += 1
        self.cycles_skipped += t_last - now_before
        self.arrivals_emitted += total
        # What the batched loop's idle accounting would have summed:
        # the advanced span minus the cycles that dispatched something.
        return (t_last - now_before) - arrival_cycles

    # ------------------------------------------------------------------
    # walks
    # ------------------------------------------------------------------
    # repro: hot -- one iteration per walked arrival
    def _walk_single(
        self, stream: "OpenLoopMaster", bound: int
    ) -> Tuple[int, int, Optional[int]]:
        """Walk one stream's arrivals strictly below ``bound``.

        Returns ``(count, t_last, next_time)`` where ``next_time`` is
        the first unemitted arrival (None when the stream ran out).
        Mirrors ``OpenLoopMaster._arrive`` exactly: indexes the
        precomputed vectors, refills blocks at exhaustion (same RNG
        draw order), and leaves the cursor mid-block where the bound
        cuts.
        """
        cfg = stream.config
        port = stream.port
        queue = port._queues[False]
        name = stream.name
        burst_len = cfg.burst_len
        bytes_per_beat = cfg.bytes_per_beat
        qos_stamp = port.config.qos
        count = 0
        t_last = -1
        while True:
            times = stream._times
            addrs = stream._addrs
            writes = stream._writes
            pos = stream._pos
            n = len(times)
            while pos < n:
                t = times[pos]
                if t >= bound:
                    stream._pos = pos
                    return count, t_last, t
                txn = Transaction(
                    master=name,
                    is_write=writes[pos],
                    addr=addrs[pos],
                    burst_len=burst_len,
                    bytes_per_beat=bytes_per_beat,
                    qos=0,
                    created=t,
                )
                if qos_stamp:
                    txn.qos = qos_stamp
                # mark_issued(t) without the freshness assertion: the
                # transaction was constructed two lines up.
                txn.issued = t
                queue.append(txn)
                t_last = t
                count += 1
                pos += 1
            stream._pos = pos
            if not stream._refill():
                return count, t_last, None

    # repro: hot -- one iteration per merged-stream arrival
    def _walk_merged(
        self,
        pend: List[Tuple[int, int]],
        bound: int,
        emitted: List[int],
        remaining: List[Tuple[int, int]],
    ) -> Tuple[int, int, int]:
        """Min-merge walk over several concurrent streams.

        Emits in ``(time, stream index)`` order -- any deterministic
        tie-break is result-equivalent, since tied arrivals land in
        different ports and only kick the deduplicated arbiter.
        Returns ``(total, t_last, distinct arrival cycles)``.
        """
        streams = self.streams
        heads = sorted(pend)
        total = 0
        t_last = -1
        arrival_cycles = 0
        while heads:
            best = 0
            for i in range(1, len(heads)):
                if heads[i] < heads[best]:
                    best = i
            t, index = heads[best]
            if t >= bound:
                break
            stream = streams[index]
            cfg = stream.config
            port = stream.port
            pos = stream._pos
            txn = Transaction(
                master=stream.name,
                is_write=stream._writes[pos],
                addr=stream._addrs[pos],
                burst_len=cfg.burst_len,
                bytes_per_beat=cfg.bytes_per_beat,
                qos=0,
                created=t,
            )
            qos = port.config.qos
            if qos:
                txn.qos = qos
            txn.issued = t
            port._queues[False].append(txn)
            emitted[index] += 1
            total += 1
            if t != t_last:
                arrival_cycles += 1
                t_last = t
            pos += 1
            stream._pos = pos
            if pos < len(stream._times):
                heads[best] = (stream._times[pos], index)
            elif stream._refill():
                heads[best] = (stream._times[0], index)
            else:
                heads.pop(best)
        remaining.extend(heads)
        return total, t_last, arrival_cycles
