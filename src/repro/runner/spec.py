"""Serializable run descriptions with stable content hashes.

A :class:`RunSpec` captures everything that determines a run's outcome
-- the declarative :class:`~repro.soc.platform.PlatformConfig`, the
horizon, the stop condition, and any passive fine-grained monitor --
and nothing that does not (no live objects).  Because the simulator is
deterministic, two specs with equal content hashes produce identical
results, which is what makes the hash a safe cache key.

The hash is computed over the canonical JSON encoding of the spec
(sorted keys, no whitespace), so it is stable across processes,
Python versions with different ``hash()`` salts, and field ordering.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.sim.config import ClockSpec
from repro.axi.interconnect import InterconnectConfig
from repro.dram.address_map import AddressMap
from repro.dram.controller import DramConfig
from repro.dram.timing import DramTiming
from repro.regulation.factory import RegulatorSpec
from repro.soc.platform import MasterSpec, PlatformConfig

#: Bump when the spec encoding or the simulator's observable behaviour
#: changes incompatibly; it is folded into every content hash so stale
#: cache entries can never be mistaken for current results.
SPEC_SCHEMA = 1

#: Default horizon, mirrored from
#: :data:`repro.soc.experiment.DEFAULT_MAX_CYCLES` (not imported to
#: keep this module's import graph config-only).
_DEFAULT_MAX_CYCLES = 4_000_000


def config_to_dict(config: PlatformConfig) -> Dict[str, Any]:
    """Encode a :class:`PlatformConfig` as plain JSON-able data."""
    return asdict(config)


def config_from_dict(data: Dict[str, Any]) -> PlatformConfig:
    """Rebuild a :class:`PlatformConfig` from :func:`config_to_dict` output."""
    try:
        dram = data["dram"]
        masters = []
        for m in data["masters"]:
            kwargs = dict(m)
            regulator = kwargs.pop("regulator", None)
            if regulator is not None:
                regulator = RegulatorSpec(**regulator)
            masters.append(MasterSpec(regulator=regulator, **kwargs))
        return PlatformConfig(
            masters=tuple(masters),
            clock=ClockSpec(**data["clock"]),
            interconnect=InterconnectConfig(**data["interconnect"]),
            dram=DramConfig(
                timing=DramTiming(**dram["timing"]),
                address_map=AddressMap(**dram["address_map"]),
                **{
                    k: v
                    for k, v in dram.items()
                    if k not in ("timing", "address_map")
                },
            ),
            seed=data["seed"],
            trace_masters=tuple(data.get("trace_masters", ())),
        )
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed platform config data: {exc}") from exc


@dataclass(frozen=True)
class RunSpec:
    """A complete, serializable description of one simulation run.

    Attributes:
        config: The declarative platform description.
        max_cycles: Simulation horizon.
        stop_when_critical_done: End the run once every critical
            master finished (matches
            :meth:`repro.soc.platform.Platform.run`).
        monitor_master: Optionally attach a passive
            :class:`~repro.monitor.window.WindowedBandwidthMonitor`
            to this master's port; its per-bin byte counts land in
            :attr:`RunSummary.monitor_bins`.
        monitor_bin_cycles: Bin width of that monitor.
    """

    config: PlatformConfig
    max_cycles: int = _DEFAULT_MAX_CYCLES
    stop_when_critical_done: bool = True
    monitor_master: Optional[str] = None
    monitor_bin_cycles: int = 1024

    def __post_init__(self) -> None:
        if self.max_cycles < 1:
            raise ConfigError(f"max_cycles must be >= 1, got {self.max_cycles}")
        if self.monitor_bin_cycles < 1:
            raise ConfigError(
                f"monitor_bin_cycles must be >= 1, got {self.monitor_bin_cycles}"
            )
        if self.monitor_master is not None:
            names = {m.name for m in self.config.masters}
            if self.monitor_master not in names:
                raise ConfigError(
                    f"monitor_master {self.monitor_master!r} not in {sorted(names)}"
                )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data encoding (JSON-able, reversible)."""
        return {
            "schema": SPEC_SCHEMA,
            "config": config_to_dict(self.config),
            "max_cycles": self.max_cycles,
            "stop_when_critical_done": self.stop_when_critical_done,
            "monitor_master": self.monitor_master,
            "monitor_bin_cycles": self.monitor_bin_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        if data.get("schema") != SPEC_SCHEMA:
            raise ConfigError(
                f"unsupported spec schema {data.get('schema')!r} "
                f"(expected {SPEC_SCHEMA})"
            )
        return cls(
            config=config_from_dict(data["config"]),
            max_cycles=data["max_cycles"],
            stop_when_critical_done=data["stop_when_critical_done"],
            monitor_master=data.get("monitor_master"),
            monitor_bin_cycles=data.get("monitor_bin_cycles", 1024),
        )

    def content_hash(self) -> str:
        """Stable hex digest identifying this run's full input.

        Equal hashes imply identical simulation outcomes (the engine
        is deterministic), so the hash doubles as the result-cache
        key and the dedup key for repeated specs in one batch.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
