"""Parallel experiment execution with content-addressed caching.

The benchmark suite is dominated by *independent* cycle-level runs:
sweeps over regulator settings, solo baselines, scenario grids.  This
package turns such a workload from a serial loop into a pipeline:

* :class:`RunSpec` -- a serializable description of one run (platform
  config + horizon + stop condition) with a stable content hash;
* :class:`RunSummary` -- the plain-data outcome of a run, the part of
  :class:`~repro.soc.experiment.PlatformResult` that can cross process
  boundaries and round-trip through JSON;
* :class:`ResultCache` -- an on-disk store keyed by spec hash, so a
  solo baseline shared by many figures is simulated exactly once;
* :class:`ParallelRunner` -- fans specs out over a process pool with
  deterministic result ordering and graceful in-process fallback.

Environment knobs: ``REPRO_JOBS`` overrides the worker count,
``REPRO_CACHE`` selects the cache directory (``off`` disables it).

Example::

    from repro.runner import ParallelRunner, ResultCache, RunSpec
    from repro.soc.presets import zcu102

    specs = [RunSpec(config=zcu102(num_accels=n)) for n in range(5)]
    runner = ParallelRunner(cache=ResultCache.from_env())
    summaries = runner.run(specs)       # order matches specs
"""

from repro.runner.spec import RunSpec, config_from_dict, config_to_dict
from repro.runner.summary import RunSummary
from repro.runner.cache import ResultCache
from repro.runner.parallel import ParallelRunner, RunnerStats, execute_spec

__all__ = [
    "RunSpec",
    "RunSummary",
    "ResultCache",
    "ParallelRunner",
    "RunnerStats",
    "execute_spec",
    "config_to_dict",
    "config_from_dict",
]
