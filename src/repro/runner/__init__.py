"""Parallel experiment execution with content-addressed caching.

The benchmark suite is dominated by *independent* cycle-level runs:
sweeps over regulator settings, solo baselines, scenario grids.  This
package turns such a workload from a serial loop into a pipeline:

* :class:`RunSpec` -- a serializable description of one run (platform
  config + horizon + stop condition) with a stable content hash;
* :class:`RunSummary` -- the plain-data outcome of a run, the part of
  :class:`~repro.soc.experiment.PlatformResult` that can cross process
  boundaries and round-trip through JSON;
* :class:`ResultCache` -- an on-disk store keyed by spec hash, so a
  solo baseline shared by many figures is simulated exactly once;
* :class:`ParallelRunner` -- fans specs out over a persistent
  :class:`WorkerPool` with deterministic result ordering, graceful
  in-process fallback, and cross-process single-flight claims;
* :mod:`repro.runner.serve` -- a local batch front-end
  (``repro serve``) that coalesces identical in-flight specs across
  many clients before they ever reach the pool.

Environment knobs: ``REPRO_JOBS`` overrides the worker count
(``auto`` = affinity/cgroup-aware CPU count), ``REPRO_CACHE`` selects
the cache directory (``off`` disables it), ``REPRO_CLAIM_TTL`` tunes
single-flight claim expiry.

Example::

    from repro.runner import ParallelRunner, ResultCache, RunSpec
    from repro.soc.presets import zcu102

    specs = [RunSpec(config=zcu102(num_accels=n)) for n in range(5)]
    runner = ParallelRunner(cache=ResultCache.from_env())
    summaries = runner.run(specs)       # order matches specs
"""

from repro.runner.spec import RunSpec, config_from_dict, config_to_dict
from repro.runner.summary import RunSummary
from repro.runner.cache import CacheClaim, ResultCache
from repro.runner.pool import PoolUnavailable, WorkerPool
from repro.runner.parallel import (
    ParallelRunner,
    RunnerStats,
    default_workers,
    execute_spec,
    resolve_workers,
)

__all__ = [
    "RunSpec",
    "RunSummary",
    "ResultCache",
    "CacheClaim",
    "ParallelRunner",
    "RunnerStats",
    "WorkerPool",
    "PoolUnavailable",
    "execute_spec",
    "default_workers",
    "resolve_workers",
    "config_to_dict",
    "config_from_dict",
]
