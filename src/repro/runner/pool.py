"""Persistent work-stealing process pool for spec execution.

:class:`~repro.runner.parallel.ParallelRunner` used to build a fresh
``ProcessPoolExecutor`` per batch and pre-chunk the work list into one
contiguous slice per worker.  Both choices cost throughput at scale:
pool spin-up is paid on every batch, and a single straggler spec
serializes its whole pre-assigned chunk while other workers sit idle.

:class:`WorkerPool` fixes both.  It owns one executor that *outlives*
batches (``map`` can be called any number of times; workers are
spawned once), and it dispatches one future per item from the
executor's shared call queue, so an idle worker always steals the next
outstanding item no matter how long its neighbours' items run.
Contiguous chunking remains available as an opt-in (``chunk_size``)
for sweeps of many tiny specs where the per-future round-trip
dominates.

Ordering is an invariant, not an accident: ``map`` returns results in
*submission order* regardless of completion order, which is what keeps
pool execution byte-identical to the serial loop and keeps per-item
telemetry (e.g. ``RunnerStats.spec_seconds``) attributed to the right
spec.

Failure handling distinguishes two cases:

* the pool never produced a result (restricted container, seccomp'd
  ``fork``, missing ``/dev/shm``): :class:`PoolUnavailable` is raised
  and the caller falls back to in-process execution;
* a *proven* pool breaks mid-batch (a worker crashed): completed
  results are kept and the unfinished items are re-executed in the
  parent process, so a crash costs time, never results.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.telemetry.log import get_logger

_log = get_logger(__name__)

#: One worker task: maps an item (typically a ``RunSpec``) to a result.
WorkerFn = Callable[[Any], Any]


class PoolUnavailable(Exception):
    """Process pools do not work here; execute in-process instead.

    Raised when the executor cannot start or breaks before producing a
    single result.  The ``__cause__`` carries the original error so
    callers can report *why* (``RunnerStats.fallback_reason``).
    """


def _run_chunk(worker_fn: WorkerFn, items: List[Any]) -> List[Any]:
    """Pool-worker entry point (module-level so it pickles)."""
    return [worker_fn(item) for item in items]


class WorkerPool:
    """A persistent process pool with submission-order result delivery.

    Args:
        workers: Maximum worker processes (the executor spawns them on
            demand, so oversizing costs nothing until used).
        worker_fn: Module-level callable applied to each item in a
            worker process; must be picklable by qualified name.
        chunk_size: ``None``/1 dispatches one future per item (shared
            work queue; stragglers cannot serialize a batch).  Larger
            values submit contiguous chunks of that many items --
            opt-in amortization for many-tiny-item sweeps.
    """

    def __init__(
        self,
        workers: int,
        worker_fn: WorkerFn,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self._worker_fn = worker_fn
        self._executor: Optional[Any] = None
        #: The pool produced at least one result in its lifetime; a
        #: later breakage is then a worker crash (recover in-parent),
        #: not an environment that cannot run pools at all.
        self._proven = False
        #: ``map`` calls completed over the pool's lifetime.
        self.batches = 0
        #: Items re-executed in the parent after a worker crash.
        self.recovered = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether worker processes are currently retained."""
        return self._executor is not None

    def _ensure_executor(self) -> Any:
        if self._executor is None:
            try:
                from concurrent.futures import ProcessPoolExecutor
            except ImportError as exc:  # pragma: no cover - stdlib present
                raise PoolUnavailable() from exc
            try:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except (OSError, PermissionError, ValueError) as exc:
                raise PoolUnavailable() from exc
        return self._executor

    def _discard_executor(self) -> None:
        executor = self._executor
        self._executor = None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    def close(self) -> None:
        """Shut the workers down; the next ``map`` restarts them."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def map(self, items: Sequence[Any]) -> List[Any]:
        """Apply ``worker_fn`` to every item; results in item order.

        Raises:
            PoolUnavailable: The pool produced no result, ever -- the
                caller should run in-process.  Any exception raised
                *by* ``worker_fn`` inside a worker propagates as-is,
                exactly as the serial loop would raise it.
        """
        from concurrent.futures.process import BrokenProcessPool

        if not items:
            return []
        executor = self._ensure_executor()
        size = self.chunk_size or 1
        chunks = [
            list(items[i : i + size]) for i in range(0, len(items), size)
        ]
        futures: List[Optional[Any]] = []
        broken: Optional[BaseException] = None
        for chunk in chunks:
            if broken is None:
                try:
                    futures.append(
                        executor.submit(_run_chunk, self._worker_fn, chunk)
                    )
                except (OSError, RuntimeError) as exc:
                    broken = exc
                    futures.append(None)
            else:
                futures.append(None)

        results: List[Optional[List[Any]]] = [None] * len(chunks)
        failed: List[int] = []
        for i, future in enumerate(futures):
            if future is None:
                failed.append(i)
                continue
            try:
                results[i] = future.result()
                self._proven = True
            except (OSError, BrokenProcessPool) as exc:
                if broken is None:
                    broken = exc
                failed.append(i)

        if broken is not None:
            # Workers are gone (or the queue is wedged); drop the
            # executor so the next batch starts a fresh one.
            self._discard_executor()
        if failed and not self._proven:
            raise PoolUnavailable() from broken
        for i in failed:
            # Worker crash on a proven pool: re-execute the unfinished
            # items in the parent so the batch still completes.
            results[i] = _run_chunk(self._worker_fn, chunks[i])
            self.recovered += len(chunks[i])
        if failed:
            _log.warning(
                "worker pool broke mid-batch (%s); re-executed %d item(s) "
                "in the parent process",
                broken,
                sum(len(chunks[i]) for i in failed),
            )
        self.batches += 1
        return [out for chunk_out in results for out in chunk_out or []]
