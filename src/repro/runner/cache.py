"""Content-addressed on-disk cache of run results.

Every slowdown figure in the benchmark suite re-runs the same solo
baselines; across the 21 experiments that is hours of duplicated
simulation.  The cache stores one JSON file per
:meth:`~repro.runner.spec.RunSpec.content_hash` under a cache root
(``.repro_cache/`` by default), so any run is simulated at most once
per machine -- across processes, pytest sessions, and figures.

Layout: entries are **sharded** by the first two hex characters of the
content hash (``<root>/<hh>/<hash>.json``, 256 directories), so a
store holding hundreds of thousands of entries never produces a
directory large enough for lookups, temp-file creation, or ``ls`` to
crawl.  Entries written by older versions directly under the root are
still found and are migrated into their shard on first read.

Single-flight: concurrent sweeps deduplicate *in-flight* work through
claim files (``<hash>.claim``, created with ``O_EXCL`` next to the
entry).  A runner that wins the claim computes and publishes the
entry; any other process that loses the claim can :meth:`wait` for
the entry instead of re-simulating.  Claims expire after a TTL so a
crashed claimant can only ever cost time, never wedge a sweep.

Robustness rules:

* every entry is versioned by a schema tag and validated against the
  spec hash on read; anything corrupt, truncated, or stale is
  *discarded and recomputed*, never trusted and never fatal;
* writes are atomic (temp file + ``os.replace``), so a crashed or
  parallel writer can not leave a torn entry behind;
* the whole mechanism turns off with ``REPRO_CACHE=off``.
"""

from __future__ import annotations

# repro: config-layer -- this module resolves environment knobs
import json
import os
import tempfile
import time
from typing import Optional

from repro.errors import CacheError
from repro.runner.spec import RunSpec
from repro.runner.summary import RunSummary
from repro.telemetry.log import get_logger

_log = get_logger(__name__)

#: Bump when the cache payload layout changes; old entries are then
#: silently treated as misses and rewritten.
CACHE_SCHEMA = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Hex characters of the content hash used as the shard directory
#: name: 2 -> 256 shards.
SHARD_CHARS = 2

#: Claims older than this are considered abandoned and may be broken
#: by any process (seconds); override per-cache or with
#: ``REPRO_CLAIM_TTL``.
DEFAULT_CLAIM_TTL = 600.0

#: Environment override for the claim TTL (seconds, float).
CLAIM_TTL_ENV = "REPRO_CLAIM_TTL"


class CacheClaim:
    """Exclusive right to compute one spec, backed by an O_EXCL file.

    Returned by :meth:`ResultCache.try_claim`; call :meth:`release`
    once the entry is published (or the computation abandoned) so
    waiting processes stop polling immediately instead of waiting out
    the TTL.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the claim (idempotent, never raises)."""
        if self._released:
            return
        self._released = True
        try:
            os.unlink(self.path)
        except OSError:
            pass


class ResultCache:
    """A sharded directory of ``<hh>/<spec-hash>.json`` result files.

    Args:
        root: Cache directory; created lazily on the first write.
        claim_ttl: Seconds before an unreleased claim file counts as
            abandoned (default :data:`DEFAULT_CLAIM_TTL`, overridable
            with ``REPRO_CLAIM_TTL``).
    """

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        claim_ttl: Optional[float] = None,
    ) -> None:
        self.root = root
        if claim_ttl is None:
            claim_ttl = _claim_ttl_from_env()
        self.claim_ttl = claim_ttl
        #: Lifetime lookup accounting (cumulative across batches; a
        #: poisoned entry counts as both ``poisoned`` and ``misses``
        #: because the caller recomputes it).
        self.hits = 0
        self.misses = 0
        self.poisoned = 0

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """Build a cache honouring the ``REPRO_CACHE`` variable.

        Returns:
            ``None`` when caching is disabled (``REPRO_CACHE`` set to
            ``off``, ``0``, ``no``, or ``false``); otherwise a cache
            rooted at ``$REPRO_CACHE`` (default ``.repro_cache/``).
        """
        value = os.environ.get("REPRO_CACHE", "").strip()
        if value.lower() in ("off", "0", "no", "false"):
            return None
        return cls(value or DEFAULT_CACHE_DIR)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def shard_for(self, digest: str) -> str:
        """Shard directory holding ``digest``'s entry."""
        return os.path.join(self.root, digest[:SHARD_CHARS])

    def path_for(self, spec: RunSpec) -> str:
        """Filesystem path of the entry for ``spec``."""
        digest = spec.content_hash()
        return os.path.join(self.shard_for(digest), f"{digest}.json")

    def claim_path_for(self, spec: RunSpec) -> str:
        """Filesystem path of the claim file for ``spec``."""
        digest = spec.content_hash()
        return os.path.join(self.shard_for(digest), f"{digest}.claim")

    def _legacy_path_for(self, digest: str) -> str:
        """Pre-sharding flat location (``<root>/<hash>.json``)."""
        return os.path.join(self.root, f"{digest}.json")

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[RunSummary]:
        """Return the cached summary for ``spec``, or None on a miss.

        A poisoned entry (unreadable JSON, wrong schema, hash
        mismatch, malformed payload) is deleted so the caller simply
        recomputes; corruption can cost time, never correctness.
        """
        summary = self._lookup(spec)
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def _lookup(self, spec: RunSpec) -> Optional[RunSummary]:
        """Uncounted lookup shared by :meth:`get` and :meth:`wait`."""
        digest = spec.content_hash()
        path = os.path.join(self.shard_for(digest), f"{digest}.json")
        try:
            return self._load(path, digest)
        except FileNotFoundError:
            pass
        except Exception as exc:
            self.poisoned += 1
            _log.warning("discarding poisoned cache entry %s (%s)", path, exc)
            self._discard(path)
            return None
        legacy = self._legacy_path_for(digest)
        try:
            summary = self._load(legacy, digest)
        except FileNotFoundError:
            return None
        except Exception as exc:
            self.poisoned += 1
            _log.warning(
                "discarding poisoned cache entry %s (%s)", legacy, exc
            )
            self._discard(legacy)
            return None
        self._migrate(legacy, path)
        return summary

    @staticmethod
    def _load(path: str, digest: str) -> RunSummary:
        """Read and validate one entry (raises on anything suspect)."""
        with open(path) as fh:
            payload = json.load(fh)
        if payload["schema"] != CACHE_SCHEMA:
            raise CacheError(f"schema {payload['schema']!r}")
        if payload["spec_hash"] != digest:
            raise CacheError("spec hash mismatch")
        return RunSummary.from_dict(payload["summary"])

    def _migrate(self, legacy: str, path: str) -> None:
        """Move a flat pre-sharding entry into its shard (best-effort)."""
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            os.replace(legacy, path)
        except OSError:  # pragma: no cover - racing migrators
            pass

    def put(self, spec: RunSpec, summary: RunSummary) -> str:
        """Atomically store ``summary`` under ``spec``'s hash."""
        path = self.path_for(spec)
        shard = os.path.dirname(path)
        os.makedirs(shard, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": spec.content_hash(),
            "summary": summary.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # single-flight claims
    # ------------------------------------------------------------------
    def try_claim(self, spec: RunSpec) -> Optional[CacheClaim]:
        """Claim the exclusive right to compute ``spec``.

        Returns:
            A :class:`CacheClaim` when this process won (compute, then
            :meth:`put` and release); ``None`` when another process
            holds a *fresh* claim -- :meth:`wait` for its entry
            instead.  A stale claim (older than the TTL) is broken and
            re-contested.
        """
        path = self.claim_path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._claim_stale(path):
                    _log.warning("breaking stale cache claim %s", path)
                    self._discard(path)
                    continue
                return None
            except OSError:  # pragma: no cover - unwritable cache dir
                # A cache that cannot hold claims still caches; the
                # caller simply computes without single-flight.
                return CacheClaim(path)
            with os.fdopen(fd, "w") as fh:
                json.dump({"pid": os.getpid()}, fh)
            return CacheClaim(path)
        return None

    def _claim_stale(self, path: str) -> bool:
        try:
            age = time.time() - os.stat(path).st_mtime  # repro: allow[DET001]
        except OSError:
            return False  # vanished: released, not stale
        return age > self.claim_ttl

    def wait(
        self,
        spec: RunSpec,
        timeout: float = 600.0,
        poll_seconds: float = 0.05,
    ) -> Optional[RunSummary]:
        """Wait for another process's in-flight entry for ``spec``.

        Polls until the entry appears, the claim disappears or goes
        stale (claimant finished without publishing, or crashed), or
        ``timeout`` elapses.

        Returns:
            The published summary, or ``None`` when the caller should
            compute the spec itself.
        """
        claim = self.claim_path_for(spec)
        deadline = time.perf_counter() + timeout
        while True:
            summary = self._lookup(spec)
            if summary is not None:
                return summary
            if not os.path.exists(claim) or self._claim_stale(claim):
                # Claim gone or abandoned: one final look, since the
                # claimant publishes *before* releasing.
                return self._lookup(spec)
            if time.perf_counter() >= deadline:
                return None
            time.sleep(poll_seconds)

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass


def _claim_ttl_from_env() -> float:
    value = os.environ.get(CLAIM_TTL_ENV, "").strip()
    if not value:
        return DEFAULT_CLAIM_TTL
    try:
        ttl = float(value)
    except ValueError:
        _log.warning(
            "ignoring malformed %s=%r (want seconds)", CLAIM_TTL_ENV, value
        )
        return DEFAULT_CLAIM_TTL
    return ttl if ttl > 0 else DEFAULT_CLAIM_TTL
