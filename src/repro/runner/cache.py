"""Content-addressed on-disk cache of run results.

Every slowdown figure in the benchmark suite re-runs the same solo
baselines; across the 21 experiments that is hours of duplicated
simulation.  The cache stores one JSON file per
:meth:`~repro.runner.spec.RunSpec.content_hash` under a cache root
(``.repro_cache/`` by default), so any run is simulated at most once
per machine -- across processes, pytest sessions, and figures.

Robustness rules:

* every entry is versioned by a schema tag and validated against the
  spec hash on read; anything corrupt, truncated, or stale is
  *discarded and recomputed*, never trusted and never fatal;
* writes are atomic (temp file + ``os.replace``), so a crashed or
  parallel writer can not leave a torn entry behind;
* the whole mechanism turns off with ``REPRO_CACHE=off``.
"""

from __future__ import annotations

# repro: config-layer -- this module resolves environment knobs
import json
import os
import tempfile
from typing import Optional

from repro.errors import CacheError
from repro.runner.spec import RunSpec
from repro.runner.summary import RunSummary
from repro.telemetry.log import get_logger

_log = get_logger(__name__)

#: Bump when the cache payload layout changes; old entries are then
#: silently treated as misses and rewritten.
CACHE_SCHEMA = 1

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


class ResultCache:
    """A directory of ``<spec-hash>.json`` result files.

    Args:
        root: Cache directory; created lazily on the first write.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        #: Lifetime lookup accounting (cumulative across batches; a
        #: poisoned entry counts as both ``poisoned`` and ``misses``
        #: because the caller recomputes it).
        self.hits = 0
        self.misses = 0
        self.poisoned = 0

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """Build a cache honouring the ``REPRO_CACHE`` variable.

        Returns:
            ``None`` when caching is disabled (``REPRO_CACHE`` set to
            ``off``, ``0``, ``no``, or ``false``); otherwise a cache
            rooted at ``$REPRO_CACHE`` (default ``.repro_cache/``).
        """
        value = os.environ.get("REPRO_CACHE", "").strip()
        if value.lower() in ("off", "0", "no", "false"):
            return None
        return cls(value or DEFAULT_CACHE_DIR)

    def path_for(self, spec: RunSpec) -> str:
        """Filesystem path of the entry for ``spec``."""
        return os.path.join(self.root, f"{spec.content_hash()}.json")

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[RunSummary]:
        """Return the cached summary for ``spec``, or None on a miss.

        A poisoned entry (unreadable JSON, wrong schema, hash
        mismatch, malformed payload) is deleted so the caller simply
        recomputes; corruption can cost time, never correctness.
        """
        path = self.path_for(spec)
        try:
            with open(path) as fh:
                payload = json.load(fh)
            if payload["schema"] != CACHE_SCHEMA:
                raise CacheError(f"schema {payload['schema']!r}")
            if payload["spec_hash"] != spec.content_hash():
                raise CacheError("spec hash mismatch")
            summary = RunSummary.from_dict(payload["summary"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:
            self.poisoned += 1
            self.misses += 1
            _log.warning("discarding poisoned cache entry %s (%s)", path, exc)
            self._discard(path)
            return None
        self.hits += 1
        return summary

    def put(self, spec: RunSpec, summary: RunSummary) -> str:
        """Atomically store ``summary`` under ``spec``'s hash."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": CACHE_SCHEMA,
            "spec_hash": spec.content_hash(),
            "summary": summary.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
