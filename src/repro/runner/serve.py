"""``repro serve``: a local batch front-end for sweep traffic.

Many-client workloads (parameter searches, adversarial pattern
hunters, notebook sessions) all want the same thing from the runner:
hand over a list of specs, get summaries back, and never pay twice
for a spec someone else already has in flight.  This module is that
absorption point -- a stdlib-only asyncio server on a local Unix
socket that

* accepts newline-delimited JSON run requests,
* **coalesces identical in-flight specs** across requests (keyed by
  content hash, the same key the cache and dedup use), so a thousand
  clients asking for one sweep cost one sweep,
* feeds unique work to a shared :class:`ParallelRunner` (persistent
  worker pool + sharded single-flight cache), and
* streams each request's summaries back in spec order as they
  resolve, followed by a final ``done`` line.

Protocol (one JSON object per line, both directions)::

    -> {"id": 7, "specs": [<RunSpec.to_dict()>, ...]}
    <- {"id": 7, "index": 0, "summary": {...}}
    <- {"id": 7, "index": 1, "summary": {...}}
    <- {"id": 7, "done": true, "count": 2}

    -> {"op": "ping"}          <- {"pong": true, "protocol": 2}
    -> {"op": "stats"}         <- {"stats": {...}}
    -> {"op": "probe_list"}    <- {"probes": [<metadata>...]}
    -> {"op": "watch", "probes": [...], "max_frames": N}
    <- {"id": ..., "watching": true, "protocol": 2}
    <- {"id": ..., "event": "meta", "probes": [...]}
    <- {"id": ..., "event": "frame", "time": 4096, "values": {...}}
    <- {"id": ..., "done": true, "frames": N}

The ``watch`` op subscribes the connection to live probe frames
published by in-flight runs (see :mod:`repro.probes.publish`): the
server installs itself as the process-global frame publisher, so any
run executed *in this process* (``--jobs 1``; pool workers are
separate processes) streams its sampled probe values to every
subscriber.  A subscription ends when ``max_frames`` frames were
delivered, when the observed run completes (its ``end`` event), or
when the client disconnects.  Frame values can be filtered with glob
``probes`` patterns.

Errors are data, not disconnects: a malformed line or unknown op gets
``{"id": ..., "error": "..."}`` and the connection stays usable.

:func:`request_runs` is the matching synchronous client used by tests
and scripts; :func:`repro.probes.watch.iter_watch` is the watch-side
client.  Anything that can write JSON to a Unix socket can speak the
protocol directly.
"""

from __future__ import annotations

# repro: config-layer -- socket paths and op codes live at the edge
import asyncio
import json
import os
import socket
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional

from repro.errors import ReproError, ServeError
from repro.probes.publish import clear_publisher, set_publisher
from repro.runner.parallel import ParallelRunner
from repro.runner.spec import RunSpec
from repro.runner.summary import RunSummary
from repro.telemetry.log import get_logger

_log = get_logger(__name__)

#: Wire protocol version, reported by ``ping``.  Version 2 added the
#: ``watch`` and ``probe_list`` ops (live probe streaming).
SERVE_PROTOCOL = 2

#: Default socket path (relative to the working directory).
DEFAULT_SOCKET = ".repro_serve.sock"


@dataclass
class ServeStats:
    """Lifetime accounting of one :class:`BatchServer`.

    Attributes:
        requests: Run requests accepted.
        specs: Specs requested across all run requests.
        coalesced: Specs satisfied by an identical spec already in
            flight (no new simulation scheduled).
        batches: Runner batches dispatched.
        errors: Protocol-level errors answered.
        watches: ``watch`` subscriptions accepted.
        frames: Probe frames published by in-flight runs (before any
            per-subscriber filtering).
    """

    requests: int = 0
    specs: int = 0
    coalesced: int = 0
    batches: int = 0
    errors: int = 0
    watches: int = 0
    frames: int = 0


class BatchServer:
    """Coalescing run-request server over a local Unix socket.

    Args:
        runner: The shared :class:`ParallelRunner` all requests feed
            (its cache and worker pool are the scale levers).
        socket_path: Unix socket to listen on; a stale socket file is
            replaced.
        max_requests: Stop serving after this many run requests
            (``None`` = serve forever); used by tests and smoke runs.
    """

    def __init__(
        self,
        runner: ParallelRunner,
        socket_path: str = DEFAULT_SOCKET,
        max_requests: Optional[int] = None,
    ) -> None:
        self.runner = runner
        self.socket_path = socket_path
        self.max_requests = max_requests
        self.stats = ServeStats()
        self._inflight: Dict[str, "asyncio.Future[RunSummary]"] = {}
        # One thread: runner batches serialize behind each other while
        # the event loop stays free to accept and coalesce new
        # requests into the in-flight map.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._drained: Optional["asyncio.Event"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Live watch subscriptions: each gets every published probe
        # event; None queued means "server closing, wrap up".
        self._watchers: List["asyncio.Queue[Optional[Dict[str, Any]]]"] = []
        # Probe metadata of the most recent published run, replayed to
        # late subscribers and answered to the probe_list op.
        self._last_probes: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start accepting connections.

        Also installs this server as the process-global probe-frame
        publisher (see :mod:`repro.probes.publish`): in-process runs
        attach a sampler and their frames fan out to ``watch``
        subscribers.
        """
        self._drained = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        set_publisher(self._publish)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path
        )
        _log.info("repro serve listening on %s", self.socket_path)

    async def run(self) -> None:
        """Start and serve until closed (or ``max_requests`` reached)."""
        if self._server is None:
            await self.start()
        assert self._drained is not None
        # With no max_requests the event is only ever set by close().
        await self._drained.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting, drop the socket file, release the worker."""
        clear_publisher()
        # Wake every watcher so its connection handler finishes before
        # (on 3.12+) wait_closed() starts waiting for handlers.
        for queue in list(self._watchers):
            queue.put_nowait(None)
        server = self._server
        self._server = None
        if server is not None:
            server.close()
            await server.wait_closed()
        if self._drained is not None:
            self._drained.set()
        self._executor.shutdown(wait=True)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(line, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown with this connection still open.  End
            # the handler normally: letting the cancellation escape
            # makes asyncio's connection_made callback log a spurious
            # traceback for the cancelled handler task (3.11).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = json.loads(line)
        except ValueError:
            await self._error(writer, None, "malformed JSON request")
            return
        if not isinstance(request, dict):
            await self._error(writer, None, "request must be a JSON object")
            return
        req_id = request.get("id")
        op = request.get("op", "run")
        if op == "ping":
            await self._send(
                writer,
                {"id": req_id, "pong": True, "protocol": SERVE_PROTOCOL},
            )
            return
        if op == "stats":
            await self._send(
                writer, {"id": req_id, "stats": asdict(self.stats)}
            )
            return
        if op == "probe_list":
            await self._send(
                writer, {"id": req_id, "probes": self._last_probes}
            )
            return
        if op == "watch":
            await self._handle_watch(request, writer)
            return
        if op != "run":
            await self._error(writer, req_id, f"unknown op {op!r}")
            return
        specs_data = request.get("specs")
        if not isinstance(specs_data, list) or not specs_data:
            await self._error(
                writer, req_id, "specs must be a non-empty list"
            )
            return
        try:
            specs = [RunSpec.from_dict(data) for data in specs_data]
        except (ReproError, TypeError, AttributeError) as exc:
            await self._error(writer, req_id, f"bad spec: {exc}")
            return

        self.stats.requests += 1
        self.stats.specs += len(specs)
        futures = self._coalesce(specs)
        for index, future in enumerate(futures):
            try:
                summary = await future
            except Exception as exc:
                await self._error(
                    writer, req_id, f"spec {index} failed: {exc}", index=index
                )
                continue
            await self._send(
                writer,
                {"id": req_id, "index": index, "summary": summary.to_dict()},
            )
        await self._send(
            writer, {"id": req_id, "done": True, "count": len(futures)}
        )
        if (
            self.max_requests is not None
            and self.stats.requests >= self.max_requests
            and self._drained is not None
        ):
            self._drained.set()

    # ------------------------------------------------------------------
    # live probe streaming (protocol 2)
    # ------------------------------------------------------------------
    def _publish(self, event: Dict[str, Any]) -> None:
        """Process-global publisher hook (called from the runner thread).

        Crosses into the event loop thread-safely; events published
        after the loop is gone are dropped (the run outlived the
        server, nobody is left to watch).
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._dispatch_event, event)
        except RuntimeError:  # loop shut down concurrently
            pass

    def _dispatch_event(self, event: Dict[str, Any]) -> None:
        """Fan one published probe event out to every subscriber."""
        kind = event.get("event")
        if kind == "meta":
            self._last_probes = list(event.get("probes", []))
        elif kind == "frame":
            self.stats.frames += 1
        for queue in list(self._watchers):
            queue.put_nowait(event)

    @staticmethod
    def _filter_frame(
        event: Dict[str, Any], patterns: Optional[List[str]]
    ) -> Optional[Dict[str, Any]]:
        """Frame payload with values filtered to matching probe names.

        Returns ``None`` when a filter is set and nothing matched
        (the frame is not worth a wire line).
        """
        if not patterns:
            return dict(event)
        values = event.get("values", {})
        matched = {
            name: value
            for name, value in values.items()
            if any(fnmatchcase(name, pattern) for pattern in patterns)
        }
        if not matched:
            return None
        payload = dict(event)
        payload["values"] = matched
        return payload

    async def _handle_watch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        """Stream live probe frames to this connection.

        The subscription ends when ``max_frames`` frames were
        delivered, when the observed run completes (``end`` event), or
        when the server closes; a final ``done`` line carries the
        delivered-frame count.
        """
        req_id = request.get("id")
        patterns = request.get("probes")
        if patterns is not None and (
            not isinstance(patterns, list)
            or not all(isinstance(p, str) for p in patterns)
        ):
            await self._error(
                writer, req_id, "probes must be a list of glob strings"
            )
            return
        raw_max = request.get("max_frames")
        max_frames: Optional[int] = None
        if raw_max is not None:
            if not isinstance(raw_max, int) or isinstance(raw_max, bool):
                await self._error(
                    writer, req_id, "max_frames must be an integer"
                )
                return
            if raw_max < 1:
                await self._error(
                    writer, req_id, f"max_frames must be >= 1, got {raw_max}"
                )
                return
            max_frames = raw_max
        self.stats.watches += 1
        queue: "asyncio.Queue[Optional[Dict[str, Any]]]" = asyncio.Queue()
        self._watchers.append(queue)
        delivered = 0
        try:
            await self._send(
                writer,
                {"id": req_id, "watching": True, "protocol": SERVE_PROTOCOL},
            )
            if self._last_probes:
                await self._send(
                    writer,
                    {
                        "id": req_id,
                        "event": "meta",
                        "probes": self._last_probes,
                    },
                )
            while max_frames is None or delivered < max_frames:
                event = await queue.get()
                if event is None:
                    break  # server closing
                kind = event.get("event")
                if kind == "frame":
                    payload = self._filter_frame(event, patterns)
                    if payload is None:
                        continue
                    payload["id"] = req_id
                    await self._send(writer, payload)
                    delivered += 1
                elif kind == "meta":
                    meta = dict(event)
                    meta["id"] = req_id
                    await self._send(writer, meta)
                elif kind == "end":
                    ended = dict(event)
                    ended["id"] = req_id
                    await self._send(writer, ended)
                    break
        finally:
            self._watchers.remove(queue)
        await self._send(
            writer, {"id": req_id, "done": True, "frames": delivered}
        )

    def _coalesce(
        self, specs: List[RunSpec]
    ) -> List["asyncio.Future[RunSummary]"]:
        """One future per spec; identical in-flight specs share one."""
        loop = asyncio.get_running_loop()
        futures: List["asyncio.Future[RunSummary]"] = []
        new_specs: List[RunSpec] = []
        new_digests: List[str] = []
        for spec in specs:
            digest = spec.content_hash()
            future = self._inflight.get(digest)
            if future is None:
                future = loop.create_future()
                self._inflight[digest] = future
                new_specs.append(spec)
                new_digests.append(digest)
            else:
                self.stats.coalesced += 1
            futures.append(future)
        if new_specs:
            loop.create_task(self._run_batch(new_specs, new_digests))
        return futures

    async def _run_batch(
        self, specs: List[RunSpec], digests: List[str]
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            summaries = await loop.run_in_executor(
                self._executor, self.runner.run, specs
            )
        except Exception as exc:
            for digest in digests:
                future = self._inflight.pop(digest, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
            return
        self.stats.batches += 1
        for digest, summary in zip(digests, summaries):
            future = self._inflight.pop(digest, None)
            if future is not None and not future.done():
                future.set_result(summary)

    async def _error(
        self,
        writer: asyncio.StreamWriter,
        req_id: Any,
        message: str,
        index: Optional[int] = None,
    ) -> None:
        self.stats.errors += 1
        payload: Dict[str, Any] = {"id": req_id, "error": message}
        if index is not None:
            payload["index"] = index
        await self._send(writer, payload)

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


# ----------------------------------------------------------------------
# synchronous client
# ----------------------------------------------------------------------
def request_runs(
    socket_path: str,
    specs: List[RunSpec],
    timeout: Optional[float] = None,
    request_id: Any = 0,
) -> List[RunSummary]:
    """Run ``specs`` through a :class:`BatchServer`; spec-order results.

    Args:
        socket_path: The server's Unix socket.
        specs: Specs to run (duplicates are fine; the server
            coalesces them).
        timeout: Per-read socket timeout in seconds (``None`` waits
            indefinitely -- simulations can be long).
        request_id: Echoed back by the server; useful when one
            connection multiplexes requests.

    Raises:
        ServeError: The server answered with a protocol error or the
            response was incomplete.
    """
    payload = {
        "id": request_id,
        "specs": [spec.to_dict() for spec in specs],
    }
    summaries: Dict[int, RunSummary] = {}
    count: Optional[int] = None
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                message = json.loads(line)
                if message.get("error"):
                    raise ServeError(str(message["error"]))
                if "summary" in message:
                    summaries[int(message["index"])] = RunSummary.from_dict(
                        message["summary"]
                    )
                if message.get("done"):
                    count = int(message["count"])
                    break
    if count is None:
        raise ServeError("connection closed before the response completed")
    if sorted(summaries) != list(range(count)):
        raise ServeError(
            f"incomplete response: got indices {sorted(summaries)} "
            f"of {count}"
        )
    return [summaries[i] for i in range(count)]


def ping(socket_path: str, timeout: Optional[float] = 5.0) -> bool:
    """True when a :class:`BatchServer` answers on ``socket_path``."""
    try:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(timeout)
            sock.connect(socket_path)
            sock.sendall(b'{"op": "ping"}\n')
            with sock.makefile("r", encoding="utf-8") as stream:
                line = stream.readline()
        return bool(json.loads(line).get("pong"))
    except (OSError, ValueError):
        return False
