"""Fan independent runs out over a persistent process pool.

Simulation runs share nothing (every :class:`Platform` builds a fresh
simulator), so a batch of :class:`RunSpec` objects is embarrassingly
parallel.  :class:`ParallelRunner` exploits that while keeping the
semantics of a serial loop:

* **deterministic ordering** -- results come back in spec order no
  matter which worker finishes first;
* **dedup** -- specs with equal content hashes are simulated once per
  batch (a sweep that re-states its solo baseline pays for it once);
* **caching** -- an optional :class:`ResultCache` is consulted before
  and fed after execution, so repeated suites cost zero simulations;
* **single-flight** -- with a cache attached, cross-process claim
  files guarantee that two concurrent sweeps never simulate the same
  spec twice: one runner computes, the other waits for the entry;
* **graceful fallback** -- one worker, one outstanding spec, or a
  platform where process pools are unavailable (restricted
  containers, missing ``fork``/semaphores) all degrade to plain
  in-process execution with identical results.

Worker sizing is container-aware: the automatic count prefers the
scheduling affinity mask (``os.sched_getaffinity``) over the raw CPU
count and clamps it by the cgroup-v2 ``cpu.max`` quota, so a 4-CPU
box whose cgroup grants 2 CPUs gets 2 workers, not 4.  ``REPRO_JOBS``
overrides (``auto`` or a positive integer), and the resolved count's
*provenance* is recorded in :attr:`RunnerStats.worker_source` so a
serial fallback is always diagnosable from a bench record alone.
"""

from __future__ import annotations

# repro: config-layer -- this module resolves environment knobs
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.monitor.window import WindowedBandwidthMonitor
from repro.probes.flightrec import FlightRecorder
from repro.probes.publish import FrameRelay, get_publisher
from repro.probes.sampler import ProbeSampler
from repro.runner.cache import CacheClaim, ResultCache
from repro.runner.pool import PoolUnavailable, WorkerPool
from repro.runner.spec import RunSpec
from repro.runner.summary import RunSummary
from repro.soc.experiment import PlatformResult
from repro.soc.platform import Platform
from repro.telemetry.log import get_logger

#: Environment override for the worker count (``auto`` or a positive
#: integer; unset/empty means ``auto``).
JOBS_ENV = "REPRO_JOBS"

#: cgroup-v2 CPU quota file: ``"<quota> <period>"`` or ``"max <period>"``.
_CGROUP_CPU_MAX = "/sys/fs/cgroup/cpu.max"

#: How long a runner waits on another process's in-flight claim before
#: giving up and computing the spec itself (seconds).
DEFAULT_CLAIM_WAIT = 600.0

_log = get_logger(__name__)


def _attach_probe_plane(
    platform: Platform, spec: RunSpec
) -> Optional[str]:
    """Attach the live probe plane when anyone is listening.

    Samplers are observers only (daemon ticks, pure reads), so runs
    stay bit-identical attached or detached; but when neither a frame
    publisher (``repro watch`` via serve) nor a flight recorder
    (``REPRO_SLO``) is active, no sampler is built at all and the run
    pays literally zero observation cost.

    Returns the spec's content hash when a publisher is active (the
    caller owes it a terminal ``end`` event), else ``None``.
    """
    publisher = get_publisher()
    recorder = FlightRecorder.from_env()
    if publisher is None and recorder is None:
        return None
    digest = spec.content_hash()
    sampler = ProbeSampler(platform.sim, platform.probes)
    if recorder is not None:
        recorder.context.setdefault("spec", digest)
        recorder.arm(sampler)
    if publisher is not None:
        publisher(
            {
                "event": "meta",
                "run": digest,
                "probes": sampler.map.describe(sampler.probes),
            }
        )
        sampler.consumers.append(FrameRelay(publisher, digest))
    sampler.attach()
    return digest if publisher is not None else None


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec to completion, in this process.

    The module-level entry point every execution path shares (serial
    loop, pool worker, cache warm-up), which is what guarantees the
    three paths cannot diverge.
    """
    platform = Platform(spec.config)
    monitor = None
    if spec.monitor_master is not None:
        monitor = WindowedBandwidthMonitor(
            platform.port(spec.monitor_master), spec.monitor_bin_cycles
        )
    published = _attach_probe_plane(platform, spec)
    elapsed = platform.run(
        spec.max_cycles,
        stop_when_critical_done=spec.stop_when_critical_done,
    )
    result = PlatformResult(platform, elapsed)
    bins: Optional[tuple] = None
    if monitor is not None:
        horizon = (elapsed // spec.monitor_bin_cycles) * spec.monitor_bin_cycles
        bins = (
            tuple(monitor.window_bytes(horizon)) if horizon else ()
        )
    summary = RunSummary.from_result(
        result,
        monitor_bins=bins,
        monitor_bin_cycles=(
            spec.monitor_bin_cycles if monitor is not None else None
        ),
    )
    if published is not None:
        publisher = get_publisher()
        if publisher is not None:
            publisher({"event": "end", "run": published})
    return summary


def _timed_execute(spec: RunSpec) -> Tuple[RunSummary, float]:
    """Run one spec and measure its wall time.

    Wraps (rather than changes) :func:`execute_spec` so the measured
    entry point used by the runner stays byte-identical to the public
    one; the per-spec seconds feed the runner telemetry report.
    """
    start = time.perf_counter()
    summary = execute_spec(spec)
    return summary, time.perf_counter() - start


# ----------------------------------------------------------------------
# worker resolution
# ----------------------------------------------------------------------
def _cgroup_cpu_quota(path: str = _CGROUP_CPU_MAX) -> Optional[int]:
    """CPU count granted by the cgroup-v2 quota, or ``None``.

    ``cpu.max`` holds ``"<quota-us> <period-us>"`` (or ``"max ..."``
    for unlimited); the effective CPU count is ``ceil(quota/period)``.
    Unreadable, unlimited, or malformed files all mean "no clamp".
    """
    try:
        with open(path) as fh:
            parts = fh.read().split()
    except OSError:
        return None
    if len(parts) != 2 or parts[0] == "max":
        return None
    try:
        quota, period = int(parts[0]), int(parts[1])
    except ValueError:
        return None
    if quota <= 0 or period <= 0:
        return None
    return -(-quota // period)


def _affinity_cpus() -> Tuple[int, str]:
    """CPUs this process may run on, with the figure's provenance.

    Prefers the scheduling affinity mask (what taskset/cgroup cpusets
    actually allow) over ``os.cpu_count()`` (what the machine has).
    """
    getter = getattr(os, "sched_getaffinity", None)
    if getter is not None:
        try:
            cpus = len(getter(0))
        except OSError:  # pragma: no cover - exotic kernels only
            cpus = 0
        if cpus:
            return cpus, "sched_getaffinity"
    return (os.cpu_count() or 1), "os.cpu_count"


def resolve_workers() -> Tuple[int, str]:
    """Resolve the automatic worker count and its provenance.

    Returns:
        ``(count, source)`` where ``source`` is one of
        ``"REPRO_JOBS=<n>"``, ``"sched_getaffinity"``,
        ``"os.cpu_count"``, or ``"cgroup cpu.max=<q> (clamps ...)"``.

    Raises:
        ConfigError: ``REPRO_JOBS`` is not ``auto`` or a positive
            integer.  ``REPRO_JOBS=0`` is rejected explicitly (it used
            to mean auto; say ``auto`` or unset the variable).
    """
    value = os.environ.get(JOBS_ENV, "").strip()
    if value and value.lower() != "auto":
        try:
            jobs = int(value)
        except ValueError:
            raise ConfigError(
                f"{JOBS_ENV} must be 'auto' or a positive integer, "
                f"got {value!r}"
            )
        if jobs == 0:
            raise ConfigError(
                f"{JOBS_ENV}=0 is not a worker count; use "
                f"{JOBS_ENV}=auto (or unset it) for automatic sizing"
            )
        if jobs < 0:
            raise ConfigError(f"{JOBS_ENV} must be >= 1, got {jobs}")
        return jobs, f"{JOBS_ENV}={jobs}"
    cpus, source = _affinity_cpus()
    quota = _cgroup_cpu_quota()
    if quota is not None and quota < cpus:
        return quota, f"cgroup cpu.max={quota} (clamps {source}={cpus})"
    return cpus, source


def default_workers() -> int:
    """Automatic worker count (see :func:`resolve_workers`)."""
    return resolve_workers()[0]


@dataclass
class RunnerStats:
    """Execution accounting for one :meth:`ParallelRunner.run` batch.

    Attributes:
        total: Specs requested.
        cache_hits: Satisfied from the result cache.
        cache_misses: Cache lookups in this batch that found nothing
            (delta of the cache's lifetime counter, so a report per
            batch never re-attributes earlier batches' misses).
        cache_poisoned: Corrupt/stale entries this batch discarded.
        deduped: Satisfied by another spec in the same batch with an
            equal content hash.
        executed: Simulations actually performed (including any
            single-flight waits that timed out and ran locally).
        single_flight_waited: Specs another process was already
            computing, satisfied by waiting for its cache entry
            instead of re-simulating.
        mode: ``"parallel"`` or ``"serial"`` for the executed part
            (``"serial"`` when nothing ran in a pool).
        workers: Worker processes the executed part actually used
            (1 whenever nothing ran in a pool).
        worker_source: Provenance of the resolved worker count
            (``"explicit argument"``, ``"REPRO_JOBS=<n>"``,
            ``"sched_getaffinity"``, ``"os.cpu_count"``, or the
            cgroup-clamp description).
        recovered: Specs re-executed in the parent because a pool
            worker crashed mid-batch.
        wall_seconds: End-to-end wall time of the batch (cache
            lookups included).
        spec_seconds: Per-executed-spec simulation seconds.
            **Ordering invariant:** entry *i* belongs to the *i*-th
            spec of the executed work list (batch order after dedup /
            cache hits / foreign claims), regardless of which worker
            finished first -- work-stealing must never scramble
            per-spec attribution.
        fallback_reason: Why the executed part ran serially (``None``
            when it ran in a pool, or when nothing executed):
            ``"max_workers=1"``, ``"single spec in batch"``, or the
            exception that made the process pool unavailable.
    """

    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_poisoned: int = 0
    deduped: int = 0
    executed: int = 0
    single_flight_waited: int = 0
    mode: str = "serial"
    workers: int = 1
    worker_source: Optional[str] = None
    recovered: int = 0
    wall_seconds: float = 0.0
    spec_seconds: List[float] = field(default_factory=list)
    fallback_reason: Optional[str] = None


class ParallelRunner:
    """Run batches of :class:`RunSpec` with pooling, dedup and caching.

    The runner owns a persistent :class:`~repro.runner.pool.WorkerPool`
    that outlives individual :meth:`run` batches: workers are spawned
    on the first parallel batch and reused until :meth:`close` (or the
    worker count changes).  Specs are dispatched as one future each
    from the pool's shared queue, so a straggler spec cannot serialize
    a batch; pass ``chunk_size`` to opt into contiguous chunking for
    sweeps of many tiny specs.

    Args:
        max_workers: Process count; ``None`` or ``"auto"`` = automatic
            (``REPRO_JOBS`` override, else affinity/cgroup-aware CPU
            count).  ``1`` forces in-process serial execution.
        cache: Optional on-disk result cache (see
            :meth:`ResultCache.from_env`); ``None`` disables caching.
        chunk_size: Specs per pool submission (default: 1, i.e.
            per-spec work stealing).
        single_flight: With a cache attached, claim specs via
            cross-process ``O_EXCL`` claim files so concurrent
            runners never compute the same spec twice (default on;
            meaningless without a cache).
        claim_wait_seconds: How long to wait on another process's
            claim before computing the spec locally anyway.
    """

    def __init__(
        self,
        max_workers: Union[int, str, None] = None,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        single_flight: bool = True,
        claim_wait_seconds: float = DEFAULT_CLAIM_WAIT,
    ) -> None:
        if isinstance(max_workers, str):
            if max_workers.strip().lower() != "auto":
                raise ConfigError(
                    f"max_workers must be an integer >= 1, None, or "
                    f"'auto', got {max_workers!r}"
                )
            max_workers = None
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
        self._explicit_workers = max_workers
        self.cache = cache
        self.chunk_size = chunk_size
        self.single_flight = single_flight
        self.claim_wait_seconds = claim_wait_seconds
        self._pool: Optional[WorkerPool] = None
        #: Accounting of the most recent :meth:`run` call.
        self.last_stats = RunnerStats()

    @property
    def max_workers(self) -> int:
        """Effective worker count for the next batch."""
        return self.worker_resolution()[0]

    def worker_resolution(self) -> Tuple[int, str]:
        """``(count, provenance)`` for the next batch's worker count."""
        if self._explicit_workers is not None:
            return self._explicit_workers, "explicit argument"
        return resolve_workers()

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool(self) -> Optional[WorkerPool]:
        """The persistent worker pool (``None`` until first used)."""
        return self._pool

    def _ensure_pool(self, workers: int) -> WorkerPool:
        if self._pool is not None and (
            self._pool.workers != workers
            or self._pool.chunk_size != self.chunk_size
        ):
            self._pool.close()
            self._pool = None
        if self._pool is None:
            self._pool = WorkerPool(
                workers, _timed_execute, chunk_size=self.chunk_size
            )
        return self._pool

    def close(self) -> None:
        """Shut down the persistent worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[RunSummary]:
        """Execute every spec; results are returned in spec order.

        Identical specs (equal content hashes) are simulated once and
        their summary shared; cached specs are not simulated at all;
        specs another process is already computing (fresh claim file)
        are awaited rather than recomputed.
        """
        stats = RunnerStats(total=len(specs))
        stats.worker_source = self.worker_resolution()[1]
        self.last_stats = stats
        if not specs:
            return []
        batch_start = time.perf_counter()
        misses_before = self.cache.misses if self.cache is not None else 0
        poisoned_before = (
            self.cache.poisoned if self.cache is not None else 0
        )

        by_hash: Dict[str, RunSummary] = {}
        hashes = [spec.content_hash() for spec in specs]

        # Unique work list, preserving first-occurrence order, split
        # into specs we own (claimed or claimless) and specs some
        # other process has in flight.
        owned: List[RunSpec] = []
        owned_hashes: List[str] = []
        claims: Dict[str, CacheClaim] = {}
        foreign: List[Tuple[RunSpec, str]] = []
        seen = set()
        use_claims = self.cache is not None and self.single_flight
        for spec, digest in zip(specs, hashes):
            if digest in seen:
                stats.deduped += 1
                continue
            seen.add(digest)
            if self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    by_hash[digest] = cached
                    stats.cache_hits += 1
                    continue
            if use_claims:
                assert self.cache is not None
                claim = self.cache.try_claim(spec)
                if claim is None:
                    foreign.append((spec, digest))
                    continue
                claims[digest] = claim
            owned.append(spec)
            owned_hashes.append(digest)

        if self.cache is not None:
            stats.cache_misses = self.cache.misses - misses_before
            stats.cache_poisoned = self.cache.poisoned - poisoned_before

        try:
            if owned:
                summaries = self._execute(owned, stats)
                for spec, digest, summary in zip(
                    owned, owned_hashes, summaries
                ):
                    by_hash[digest] = summary
                    if self.cache is not None:
                        self.cache.put(spec, summary)
                    claim = claims.pop(digest, None)
                    if claim is not None:
                        claim.release()
                stats.executed = len(owned)
        finally:
            # A failed batch must not leave fresh claims behind: other
            # runners would wait out the TTL for a result that will
            # never arrive.
            for claim in claims.values():
                claim.release()
            claims.clear()

        for spec, digest in foreign:
            assert self.cache is not None
            summary = self.cache.wait(spec, timeout=self.claim_wait_seconds)
            if summary is None:
                # The claimant died, stalled past the TTL, or is
                # slower than our patience: compute locally so the
                # batch always completes.
                summary, seconds = _timed_execute(spec)
                stats.spec_seconds.append(seconds)
                stats.executed += 1
                self.cache.put(spec, summary)
            else:
                stats.single_flight_waited += 1
            by_hash[digest] = summary

        stats.wall_seconds = time.perf_counter() - batch_start
        return [by_hash[digest] for digest in hashes]

    def _execute(
        self, specs: List[RunSpec], stats: RunnerStats
    ) -> List[RunSummary]:
        max_workers = self.max_workers
        workers = min(max_workers, len(specs))
        if workers > 1:
            try:
                pool = self._ensure_pool(max_workers)
                recovered_before = pool.recovered
                pairs = pool.map(specs)
            except PoolUnavailable as exc:
                # Keep the cause: BENCH_runner.json reports showing
                # "serial, 1 worker" are undiagnosable without it.
                cause = exc.__cause__
                stats.fallback_reason = (
                    f"{type(cause).__name__}: {cause}"
                    if cause is not None
                    else "process pool unavailable"
                )
                _log.info(
                    "process pool unavailable (%s); running %d specs serially",
                    stats.fallback_reason,
                    len(specs),
                )
            else:
                stats.mode = "parallel"
                stats.workers = workers
                stats.recovered = pool.recovered - recovered_before
                results = []
                for summary, seconds in pairs:
                    stats.spec_seconds.append(seconds)
                    results.append(summary)
                return results
        elif max_workers == 1:
            stats.fallback_reason = "max_workers=1"
        else:
            stats.fallback_reason = "single spec in batch"
        stats.mode = "serial"
        stats.workers = 1
        results = []
        for spec in specs:
            summary, seconds = _timed_execute(spec)
            stats.spec_seconds.append(seconds)
            results.append(summary)
        return results


#: Backwards-compatible alias; the signal now lives in
#: :mod:`repro.runner.pool`.
_PoolUnavailable = PoolUnavailable
