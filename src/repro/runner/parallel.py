"""Fan independent runs out over a process pool.

Simulation runs share nothing (every :class:`Platform` builds a fresh
simulator), so a batch of :class:`RunSpec` objects is embarrassingly
parallel.  :class:`ParallelRunner` exploits that while keeping the
semantics of a serial loop:

* **deterministic ordering** -- results come back in spec order no
  matter which worker finishes first;
* **dedup** -- specs with equal content hashes are simulated once per
  batch (a sweep that re-states its solo baseline pays for it once);
* **caching** -- an optional :class:`ResultCache` is consulted before
  and fed after execution, so repeated suites cost zero simulations;
* **graceful fallback** -- one worker, one outstanding spec, or a
  platform where process pools are unavailable (restricted
  containers, missing ``fork``/semaphores) all degrade to plain
  in-process execution with identical results.
"""

from __future__ import annotations

# repro: config-layer -- this module resolves environment knobs
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.monitor.window import WindowedBandwidthMonitor
from repro.runner.cache import ResultCache
from repro.runner.spec import RunSpec
from repro.runner.summary import RunSummary
from repro.soc.experiment import PlatformResult
from repro.soc.platform import Platform
from repro.telemetry.log import get_logger

#: Environment override for the worker count (0/unset = auto).
JOBS_ENV = "REPRO_JOBS"

_log = get_logger(__name__)


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec to completion, in this process.

    The module-level entry point every execution path shares (serial
    loop, pool worker, cache warm-up), which is what guarantees the
    three paths cannot diverge.
    """
    platform = Platform(spec.config)
    monitor = None
    if spec.monitor_master is not None:
        monitor = WindowedBandwidthMonitor(
            platform.port(spec.monitor_master), spec.monitor_bin_cycles
        )
    elapsed = platform.run(
        spec.max_cycles,
        stop_when_critical_done=spec.stop_when_critical_done,
    )
    result = PlatformResult(platform, elapsed)
    bins: Optional[tuple] = None
    if monitor is not None:
        horizon = (elapsed // spec.monitor_bin_cycles) * spec.monitor_bin_cycles
        bins = (
            tuple(monitor.window_bytes(horizon)) if horizon else ()
        )
    return RunSummary.from_result(
        result,
        monitor_bins=bins,
        monitor_bin_cycles=(
            spec.monitor_bin_cycles if monitor is not None else None
        ),
    )


def _timed_execute(spec: RunSpec) -> Tuple[RunSummary, float]:
    """Run one spec and measure its wall time.

    Wraps (rather than changes) :func:`execute_spec` so the measured
    entry point used by the runner stays byte-identical to the public
    one; the per-spec seconds feed the runner telemetry report.
    """
    start = time.perf_counter()
    summary = execute_spec(spec)
    return summary, time.perf_counter() - start


def _execute_chunk(specs: Sequence[RunSpec]) -> List[Tuple[RunSummary, float]]:
    """Pool-worker entry point: run a contiguous chunk of specs.

    Module-level so it pickles; one submission per chunk amortizes the
    executor's per-future spec round-trip over ``ceil(n / workers)``
    runs instead of paying it per spec.
    """
    return [_timed_execute(spec) for spec in specs]


def default_workers() -> int:
    """Worker count: ``REPRO_JOBS`` if set and positive, else CPU count."""
    value = os.environ.get(JOBS_ENV, "").strip()
    if value:
        try:
            jobs = int(value)
        except ValueError:
            raise ConfigError(f"{JOBS_ENV} must be an integer, got {value!r}")
        if jobs > 0:
            return jobs
    return os.cpu_count() or 1


@dataclass
class RunnerStats:
    """Execution accounting for one :meth:`ParallelRunner.run` batch.

    Attributes:
        total: Specs requested.
        cache_hits: Satisfied from the result cache.
        cache_misses: Cache lookups in this batch that found nothing
            (delta of the cache's lifetime counter, so a report per
            batch never re-attributes earlier batches' misses).
        cache_poisoned: Corrupt/stale entries this batch discarded.
        deduped: Satisfied by another spec in the same batch with an
            equal content hash.
        executed: Simulations actually performed.
        mode: ``"parallel"`` or ``"serial"`` for the executed part
            (``"serial"`` when nothing ran in a pool).
        workers: Worker processes the executed part actually used
            (1 whenever nothing ran in a pool).
        wall_seconds: End-to-end wall time of the batch (cache
            lookups included).
        spec_seconds: Per-executed-spec simulation seconds, in the
            order the unique work list ran.
        fallback_reason: Why the executed part ran serially (``None``
            when it ran in a pool, or when nothing executed):
            ``"max_workers=1"``, ``"single spec in batch"``, or the
            exception that made the process pool unavailable.
    """

    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_poisoned: int = 0
    deduped: int = 0
    executed: int = 0
    mode: str = "serial"
    workers: int = 1
    wall_seconds: float = 0.0
    spec_seconds: List[float] = field(default_factory=list)
    fallback_reason: Optional[str] = None


class ParallelRunner:
    """Run batches of :class:`RunSpec` with pooling, dedup and caching.

    Args:
        max_workers: Process count; ``None`` = auto
            (``REPRO_JOBS`` override, else CPU count).  ``1`` forces
            in-process serial execution.
        cache: Optional on-disk result cache (see
            :meth:`ResultCache.from_env`); ``None`` disables caching.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        self._explicit_workers = max_workers
        self.cache = cache
        #: Accounting of the most recent :meth:`run` call.
        self.last_stats = RunnerStats()

    @property
    def max_workers(self) -> int:
        """Effective worker count for the next batch."""
        if self._explicit_workers is not None:
            return self._explicit_workers
        return default_workers()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> List[RunSummary]:
        """Execute every spec; results are returned in spec order.

        Identical specs (equal content hashes) are simulated once and
        their summary shared; cached specs are not simulated at all.
        """
        stats = RunnerStats(total=len(specs))
        self.last_stats = stats
        if not specs:
            return []
        batch_start = time.perf_counter()
        misses_before = self.cache.misses if self.cache is not None else 0
        poisoned_before = (
            self.cache.poisoned if self.cache is not None else 0
        )

        by_hash: Dict[str, RunSummary] = {}
        hashes = [spec.content_hash() for spec in specs]

        # Unique work list, preserving first-occurrence order.
        pending: List[RunSpec] = []
        pending_hashes: List[str] = []
        seen = set()
        for spec, digest in zip(specs, hashes):
            if digest in seen:
                stats.deduped += 1
                continue
            seen.add(digest)
            if self.cache is not None:
                cached = self.cache.get(spec)
                if cached is not None:
                    by_hash[digest] = cached
                    stats.cache_hits += 1
                    continue
            pending.append(spec)
            pending_hashes.append(digest)

        if self.cache is not None:
            stats.cache_misses = self.cache.misses - misses_before
            stats.cache_poisoned = self.cache.poisoned - poisoned_before

        if pending:
            summaries = self._execute(pending, stats)
            for spec, digest, summary in zip(
                pending, pending_hashes, summaries
            ):
                by_hash[digest] = summary
                if self.cache is not None:
                    self.cache.put(spec, summary)
            stats.executed = len(pending)

        stats.wall_seconds = time.perf_counter() - batch_start
        return [by_hash[digest] for digest in hashes]

    def _execute(
        self, specs: List[RunSpec], stats: RunnerStats
    ) -> List[RunSummary]:
        workers = min(self.max_workers, len(specs))
        if workers > 1:
            try:
                return self._execute_pool(specs, workers, stats)
            except _PoolUnavailable as exc:
                # Keep the cause: BENCH_runner.json reports showing
                # "serial, 1 worker" are undiagnosable without it.
                cause = exc.__cause__
                stats.fallback_reason = (
                    f"{type(cause).__name__}: {cause}"
                    if cause is not None
                    else "process pool unavailable"
                )
                _log.info(
                    "process pool unavailable (%s); running %d specs serially",
                    stats.fallback_reason,
                    len(specs),
                )
        elif self.max_workers == 1:
            stats.fallback_reason = "max_workers=1"
        else:
            stats.fallback_reason = "single spec in batch"
        stats.mode = "serial"
        stats.workers = 1
        results: List[RunSummary] = []
        for spec in specs:
            summary, seconds = _timed_execute(spec)
            stats.spec_seconds.append(seconds)
            results.append(summary)
        return results

    @staticmethod
    def _execute_pool(
        specs: List[RunSpec], workers: int, stats: RunnerStats
    ) -> List[RunSummary]:
        try:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool
        except ImportError as exc:  # pragma: no cover - stdlib present
            raise _PoolUnavailable() from exc
        # Contiguous chunks, one per worker: ceil(n / workers) specs
        # travel per submission, and chunk-order reassembly equals
        # spec-order reassembly, keeping results byte-identical to the
        # serial loop.
        size = -(-len(specs) // workers)
        chunks = [specs[i : i + size] for i in range(0, len(specs), size)]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_execute_chunk, c) for c in chunks]
                pairs = [pair for f in futures for pair in f.result()]
        except (OSError, PermissionError, BrokenProcessPool) as exc:
            # Restricted environments (no /dev/shm, seccomp'd fork,
            # single-core cgroups) surface here; the batch still
            # completes, just in-process.
            raise _PoolUnavailable() from exc
        stats.mode = "parallel"
        stats.workers = workers
        results = []
        for summary, seconds in pairs:
            stats.spec_seconds.append(seconds)
            results.append(summary)
        return results


class _PoolUnavailable(Exception):
    """Internal signal: fall back to in-process execution."""
