"""Plain-data run results that survive process and disk boundaries.

:class:`~repro.soc.experiment.PlatformResult` holds the live platform
(ports, monitors, the simulator itself) and therefore cannot be
pickled to a worker process or written to a cache.  :class:`RunSummary`
is the measured part promoted to a first-class dataclass: per-master
figures, DRAM figures, the QoS reconfiguration log, and (optionally)
the fine-grained monitor trace a spec requested.  It round-trips
through JSON byte-identically, which is what lets the determinism
tests assert serial == parallel == cache-hit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.soc.experiment import DramResult, MasterResult, PlatformResult


@dataclass(frozen=True)
class RunSummary:
    """Everything a downstream analysis needs from one finished run.

    Attributes:
        elapsed: Cycle at which the run ended.
        masters: Per-master measured results by name.
        dram: Memory-controller results.
        critical_names: Names of the run's critical masters (kept so
            :meth:`critical` works without the live platform).
        reconfig_log: QoS reconfiguration events as plain dicts.
        monitor_bins: Dense per-bin byte counts of the spec's
            ``monitor_master`` over the completed bins of the run
            (None when no monitor was requested).
        monitor_bin_cycles: Bin width of :attr:`monitor_bins`.
    """

    elapsed: int
    masters: Dict[str, MasterResult]
    dram: DramResult
    critical_names: Tuple[str, ...] = ()
    reconfig_log: Tuple[Dict[str, Any], ...] = ()
    monitor_bins: Optional[Tuple[int, ...]] = None
    monitor_bin_cycles: Optional[int] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_result(
        cls,
        result: PlatformResult,
        monitor_bins: Optional[Tuple[int, ...]] = None,
        monitor_bin_cycles: Optional[int] = None,
    ) -> "RunSummary":
        """Snapshot a live :class:`PlatformResult` into plain data."""
        platform = result.platform
        return cls(
            elapsed=result.elapsed,
            masters=dict(result.masters),
            dram=result.dram,
            critical_names=tuple(platform.critical_names),
            reconfig_log=tuple(
                {
                    "master": e.master,
                    "requested_at": e.requested_at,
                    "effective_at": e.effective_at,
                    "budget_bytes": e.budget_bytes,
                }
                for e in platform.qos_manager.log
            ),
            monitor_bins=monitor_bins,
            monitor_bin_cycles=monitor_bin_cycles,
        )

    # ------------------------------------------------------------------
    # accessors (mirror PlatformResult so analyses accept either)
    # ------------------------------------------------------------------
    def master(self, name: str) -> MasterResult:
        """Results of one master by name."""
        try:
            return self.masters[name]
        except KeyError:
            raise ConfigError(f"no results for master {name!r}") from None

    def critical(self) -> MasterResult:
        """Results of the (single) critical master."""
        if len(self.critical_names) != 1:
            raise ConfigError(
                "expected exactly one critical master, found "
                f"{list(self.critical_names)}"
            )
        return self.master(self.critical_names[0])

    def critical_runtime(self) -> int:
        """Completion time of the critical master's work quantum."""
        result = self.critical()
        if result.finished_at is None:
            raise ConfigError(
                f"critical master {result.name!r} did not finish; "
                "raise max_cycles"
            )
        return result.finished_at

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data encoding (JSON-able, reversible).

        The ``elapsed`` / ``masters`` / ``dram`` / ``reconfig_log``
        keys match the historical ``PlatformResult.to_dict`` layout.
        """
        data: Dict[str, Any] = {
            "elapsed": self.elapsed,
            "masters": {name: asdict(m) for name, m in self.masters.items()},
            "dram": asdict(self.dram),
            "critical_names": list(self.critical_names),
            "reconfig_log": [dict(e) for e in self.reconfig_log],
        }
        if self.monitor_bins is not None:
            data["monitor_bins"] = list(self.monitor_bins)
            data["monitor_bin_cycles"] = self.monitor_bin_cycles
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        try:
            bins = data.get("monitor_bins")
            return cls(
                elapsed=data["elapsed"],
                masters={
                    name: MasterResult(**m)
                    for name, m in data["masters"].items()
                },
                dram=DramResult(**data["dram"]),
                critical_names=tuple(data.get("critical_names", ())),
                reconfig_log=tuple(
                    dict(e) for e in data.get("reconfig_log", ())
                ),
                monitor_bins=None if bins is None else tuple(bins),
                monitor_bin_cycles=data.get("monitor_bin_cycles"),
            )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed run summary data: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSummary":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
