"""Base class for traffic-generating masters."""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError
from repro.sim.kernel import Phase, Simulator
from repro.sim.stats import StatSet
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction


class Master:
    """A component that drives transactions into one master port.

    Subclasses implement :meth:`_start` (schedule initial activity)
    and :meth:`_on_response` (react to completions).  The base class
    wires the port callback, tracks issue/finish bookkeeping and
    offers :meth:`issue` as the single way to create traffic.
    """

    def __init__(self, sim: Simulator, port: MasterPort) -> None:
        self.sim = sim
        self.port = port
        self.name = port.name
        self.stats = StatSet(f"{port.name}.master")
        self.finished_at: Optional[int] = None
        #: Optional callback ``fn(cycle)`` invoked once when the
        #: configured work completes.
        self.on_finish = None
        self._started = False
        if port.on_response is not None:
            raise ProtocolError(f"port {port.name!r} already has a master")
        port.on_response = self._on_response

    # ------------------------------------------------------------------
    # public control
    # ------------------------------------------------------------------
    def start(self, at: int = 0) -> None:
        """Begin generating traffic at cycle ``at``."""
        if self._started:
            raise ProtocolError(f"master {self.name!r} started twice")
        self._started = True
        self.sim.schedule_at(
            max(at, self.sim.now), self._start, priority=Phase.MASTER
        )

    @property
    def done(self) -> bool:
        """True once the master has finished its configured work."""
        return self.finished_at is not None

    # ------------------------------------------------------------------
    # subclass interface
    # ------------------------------------------------------------------
    def _start(self) -> None:
        raise NotImplementedError

    def _on_response(self, txn: Transaction) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def issue(
        self,
        is_write: bool,
        addr: int,
        burst_len: int,
        bytes_per_beat: int = 16,
        qos: int = 0,
    ) -> Transaction:
        """Create a transaction stamped at the current cycle and submit it."""
        txn = Transaction(
            master=self.name,
            is_write=is_write,
            addr=addr,
            burst_len=burst_len,
            bytes_per_beat=bytes_per_beat,
            qos=qos,
            created=self.sim.now,
        )
        self.stats.counter("issued").add()
        self.stats.counter("issued_bytes").add(txn.nbytes)
        self.port.submit(txn)
        return txn

    def _finish(self) -> None:
        """Record completion of the configured work (idempotent)."""
        if self.finished_at is None:
            self.finished_at = self.sim.now
            if self.on_finish is not None:
                self.on_finish(self.finished_at)
