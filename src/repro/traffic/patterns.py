"""Address stream generators.

A pattern produces the byte address of each successive access inside a
fixed region.  The three shapes cover the locality envelope that
matters for DRAM behaviour:

* :class:`SequentialPattern` -- maximal row-buffer locality (streaming
  DMA, memcpy).
* :class:`StridedPattern` -- periodic row changes (column-major
  matrices, FFT butterflies).
* :class:`RandomPattern` -- minimal locality (pointer chasing, hash
  joins).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigError
from repro.sim.rng import Rng, component_rng

try:  # numpy accelerates block generation; the scalar paths are exact
    # fallbacks, so environments without it lose only speed.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Block sizes below this stay on the scalar path (array round-trip
#: overhead beats the vector win for short blocks).
_VECTOR_MIN = 32


class AddressPattern:
    """Base class: an infinite stream of aligned addresses."""

    def next_addr(self) -> int:
        """Return the next byte address in the stream."""
        raise NotImplementedError

    def next_addr_block(self, n: int) -> List[int]:
        """Return the next ``n`` addresses, advancing the stream.

        Exactly equivalent to ``n`` calls of :meth:`next_addr` --
        same addresses, same end state, and (for stochastic patterns)
        the same RNG draws in the same order.  Subclasses override
        with vectorized or batched implementations; this default is
        the correctness oracle they are tested against.
        """
        next_addr = self.next_addr
        return [next_addr() for _ in range(n)]

    def reset(self) -> None:
        """Restart the stream from its initial state."""
        raise NotImplementedError


def _check_region(base: int, extent: int, access_bytes: int) -> None:
    if base < 0:
        raise ConfigError(f"base must be non-negative, got {base:#x}")
    if extent <= 0:
        raise ConfigError(f"extent must be positive, got {extent}")
    if access_bytes <= 0:
        raise ConfigError(f"access size must be positive, got {access_bytes}")
    if access_bytes > extent:
        raise ConfigError(
            f"access size {access_bytes} larger than region extent {extent}"
        )


class SequentialPattern(AddressPattern):
    """Linear walk over ``[base, base + extent)``, wrapping at the end.

    Args:
        base: Region start address.
        extent: Region size in bytes.
        access_bytes: Bytes consumed per access (the advance step).
    """

    def __init__(self, base: int, extent: int, access_bytes: int) -> None:
        _check_region(base, extent, access_bytes)
        self.base = base
        self.extent = extent
        self.access_bytes = access_bytes
        self._offset = 0

    def next_addr(self) -> int:
        addr = self.base + self._offset
        self._offset += self.access_bytes
        if self._offset + self.access_bytes > self.extent:
            self._offset = 0
        return addr

    def next_addr_block(self, n: int) -> List[int]:
        """Vectorized block: the linear walk is a closed-form modular
        ramp (``slots`` valid offsets per period), so the whole block
        is one numpy expression; integer arithmetic is exact, so the
        result is bit-equal to ``n`` scalar calls."""
        access = self.access_bytes
        slots = self.extent // access
        start = self._offset // access
        if _np is not None and n >= _VECTOR_MIN:
            ramp = _np.arange(start, start + n, dtype=_np.int64)
            addrs = ((ramp % slots) * access + self.base).tolist()
        else:
            base = self.base
            addrs = [base + ((start + i) % slots) * access for i in range(n)]
        self._offset = ((start + n) % slots) * access
        return addrs

    def reset(self) -> None:
        self._offset = 0


class StridedPattern(AddressPattern):
    """Walk with a fixed stride, wrapping inside the region.

    A stride larger than the DRAM row size forces a row change on
    every access (worst-case locality with a regular shape).

    Args:
        base: Region start address.
        extent: Region size in bytes.
        stride: Bytes between consecutive accesses.
        access_bytes: Bytes read/written per access.
    """

    def __init__(self, base: int, extent: int, stride: int, access_bytes: int) -> None:
        _check_region(base, extent, access_bytes)
        if stride <= 0:
            raise ConfigError(f"stride must be positive, got {stride}")
        self.base = base
        self.extent = extent
        self.stride = stride
        self.access_bytes = access_bytes
        self._offset = 0
        self._lane = 0

    def next_addr(self) -> int:
        addr = self.base + self._offset
        next_offset = self._offset + self.stride
        if next_offset + self.access_bytes > self.extent:
            # Next pass starts one access further in, so successive
            # sweeps touch different addresses (like walking columns).
            self._lane = (self._lane + self.access_bytes) % self.stride
            next_offset = self._lane
        self._offset = next_offset
        return addr

    def next_addr_block(self, n: int) -> List[int]:
        """Batched block: within one sweep the stride walk is an
        arithmetic range, so the block is generated one whole pass at
        a time (a C-level ``range`` extend) with the lane rotation
        applied between passes -- identical addresses and end state to
        ``n`` scalar calls, including the degenerate short-region
        sweeps of one access each."""
        out: List[int] = []
        base = self.base
        stride = self.stride
        access = self.access_bytes
        extent = self.extent
        while n > 0:
            x = self._offset
            # Emissions left in this pass: the largest m with
            # x + (m-1)*stride still emitted before the rotation check
            # trips.  Clamped to 1 for offsets already past the edge
            # (the scalar walk emits them too, then rotates).
            m = (extent - access - x) // stride + 1
            if m < 1:
                m = 1
            if m > n:
                out.extend(range(base + x, base + x + n * stride, stride))
                self._offset = x + n * stride
                return out
            out.extend(range(base + x, base + x + m * stride, stride))
            self._lane = (self._lane + access) % stride
            self._offset = self._lane
            n -= m
        return out

    def reset(self) -> None:
        self._offset = 0
        self._lane = 0


class RandomPattern(AddressPattern):
    """Uniform random aligned addresses inside the region.

    Args:
        base: Region start address.
        extent: Region size in bytes.
        access_bytes: Bytes per access; addresses are aligned to it.
        rng: Deterministic generator (see
            :func:`repro.sim.rng.component_rng`).
    """

    def __init__(
        self,
        base: int,
        extent: int,
        access_bytes: int,
        rng: Optional[Rng] = None,
    ) -> None:
        _check_region(base, extent, access_bytes)
        self.base = base
        self.extent = extent
        self.access_bytes = access_bytes
        self.rng = rng or component_rng(0, "random-pattern")
        self._slots = extent // access_bytes

    def next_addr(self) -> int:
        slot = self.rng.randrange(self._slots)
        return self.base + slot * self.access_bytes

    def next_addr_block(self, n: int) -> List[int]:
        """Batched block: the draws must come from the injected RNG's
        sequential stream (numpy cannot reproduce ``random.Random``),
        so the win here is hoisting the attribute lookups out of the
        per-request callback, not vectorizing the draws."""
        base = self.base
        access = self.access_bytes
        slots = self._slots
        randrange = self.rng.randrange
        return [base + randrange(slots) * access for _ in range(n)]

    def reset(self) -> None:
        # Randomness is owned by the injected RNG; reset is a no-op by
        # design (re-seed the RNG for reproducible replays).
        pass


def make_pattern(
    kind: str,
    base: int,
    extent: int,
    access_bytes: int,
    stride: Optional[int] = None,
    rng: Optional[Rng] = None,
) -> AddressPattern:
    """Factory for the three pattern shapes.

    Args:
        kind: ``"sequential"``, ``"strided"`` or ``"random"``.
        base / extent / access_bytes: Region geometry.
        stride: Required for ``"strided"``.
        rng: Required for reproducible ``"random"`` streams.
    """
    if kind == "sequential":
        return SequentialPattern(base, extent, access_bytes)
    if kind == "strided":
        if stride is None:
            raise ConfigError("strided pattern requires a stride")
        return StridedPattern(base, extent, stride, access_bytes)
    if kind == "random":
        return RandomPattern(base, extent, access_bytes, rng)
    raise ConfigError(f"unknown pattern kind {kind!r}")
