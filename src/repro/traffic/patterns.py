"""Address stream generators.

A pattern produces the byte address of each successive access inside a
fixed region.  The three shapes cover the locality envelope that
matters for DRAM behaviour:

* :class:`SequentialPattern` -- maximal row-buffer locality (streaming
  DMA, memcpy).
* :class:`StridedPattern` -- periodic row changes (column-major
  matrices, FFT butterflies).
* :class:`RandomPattern` -- minimal locality (pointer chasing, hash
  joins).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.sim.rng import Rng, component_rng


class AddressPattern:
    """Base class: an infinite stream of aligned addresses."""

    def next_addr(self) -> int:
        """Return the next byte address in the stream."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restart the stream from its initial state."""
        raise NotImplementedError


def _check_region(base: int, extent: int, access_bytes: int) -> None:
    if base < 0:
        raise ConfigError(f"base must be non-negative, got {base:#x}")
    if extent <= 0:
        raise ConfigError(f"extent must be positive, got {extent}")
    if access_bytes <= 0:
        raise ConfigError(f"access size must be positive, got {access_bytes}")
    if access_bytes > extent:
        raise ConfigError(
            f"access size {access_bytes} larger than region extent {extent}"
        )


class SequentialPattern(AddressPattern):
    """Linear walk over ``[base, base + extent)``, wrapping at the end.

    Args:
        base: Region start address.
        extent: Region size in bytes.
        access_bytes: Bytes consumed per access (the advance step).
    """

    def __init__(self, base: int, extent: int, access_bytes: int) -> None:
        _check_region(base, extent, access_bytes)
        self.base = base
        self.extent = extent
        self.access_bytes = access_bytes
        self._offset = 0

    def next_addr(self) -> int:
        addr = self.base + self._offset
        self._offset += self.access_bytes
        if self._offset + self.access_bytes > self.extent:
            self._offset = 0
        return addr

    def reset(self) -> None:
        self._offset = 0


class StridedPattern(AddressPattern):
    """Walk with a fixed stride, wrapping inside the region.

    A stride larger than the DRAM row size forces a row change on
    every access (worst-case locality with a regular shape).

    Args:
        base: Region start address.
        extent: Region size in bytes.
        stride: Bytes between consecutive accesses.
        access_bytes: Bytes read/written per access.
    """

    def __init__(self, base: int, extent: int, stride: int, access_bytes: int) -> None:
        _check_region(base, extent, access_bytes)
        if stride <= 0:
            raise ConfigError(f"stride must be positive, got {stride}")
        self.base = base
        self.extent = extent
        self.stride = stride
        self.access_bytes = access_bytes
        self._offset = 0
        self._lane = 0

    def next_addr(self) -> int:
        addr = self.base + self._offset
        next_offset = self._offset + self.stride
        if next_offset + self.access_bytes > self.extent:
            # Next pass starts one access further in, so successive
            # sweeps touch different addresses (like walking columns).
            self._lane = (self._lane + self.access_bytes) % self.stride
            next_offset = self._lane
        self._offset = next_offset
        return addr

    def reset(self) -> None:
        self._offset = 0
        self._lane = 0


class RandomPattern(AddressPattern):
    """Uniform random aligned addresses inside the region.

    Args:
        base: Region start address.
        extent: Region size in bytes.
        access_bytes: Bytes per access; addresses are aligned to it.
        rng: Deterministic generator (see
            :func:`repro.sim.rng.component_rng`).
    """

    def __init__(
        self,
        base: int,
        extent: int,
        access_bytes: int,
        rng: Optional[Rng] = None,
    ) -> None:
        _check_region(base, extent, access_bytes)
        self.base = base
        self.extent = extent
        self.access_bytes = access_bytes
        self.rng = rng or component_rng(0, "random-pattern")
        self._slots = extent // access_bytes

    def next_addr(self) -> int:
        slot = self.rng.randrange(self._slots)
        return self.base + slot * self.access_bytes

    def reset(self) -> None:
        # Randomness is owned by the injected RNG; reset is a no-op by
        # design (re-seed the RNG for reproducible replays).
        pass


def make_pattern(
    kind: str,
    base: int,
    extent: int,
    access_bytes: int,
    stride: Optional[int] = None,
    rng: Optional[Rng] = None,
) -> AddressPattern:
    """Factory for the three pattern shapes.

    Args:
        kind: ``"sequential"``, ``"strided"`` or ``"random"``.
        base / extent / access_bytes: Region geometry.
        stride: Required for ``"strided"``.
        rng: Required for reproducible ``"random"`` streams.
    """
    if kind == "sequential":
        return SequentialPattern(base, extent, access_bytes)
    if kind == "strided":
        if stride is None:
            raise ConfigError("strided pattern requires a stride")
        return StridedPattern(base, extent, stride, access_bytes)
    if kind == "random":
        return RandomPattern(base, extent, access_bytes, rng)
    raise ConfigError(f"unknown pattern kind {kind!r}")
