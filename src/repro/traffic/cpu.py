"""Latency-sensitive CPU core model.

The critical actor in every experiment.  A :class:`CpuCore` models a
processor executing a loop whose progress is gated by cache-miss
latency: each "iteration" performs one cache-line transfer and then
``think_cycles`` of computation that *depends* on the returned data.
``mlp`` independent slots model the core's memory-level parallelism
(out-of-order cores overlap a few misses; ``mlp=1`` is a fully
dependent pointer chase).

Because progress is latency-bound rather than bandwidth-bound, the
core's completion time directly exposes interference on the shared
memory path -- the quantity the reproduced paper's regulation
protects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.traffic.master import Master
from repro.traffic.patterns import AddressPattern


@dataclass
class CpuConfig:
    """Parameters of the core's memory behaviour.

    Attributes:
        pattern: Address stream of the misses.
        num_accesses: Total cache-line transfers to perform (the
            fixed work quantum used for slowdown measurements);
            ``None`` runs forever.
        think_cycles: Computation cycles between a response and the
            next dependent miss of the same slot.
        mlp: Memory-level parallelism (concurrent independent slots).
        line_bytes: Cache-line size.
        bytes_per_beat: AXI beat width of the core's port.
        write_ratio: Fraction of accesses that are writes (0..1);
            writes are modelled as blocking like reads (write-allocate
            linefill followed by dirty eviction is dominated by the
            fill latency).
        qos: AXI QoS value stamped on the core's transactions.
    """

    pattern: AddressPattern = field(default=None)  # type: ignore[assignment]
    num_accesses: Optional[int] = 10_000
    think_cycles: int = 30
    mlp: int = 2
    line_bytes: int = 64
    bytes_per_beat: int = 16
    write_ratio: float = 0.0
    qos: int = 0

    def __post_init__(self) -> None:
        if self.pattern is None:
            raise ConfigError("CpuConfig requires an address pattern")
        if self.num_accesses is not None and self.num_accesses < 1:
            raise ConfigError("num_accesses must be >= 1 or None")
        if self.think_cycles < 0:
            raise ConfigError("think_cycles must be >= 0")
        if self.mlp < 1:
            raise ConfigError("mlp must be >= 1")
        if self.line_bytes % self.bytes_per_beat:
            raise ConfigError(
                f"line_bytes {self.line_bytes} not a multiple of beat width "
                f"{self.bytes_per_beat}"
            )
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigError("write_ratio must be in [0, 1]")


class CpuCore(Master):
    """A latency-sensitive core issuing dependent cache-line misses."""

    def __init__(
        self,
        sim: Simulator,
        port: MasterPort,
        config: CpuConfig,
        on_finish: Optional[Callable[[int], None]] = None,
    ) -> None:
        super().__init__(sim, port)
        self.config = config
        if on_finish is not None:
            self.on_finish = on_finish
        self._issued = 0
        self._completed = 0
        self._write_accumulator = 0.0
        self._burst_len = config.line_bytes // config.bytes_per_beat

    # ------------------------------------------------------------------
    # Master interface
    # ------------------------------------------------------------------
    def _start(self) -> None:
        slots = self.config.mlp
        if self.config.num_accesses is not None:
            slots = min(slots, self.config.num_accesses)
        for _ in range(slots):
            self._issue_next()

    def _on_response(self, txn: Transaction) -> None:
        self._completed += 1
        self.stats.counter("iterations").add()
        if self._all_work_issued():
            if self._completed >= (self.config.num_accesses or 0):
                self._finish()
            return
        # The next access of this slot depends on the returned data:
        # it can only issue after the think phase.
        if self.config.think_cycles:
            self.sim.schedule(self.config.think_cycles, self._issue_next)
        else:
            self._issue_next()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _all_work_issued(self) -> bool:
        limit = self.config.num_accesses
        return limit is not None and self._issued >= limit

    def _next_is_write(self) -> bool:
        # Deterministic Bresenham-style mixing of writes at the
        # configured ratio (no RNG needed).
        self._write_accumulator += self.config.write_ratio
        if self._write_accumulator >= 1.0:
            self._write_accumulator -= 1.0
            return True
        return False

    def _issue_next(self) -> None:
        if self._all_work_issued():
            return
        self._issued += 1
        self.issue(
            is_write=self._next_is_write(),
            addr=self.config.pattern.next_addr(),
            burst_len=self._burst_len,
            bytes_per_beat=self.config.bytes_per_beat,
            qos=self.config.qos,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def completed_accesses(self) -> int:
        return self._completed

    def runtime(self) -> int:
        """Cycles from start to finishing the configured work."""
        if self.finished_at is None:
            raise ConfigError(f"core {self.name!r} has not finished its work")
        return self.finished_at
