"""Kernel-shaped workload library.

The reproduced paper evaluates with memory-intensive kernels running
on the host cores and on FPGA accelerators.  Without the original
binaries, we model each kernel by its *memory access envelope* --
pattern shape, burstiness, read/write mix and memory-level
parallelism -- which is what determines interference and regulation
behaviour at the DRAM.  Each entry documents the envelope choice.

Use :func:`make_workload` to instantiate a named workload on a port::

    master = make_workload("memcpy", sim, port, base=0x1000_0000,
                           extent=8 << 20, seed=7)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.sim.rng import component_rng
from repro.axi.port import MasterPort
from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.arrivals import OpenLoopConfig, OpenLoopMaster
from repro.traffic.cpu import CpuConfig, CpuCore
from repro.traffic.master import Master
from repro.traffic.patterns import RandomPattern, SequentialPattern, StridedPattern

BuilderFn = Callable[[Simulator, MasterPort, int, int, int, Optional[int]], Master]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload with its access-envelope documentation.

    Attributes:
        name: Registry key.
        kind: ``"cpu"`` (latency-sensitive) or ``"accel"``
            (bandwidth-bound DMA).
        description: The kernel this envelope stands in for.
        builder: Factory ``(sim, port, base, extent, seed, work) -> Master``
            where ``work`` bounds the total accesses (cpu) or bytes
            (accel), ``None`` = unbounded.
    """

    name: str
    kind: str
    description: str
    builder: BuilderFn


def _memcpy(sim, port, base, extent, seed, work) -> Master:
    # memcpy: two interleaved sequential streams, one read one write;
    # modelled as a sequential burst stream with 50% writes.
    pattern = SequentialPattern(base, extent, 256)
    cfg = AcceleratorConfig(
        pattern=pattern, burst_beats=16, write_ratio=0.5, total_bytes=work
    )
    return StreamAccelerator(sim, port, cfg)


def _stream_read(sim, port, base, extent, seed, work) -> Master:
    # STREAM-like pure read bandwidth hog: long sequential read bursts.
    pattern = SequentialPattern(base, extent, 256)
    cfg = AcceleratorConfig(
        pattern=pattern, burst_beats=16, write_ratio=0.0, total_bytes=work
    )
    return StreamAccelerator(sim, port, cfg)


def _stream_write(sim, port, base, extent, seed, work) -> Master:
    # Pure write stream (e.g. a camera/video DMA writing frames).
    pattern = SequentialPattern(base, extent, 256)
    cfg = AcceleratorConfig(
        pattern=pattern, burst_beats=16, write_ratio=1.0, total_bytes=work
    )
    return StreamAccelerator(sim, port, cfg)


def _matmul_stream(sim, port, base, extent, seed, work) -> Master:
    # Tiled matmul accelerator: DMA bursts of tiles, then a compute
    # phase roughly as long as the transfer -> 50% duty cycle.
    pattern = SequentialPattern(base, extent, 256)
    cfg = AcceleratorConfig(
        pattern=pattern,
        burst_beats=16,
        write_ratio=0.25,
        total_bytes=work,
        active_cycles=2000,
        idle_cycles=2000,
    )
    return StreamAccelerator(sim, port, cfg)


def _fft_stride(sim, port, base, extent, seed, work) -> Master:
    # FFT butterflies: strided accesses that change DRAM row often;
    # stride of 4 KiB defeats the row buffer.
    pattern = StridedPattern(base, extent, stride=4096, access_bytes=256)
    cfg = AcceleratorConfig(
        pattern=pattern, burst_beats=16, write_ratio=0.5, total_bytes=work
    )
    return StreamAccelerator(sim, port, cfg)


def _open_loop_stream(sim, port, base, extent, seed, work) -> Master:
    # Interrupt-driven sensor/telemetry DMA: short bursts arrive on an
    # external Poisson clock whatever the congestion (open loop), so
    # under regulation they pile up in the port queue instead of
    # self-throttling.  The fast offered rate makes this the
    # regulation-bound steady-streaming shape the fast-forward engine
    # targets (and the bench_smoke scenario that measures it).
    pattern = SequentialPattern(base, extent, 64)
    requests = None if work is None else max(1, work // 64)
    cfg = OpenLoopConfig(
        pattern=pattern,
        arrival="poisson",
        mean_gap_cycles=2.0,
        burst_len=4,
        bytes_per_beat=16,
        write_ratio=0.0,
        num_requests=requests,
        rng=component_rng(seed, port.name),
    )
    return OpenLoopMaster(sim, port, cfg)


def _pointer_chase(sim, port, base, extent, seed, work) -> Master:
    # Linked-list traversal on a core: one dependent miss at a time.
    pattern = RandomPattern(base, extent, 64, component_rng(seed, port.name))
    cfg = CpuConfig(pattern=pattern, num_accesses=work, think_cycles=10, mlp=1)
    return CpuCore(sim, port, cfg)


def _stencil(sim, port, base, extent, seed, work) -> Master:
    # Stencil sweep on a core: streaming lines with a little compute
    # and moderate MLP from the hardware prefetcher.
    pattern = SequentialPattern(base, extent, 64)
    cfg = CpuConfig(
        pattern=pattern, num_accesses=work, think_cycles=20, mlp=4, write_ratio=0.3
    )
    return CpuCore(sim, port, cfg)


def _video_scale(sim, port, base, extent, seed, work) -> Master:
    # Video scaler/rotator: reads frames sequentially, writes them
    # back with a stride (transposed lines) -> mixed locality.
    pattern = StridedPattern(base, extent, stride=2048, access_bytes=256)
    cfg = AcceleratorConfig(
        pattern=pattern, burst_beats=16, write_ratio=0.5, total_bytes=work
    )
    return StreamAccelerator(sim, port, cfg)


def _hash_join(sim, port, base, extent, seed, work) -> Master:
    # Hash-join probe side: random lookups with moderate MLP and a
    # little per-tuple compute -- locality-hostile CPU traffic.
    pattern = RandomPattern(base, extent, 64, component_rng(seed, port.name))
    cfg = CpuConfig(pattern=pattern, num_accesses=work, think_cycles=15,
                    mlp=4, write_ratio=0.1)
    return CpuCore(sim, port, cfg)


def _spmv(sim, port, base, extent, seed, work) -> Master:
    # Sparse matrix-vector multiply: streaming matrix values with
    # random gathers into the dense vector; modelled as a random-
    # dominant mix (the gathers set the memory behaviour).
    pattern = RandomPattern(base, extent, 64, component_rng(seed, port.name))
    cfg = CpuConfig(pattern=pattern, num_accesses=work, think_cycles=5,
                    mlp=6)
    return CpuCore(sim, port, cfg)


def _compute_mix(sim, port, base, extent, seed, work) -> Master:
    # A realistic critical task: substantial computation between
    # misses (e.g. control code with a warm L2), so only part of its
    # runtime is exposed to memory interference.
    pattern = SequentialPattern(base, extent, 64)
    cfg = CpuConfig(pattern=pattern, num_accesses=work, think_cycles=150, mlp=2)
    return CpuCore(sim, port, cfg)


def _latency_probe(sim, port, base, extent, seed, work) -> Master:
    # The paper's "task under test": a latency-critical reader with
    # modest MLP and real compute between misses.
    pattern = SequentialPattern(base, extent, 64)
    cfg = CpuConfig(pattern=pattern, num_accesses=work, think_cycles=30, mlp=2)
    return CpuCore(sim, port, cfg)


WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec("memcpy", "accel", "bulk copy DMA (50% writes)", _memcpy),
        WorkloadSpec("stream_read", "accel", "pure read bandwidth hog", _stream_read),
        WorkloadSpec("stream_write", "accel", "pure write DMA stream", _stream_write),
        WorkloadSpec(
            "matmul_stream", "accel", "tiled matmul with 50% DMA duty", _matmul_stream
        ),
        WorkloadSpec("fft_stride", "accel", "strided FFT-like traffic", _fft_stride),
        WorkloadSpec(
            "open_loop_stream", "accel",
            "interrupt-driven open-loop burst stream (Poisson arrivals)",
            _open_loop_stream,
        ),
        WorkloadSpec(
            "pointer_chase", "cpu", "dependent-load linked-list walk", _pointer_chase
        ),
        WorkloadSpec("stencil", "cpu", "streaming stencil sweep", _stencil),
        WorkloadSpec(
            "compute_mix", "cpu", "compute-heavy task with periodic misses",
            _compute_mix,
        ),
        WorkloadSpec(
            "video_scale", "accel", "frame scaler: strided read/write mix",
            _video_scale,
        ),
        WorkloadSpec(
            "hash_join", "cpu", "random-probe hash join (locality-hostile)",
            _hash_join,
        ),
        WorkloadSpec(
            "spmv", "cpu", "sparse matrix-vector gathers (high MLP)", _spmv
        ),
        WorkloadSpec(
            "latency_probe", "cpu", "latency-critical reader (task under test)",
            _latency_probe,
        ),
    )
}


def make_workload(
    name: str,
    sim: Simulator,
    port: MasterPort,
    base: int,
    extent: int,
    seed: int = 0,
    work: Optional[int] = None,
) -> Master:
    """Instantiate a named workload on ``port``.

    Args:
        name: Key in :data:`WORKLOADS`.
        sim: Simulation kernel.
        port: The master port to drive.
        base: Start of the workload's memory region.
        extent: Region size in bytes.
        seed: Experiment seed (used by stochastic patterns).
        work: Work bound -- total accesses for ``cpu`` workloads,
            total bytes for ``accel`` workloads; ``None`` = unbounded.

    Returns:
        A started-ready :class:`~repro.traffic.master.Master`.
    """
    try:
        spec = WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return spec.builder(sim, port, base, extent, seed, work)
