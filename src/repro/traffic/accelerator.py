"""Streaming DMA accelerator model (the bandwidth hog).

An FPGA accelerator's memory interface is typically a DMA engine that
moves long bursts and keeps the port's full outstanding capability in
flight -- it is bandwidth-bound, not latency-bound.  This is the
best-effort actor whose traffic the paper's regulator throttles.

Features:

* configurable burst length, read/write mix and address pattern;
* an in-flight target (defaults to the port's outstanding limit);
* an optional duty cycle (active/idle phases) to model accelerators
  with compute phases between DMA phases;
* an optional byte budget after which the accelerator stops (for
  fixed-work completion-time experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.sim.kernel import Phase, Simulator
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.traffic.master import Master
from repro.traffic.patterns import AddressPattern


@dataclass
class AcceleratorConfig:
    """Parameters of a streaming accelerator.

    Attributes:
        pattern: Address stream (sequential for a classic DMA).
        burst_beats: Beats per burst (AXI ``AxLEN + 1``).
        bytes_per_beat: Beat width in bytes.
        write_ratio: Fraction of bursts that are writes.
        inflight_target: Submitted-but-uncompleted transaction target;
            ``None`` uses the port's ``max_outstanding``.
        total_bytes: Stop after moving this many bytes (``None`` =
            run forever).
        active_cycles / idle_cycles: Optional duty cycle; both zero
            means always active.
        qos: AXI QoS value for the accelerator's transactions.
    """

    pattern: AddressPattern = field(default=None)  # type: ignore[assignment]
    burst_beats: int = 16
    bytes_per_beat: int = 16
    write_ratio: float = 0.0
    inflight_target: Optional[int] = None
    total_bytes: Optional[int] = None
    active_cycles: int = 0
    idle_cycles: int = 0
    qos: int = 0

    def __post_init__(self) -> None:
        if self.pattern is None:
            raise ConfigError("AcceleratorConfig requires an address pattern")
        if not 1 <= self.burst_beats <= 256:
            raise ConfigError("burst_beats must be 1..256")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigError("write_ratio must be in [0, 1]")
        if self.inflight_target is not None and self.inflight_target < 1:
            raise ConfigError("inflight_target must be >= 1 or None")
        if self.total_bytes is not None and self.total_bytes < 1:
            raise ConfigError("total_bytes must be >= 1 or None")
        if (self.active_cycles > 0) != (self.idle_cycles > 0):
            raise ConfigError("duty cycle requires both active and idle cycles")
        if self.active_cycles < 0 or self.idle_cycles < 0:
            raise ConfigError("duty-cycle phases must be non-negative")


class StreamAccelerator(Master):
    """A DMA-style master that saturates its port unless regulated."""

    def __init__(
        self, sim: Simulator, port: MasterPort, config: AcceleratorConfig
    ) -> None:
        super().__init__(sim, port)
        self.config = config
        self._inflight_target = config.inflight_target or port.config.max_outstanding
        self._inflight = 0
        self._issued_bytes = 0
        self._completed_bytes = 0
        self._write_accumulator = 0.0
        self._active = True

    # ------------------------------------------------------------------
    # Master interface
    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self.config.active_cycles:
            self.sim.schedule(
                self.config.active_cycles, self._enter_idle, priority=Phase.MASTER
            )
        self._fill()

    def _on_response(self, txn: Transaction) -> None:
        self._inflight -= 1
        self._completed_bytes += txn.nbytes
        if self._budget_exhausted():
            if self._inflight == 0:
                self._finish()
            return
        self._fill()

    # ------------------------------------------------------------------
    # duty cycle
    # ------------------------------------------------------------------
    def _enter_idle(self) -> None:
        if self._budget_exhausted():
            return  # work done; stop toggling phases
        self._active = False
        self.sim.schedule(
            self.config.idle_cycles, self._enter_active, priority=Phase.MASTER
        )

    def _enter_active(self) -> None:
        if self._budget_exhausted():
            return
        self._active = True
        self.sim.schedule(
            self.config.active_cycles, self._enter_idle, priority=Phase.MASTER
        )
        self._fill()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _budget_exhausted(self) -> bool:
        limit = self.config.total_bytes
        return limit is not None and self._issued_bytes >= limit

    def _next_is_write(self) -> bool:
        self._write_accumulator += self.config.write_ratio
        if self._write_accumulator >= 1.0:
            self._write_accumulator -= 1.0
            return True
        return False

    def _fill(self) -> None:
        """Top the pipeline up to the in-flight target."""
        while (
            self._active
            and self._inflight < self._inflight_target
            and not self._budget_exhausted()
        ):
            self._inflight += 1
            txn = self.issue(
                is_write=self._next_is_write(),
                addr=self.config.pattern.next_addr(),
                burst_len=self.config.burst_beats,
                bytes_per_beat=self.config.bytes_per_beat,
                qos=self.config.qos,
            )
            self._issued_bytes += txn.nbytes

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def moved_bytes(self) -> int:
        """Bytes whose responses have returned."""
        return self._completed_bytes

    def throughput_bytes_per_cycle(self, elapsed: int) -> float:
        if elapsed <= 0:
            raise ConfigError(f"elapsed must be positive, got {elapsed}")
        return self._completed_bytes / elapsed
