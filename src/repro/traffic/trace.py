"""Trace-replay traffic generation.

Replays a list of :class:`~repro.sim.trace.TraceRecord` objects
captured by a previous run (or synthesized offline).  Two replay
modes are supported:

* ``timed`` -- each transaction is issued at its recorded ``created``
  cycle (open-loop; arrival times do not react to congestion).
* ``asap`` -- transactions are issued back-to-back subject to the
  port's outstanding limit (closed-loop; preserves ordering only).

Timed replay is the standard way to re-inject a measured workload
under a *different* regulation scheme and compare latencies.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigError
from repro.sim.kernel import Phase, Simulator
from repro.sim.trace import TraceRecord
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.traffic.master import Master


class TraceReplayMaster(Master):
    """Replays recorded transactions through a port.

    Args:
        sim: Simulation kernel.
        port: Port to drive.
        records: Trace records to replay (any master name; addresses
            and sizes are preserved, the master name is rewritten to
            this port's name).
        mode: ``"timed"`` or ``"asap"``.
        bytes_per_beat: Beat width used to reconstruct burst lengths.
    """

    def __init__(
        self,
        sim: Simulator,
        port: MasterPort,
        records: Sequence[TraceRecord],
        mode: str = "timed",
        bytes_per_beat: int = 16,
    ) -> None:
        super().__init__(sim, port)
        if mode not in ("timed", "asap"):
            raise ConfigError(f"unknown replay mode {mode!r}")
        if not records:
            raise ConfigError("cannot replay an empty trace")
        self.mode = mode
        self.bytes_per_beat = bytes_per_beat
        self._records: List[TraceRecord] = sorted(records, key=lambda r: r.created)
        self._next_index = 0
        self._inflight = 0

    # ------------------------------------------------------------------
    # Master interface
    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self.mode == "timed":
            self._schedule_timed()
        else:
            self._fill_asap()

    def _on_response(self, txn: Transaction) -> None:
        self._inflight -= 1
        if self.mode == "asap":
            self._fill_asap()
        if self._next_index >= len(self._records) and self._inflight == 0:
            self._finish()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _burst_len(self, record: TraceRecord) -> int:
        beats = max(1, record.nbytes // self.bytes_per_beat)
        return min(beats, 256)

    def _issue_record(self, record: TraceRecord) -> None:
        self._inflight += 1
        self.issue(
            is_write=record.is_write,
            addr=record.addr,
            burst_len=self._burst_len(record),
            bytes_per_beat=self.bytes_per_beat,
        )

    def _schedule_timed(self) -> None:
        if self._next_index >= len(self._records):
            return
        record = self._records[self._next_index]
        at = max(record.created, self.sim.now)

        def fire() -> None:
            self._next_index += 1
            self._issue_record(record)
            self._schedule_timed()

        self.sim.schedule_at(at, fire, priority=Phase.MASTER)

    def _fill_asap(self) -> None:
        limit = self.port.config.max_outstanding
        while self._inflight < limit and self._next_index < len(self._records):
            record = self._records[self._next_index]
            self._next_index += 1
            self._issue_record(record)
