"""Traffic generation (substrate S4).

Masters model the two actor classes of the reproduced paper's
platform:

* :class:`repro.traffic.cpu.CpuCore` -- a latency-sensitive processor
  core with limited memory-level parallelism whose progress *depends*
  on individual miss latencies (the "critical task").
* :class:`repro.traffic.accelerator.StreamAccelerator` -- a DMA-driven
  FPGA accelerator that issues long bursts and keeps many transactions
  in flight (the "bandwidth hog" / best-effort actor).

:mod:`repro.traffic.workloads` composes them into kernel-shaped
workloads (memcpy, streaming matmul, strided FFT, pointer chase) and
:mod:`repro.traffic.trace` replays recorded traces.
"""

from repro.traffic.accelerator import AcceleratorConfig, StreamAccelerator
from repro.traffic.arrivals import OpenLoopConfig, OpenLoopMaster
from repro.traffic.cpu import CpuConfig, CpuCore
from repro.traffic.master import Master
from repro.traffic.patterns import (
    AddressPattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    make_pattern,
)
from repro.traffic.trace import TraceReplayMaster
from repro.traffic.workloads import WORKLOADS, WorkloadSpec, make_workload

__all__ = [
    "AcceleratorConfig",
    "StreamAccelerator",
    "OpenLoopConfig",
    "OpenLoopMaster",
    "CpuConfig",
    "CpuCore",
    "Master",
    "AddressPattern",
    "RandomPattern",
    "SequentialPattern",
    "StridedPattern",
    "make_pattern",
    "TraceReplayMaster",
    "WORKLOADS",
    "WorkloadSpec",
    "make_workload",
]
