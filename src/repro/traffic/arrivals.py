"""Open-loop traffic with stochastic arrivals.

Closed-loop masters (cores, DMA pipelines) self-throttle when the
memory system backs up.  Interrupt-driven and sensor traffic does
not: requests arrive on an external clock whatever the congestion,
and if the system cannot keep up, queues grow.  An
:class:`OpenLoopMaster` models that with Poisson (exponential
inter-arrival) or periodic-with-jitter processes.

Sweeping the offered load of an open-loop victim against regulated
background traffic yields the classic queueing curve (latency vs
load) that experiment E18 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.sim.kernel import Phase, Simulator
from repro.sim.rng import Rng
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.traffic.master import Master
from repro.traffic.patterns import AddressPattern

try:  # numpy accelerates block precompute; exact scalar fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

#: Arrivals precomputed per block.  Large enough to amortize the
#: vector/batch setup, small enough that endless processes bounded by
#: ``run(until=...)`` never pre-draw far past the horizon.
_ARRIVAL_BLOCK = 256


@dataclass
class OpenLoopConfig:
    """Parameters of an open-loop arrival process.

    Attributes:
        pattern: Address stream.
        arrival: ``"poisson"`` (exponential gaps) or ``"periodic"``
            (fixed period plus uniform jitter).
        mean_gap_cycles: Mean inter-arrival time.
        jitter_cycles: Uniform +/- jitter for ``periodic`` arrivals.
        burst_len: Beats per request.
        bytes_per_beat: Beat width.
        write_ratio: Fraction of writes (deterministic mixing).
        num_requests: Stop after this many arrivals (None = endless).
        rng: Deterministic generator (required for ``poisson`` or a
            non-zero jitter).
    """

    pattern: AddressPattern = field(default=None)  # type: ignore[assignment]
    arrival: str = "poisson"
    mean_gap_cycles: float = 200.0
    jitter_cycles: int = 0
    burst_len: int = 4
    bytes_per_beat: int = 16
    write_ratio: float = 0.0
    num_requests: Optional[int] = None
    rng: Optional[Rng] = None

    def __post_init__(self) -> None:
        if self.pattern is None:
            raise ConfigError("OpenLoopConfig requires an address pattern")
        if self.arrival not in ("poisson", "periodic"):
            raise ConfigError(f"unknown arrival process {self.arrival!r}")
        if self.mean_gap_cycles <= 0:
            raise ConfigError("mean_gap_cycles must be positive")
        if self.jitter_cycles < 0:
            raise ConfigError("jitter_cycles must be >= 0")
        if self.jitter_cycles >= self.mean_gap_cycles:
            raise ConfigError("jitter must be smaller than the mean gap")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigError("write_ratio must be in [0, 1]")
        if self.num_requests is not None and self.num_requests < 1:
            raise ConfigError("num_requests must be >= 1 or None")
        needs_rng = self.arrival == "poisson" or self.jitter_cycles > 0
        if needs_rng and self.rng is None:
            raise ConfigError(
                "stochastic arrivals need a seeded rng "
                "(see repro.sim.rng.component_rng)"
            )

    def offered_load_bytes_per_cycle(self) -> float:
        """The long-run rate the process *tries* to inject."""
        return self.burst_len * self.bytes_per_beat / self.mean_gap_cycles


class OpenLoopMaster(Master):
    """Issues requests on an external arrival clock (open loop).

    Arrivals are never withheld: if the port/regulator back-pressures,
    requests pile up in the port queue and their measured latency
    includes the queueing -- exactly what happens to interrupt-driven
    traffic on a congested SoC.

    Arrival times, addresses and read/write flags are precomputed in
    blocks of :data:`_ARRIVAL_BLOCK` (gaps drawn sequentially from the
    configured RNG so the stream order is exactly that of per-request
    draws, absolute times by cumulative sum, addresses through
    :meth:`AddressPattern.next_addr_block`); the per-arrival event
    callback then only indexes the precomputed vectors and schedules
    the next arrival at its already-known absolute cycle.
    """

    def __init__(
        self, sim: Simulator, port: MasterPort, config: OpenLoopConfig
    ) -> None:
        super().__init__(sim, port)
        self.config = config
        self._arrived = 0
        self._completed = 0
        self._write_accumulator = 0.0
        self._planned = 0  # arrivals with gaps already drawn
        self._block_base = 0  # absolute time of the last planned arrival
        self._times: List[int] = []
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._pos = 0
        #: Fast-forward support (repro.sim.fastforward): when tracking
        #: is enabled the master keeps a handle on its one pending
        #: arrival event so the engine can cancel it, emit the walk
        #: analytically, and reschedule the remainder.  Off by default;
        #: the per-arrival cost is a single bool test.
        self._ff_track = False
        self._pending_arrival = None

    # ------------------------------------------------------------------
    # Master interface
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._block_base = self.sim.now
        if self._refill():
            event = self.sim.schedule_at(
                self._times[0], self._arrive, priority=Phase.MASTER
            )
            if self._ff_track:
                self._pending_arrival = event

    def _on_response(self, txn: Transaction) -> None:
        self._completed += 1
        limit = self.config.num_requests
        if limit is not None and self._completed >= limit:
            self._finish()

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _next_gap(self) -> int:
        cfg = self.config
        if cfg.arrival == "poisson":
            return max(1, round(cfg.rng.expovariate(1.0 / cfg.mean_gap_cycles)))
        gap = cfg.mean_gap_cycles
        if cfg.jitter_cycles:
            gap += cfg.rng.uniform(-cfg.jitter_cycles, cfg.jitter_cycles)
        return max(1, round(gap))

    def _refill(self) -> bool:
        """Precompute the next block of arrivals; False when none remain.

        Determinism contract: a block refill performs *exactly* the
        RNG calls the per-request implementation would, in the same
        order.  Gap draws are sequential (``random.Random`` streams
        cannot be vectorized); only the exact integer cumulative sum
        is offloaded to numpy.  The write-mix accumulator keeps the
        original float-by-float update sequence, so its rounding --
        and therefore every read/write decision -- is unchanged.  When
        the address pattern shares the arrival RNG, gap and address
        draws are interleaved per request, again matching the
        per-request order.
        """
        cfg = self.config
        limit = cfg.num_requests
        if limit is None:
            n = _ARRIVAL_BLOCK
        else:
            n = min(_ARRIVAL_BLOCK, limit - self._planned)
        if n <= 0:
            return False
        pattern = cfg.pattern
        if getattr(pattern, "rng", None) is cfg.rng and cfg.rng is not None:
            # Shared RNG: the per-request order is gap, address, gap,
            # address, ...; block-drawing either stream whole would
            # reorder the draws.
            times: List[int] = []
            addrs: List[int] = []
            t = self._block_base
            next_addr = pattern.next_addr
            for _ in range(n):
                t += self._next_gap()
                times.append(t)
                addrs.append(next_addr())
        else:
            gaps = [self._next_gap() for _ in range(n)]
            if _np is not None and n >= 32:
                times = (
                    _np.cumsum(_np.asarray(gaps, dtype=_np.int64))
                    + self._block_base
                ).tolist()
            else:
                times = []
                t = self._block_base
                for gap in gaps:
                    t += gap
                    times.append(t)
            addrs = pattern.next_addr_block(n)
        writes: List[bool] = []
        acc = self._write_accumulator
        ratio = cfg.write_ratio
        for _ in range(n):
            acc += ratio
            if acc >= 1.0:
                acc -= 1.0
                writes.append(True)
            else:
                writes.append(False)
        self._write_accumulator = acc
        self._times = times
        self._addrs = addrs
        self._writes = writes
        self._pos = 0
        self._planned += n
        self._block_base = times[-1]
        return True

    def _arrive(self) -> None:
        pos = self._pos
        self._arrived += 1
        self.issue(
            is_write=self._writes[pos],
            addr=self._addrs[pos],
            burst_len=self.config.burst_len,
            bytes_per_beat=self.config.bytes_per_beat,
        )
        pos += 1
        self._pos = pos
        if pos < len(self._times):
            event = self.sim.schedule_at(
                self._times[pos], self._arrive, priority=Phase.MASTER
            )
        elif self._refill():
            event = self.sim.schedule_at(
                self._times[0], self._arrive, priority=Phase.MASTER
            )
        else:
            event = None  # stream exhausted: nothing pending
        if self._ff_track:
            self._pending_arrival = event

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def arrived(self) -> int:
        return self._arrived

    @property
    def backlog(self) -> int:
        """Arrived-but-uncompleted requests (queue growth indicator)."""
        return self._arrived - self._completed
