"""Open-loop traffic with stochastic arrivals.

Closed-loop masters (cores, DMA pipelines) self-throttle when the
memory system backs up.  Interrupt-driven and sensor traffic does
not: requests arrive on an external clock whatever the congestion,
and if the system cannot keep up, queues grow.  An
:class:`OpenLoopMaster` models that with Poisson (exponential
inter-arrival) or periodic-with-jitter processes.

Sweeping the offered load of an open-loop victim against regulated
background traffic yields the classic queueing curve (latency vs
load) that experiment E18 reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError
from repro.sim.kernel import Phase, Simulator
from repro.sim.rng import Rng
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.traffic.master import Master
from repro.traffic.patterns import AddressPattern


@dataclass
class OpenLoopConfig:
    """Parameters of an open-loop arrival process.

    Attributes:
        pattern: Address stream.
        arrival: ``"poisson"`` (exponential gaps) or ``"periodic"``
            (fixed period plus uniform jitter).
        mean_gap_cycles: Mean inter-arrival time.
        jitter_cycles: Uniform +/- jitter for ``periodic`` arrivals.
        burst_len: Beats per request.
        bytes_per_beat: Beat width.
        write_ratio: Fraction of writes (deterministic mixing).
        num_requests: Stop after this many arrivals (None = endless).
        rng: Deterministic generator (required for ``poisson`` or a
            non-zero jitter).
    """

    pattern: AddressPattern = field(default=None)  # type: ignore[assignment]
    arrival: str = "poisson"
    mean_gap_cycles: float = 200.0
    jitter_cycles: int = 0
    burst_len: int = 4
    bytes_per_beat: int = 16
    write_ratio: float = 0.0
    num_requests: Optional[int] = None
    rng: Optional[Rng] = None

    def __post_init__(self) -> None:
        if self.pattern is None:
            raise ConfigError("OpenLoopConfig requires an address pattern")
        if self.arrival not in ("poisson", "periodic"):
            raise ConfigError(f"unknown arrival process {self.arrival!r}")
        if self.mean_gap_cycles <= 0:
            raise ConfigError("mean_gap_cycles must be positive")
        if self.jitter_cycles < 0:
            raise ConfigError("jitter_cycles must be >= 0")
        if self.jitter_cycles >= self.mean_gap_cycles:
            raise ConfigError("jitter must be smaller than the mean gap")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigError("write_ratio must be in [0, 1]")
        if self.num_requests is not None and self.num_requests < 1:
            raise ConfigError("num_requests must be >= 1 or None")
        needs_rng = self.arrival == "poisson" or self.jitter_cycles > 0
        if needs_rng and self.rng is None:
            raise ConfigError(
                "stochastic arrivals need a seeded rng "
                "(see repro.sim.rng.component_rng)"
            )

    def offered_load_bytes_per_cycle(self) -> float:
        """The long-run rate the process *tries* to inject."""
        return self.burst_len * self.bytes_per_beat / self.mean_gap_cycles


class OpenLoopMaster(Master):
    """Issues requests on an external arrival clock (open loop).

    Arrivals are never withheld: if the port/regulator back-pressures,
    requests pile up in the port queue and their measured latency
    includes the queueing -- exactly what happens to interrupt-driven
    traffic on a congested SoC.
    """

    def __init__(
        self, sim: Simulator, port: MasterPort, config: OpenLoopConfig
    ) -> None:
        super().__init__(sim, port)
        self.config = config
        self._arrived = 0
        self._completed = 0
        self._write_accumulator = 0.0

    # ------------------------------------------------------------------
    # Master interface
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self._schedule_next_arrival()

    def _on_response(self, txn: Transaction) -> None:
        self._completed += 1
        limit = self.config.num_requests
        if limit is not None and self._completed >= limit:
            self._finish()

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _next_gap(self) -> int:
        cfg = self.config
        if cfg.arrival == "poisson":
            return max(1, round(cfg.rng.expovariate(1.0 / cfg.mean_gap_cycles)))
        gap = cfg.mean_gap_cycles
        if cfg.jitter_cycles:
            gap += cfg.rng.uniform(-cfg.jitter_cycles, cfg.jitter_cycles)
        return max(1, round(gap))

    def _next_is_write(self) -> bool:
        self._write_accumulator += self.config.write_ratio
        if self._write_accumulator >= 1.0:
            self._write_accumulator -= 1.0
            return True
        return False

    def _schedule_next_arrival(self) -> None:
        limit = self.config.num_requests
        if limit is not None and self._arrived >= limit:
            return
        self.sim.schedule(self._next_gap(), self._arrive, priority=Phase.MASTER)

    def _arrive(self) -> None:
        self._arrived += 1
        self.issue(
            is_write=self._next_is_write(),
            addr=self.config.pattern.next_addr(),
            burst_len=self.config.burst_len,
            bytes_per_beat=self.config.bytes_per_beat,
        )
        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def arrived(self) -> int:
        return self._arrived

    @property
    def backlog(self) -> int:
        """Arrived-but-uncompleted requests (queue growth indicator)."""
        return self._arrived - self._completed
