"""Ready-made platform configurations.

:func:`zcu102` models the evaluation board of the reproduced paper's
research line (Xilinx Zynq UltraScale+ ZCU102-class): a quad-core
ARM host and FPGA-fabric accelerators sharing one DDR channel through
the PS interconnect.  Model parameters (see DESIGN.md, section 3):

* fabric reference clock 250 MHz;
* 128-bit data path => 16 B/beat, channel peak 4 GB/s sustained
  (the effective per-port envelope of the PS DDR controller, not the
  raw DDR4 pin rate);
* DDR4-like timings scaled to fabric cycles, 8 banks, 2 KiB rows;
* CPU ports with small outstanding limits (A53 miss queues), FPGA
  ports with deep DMA pipelines.

Every experiment builds on this preset so results stay comparable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.config import ClockSpec
from repro.axi.interconnect import InterconnectConfig
from repro.dram.address_map import AddressMap
from repro.dram.controller import DramConfig
from repro.dram.timing import DramTiming
from repro.regulation.factory import RegulatorSpec
from repro.soc.platform import MasterSpec, PlatformConfig

#: Default region size carved out per master (keeps actors in
#: disjoint DRAM rows so interference is purely about shared
#: controller/bus resources, as in the paper's setup).
REGION_BYTES = 4 << 20

#: Base of the first master's region (above a reserved low range).
REGION_FLOOR = 0x1000_0000

#: Default work quantum of the critical core (cache-line transfers).
CRITICAL_ACCESSES = 20_000


def zcu102_clock() -> ClockSpec:
    return ClockSpec(freq_mhz=250.0)


def zcu102_dram(scheduler: str = "frfcfs") -> DramConfig:
    return DramConfig(
        timing=DramTiming(
            t_cas=14,
            t_rcd=14,
            t_rp=14,
            beat_cycles=1,
            bus_bytes_per_beat=16,
            rw_turnaround=6,
            t_refi=1950,
            t_rfc=88,
        ),
        address_map=AddressMap(num_banks=8, row_bytes=2048),
        scheduler=scheduler,
    )


def zcu102_interconnect() -> InterconnectConfig:
    return InterconnectConfig(
        arbiter="round_robin", addr_cycles=1, fwd_latency=4, resp_latency=4
    )


def zcu102(
    num_cpus: int = 1,
    num_accels: int = 4,
    cpu_workload: str = "latency_probe",
    accel_workload: str = "stream_read",
    cpu_work: Optional[int] = CRITICAL_ACCESSES,
    accel_regulator: Optional[RegulatorSpec] = None,
    cpu_regulator: Optional[RegulatorSpec] = None,
    arbiter: str = "round_robin",
    scheduler: str = "frfcfs",
    seed: int = 1,
) -> PlatformConfig:
    """Build the standard experiment platform.

    Args:
        num_cpus: Host cores; the first one (``cpu0``) is marked
            critical and bounded by ``cpu_work`` accesses.
        num_accels: FPGA accelerator masters (``acc0..N-1``),
            unbounded background traffic.
        cpu_workload / accel_workload: Workload names from
            :data:`repro.traffic.workloads.WORKLOADS`.
        cpu_work: Work quantum of each CPU core (accesses).
        accel_regulator: Regulation applied to *every* accelerator
            port (``None`` = unregulated).
        cpu_regulator: Regulation applied to CPU ports (normally
            ``None``: the critical core is the protected actor).
        arbiter: Interconnect arbitration policy.
        scheduler: DRAM scheduling policy.
        seed: Experiment seed.

    Returns:
        A :class:`~repro.soc.platform.PlatformConfig`.
    """
    if num_cpus < 1:
        raise ConfigError("need at least one CPU master")
    if num_accels < 0:
        raise ConfigError("num_accels must be >= 0")
    masters: List[MasterSpec] = []
    region = REGION_FLOOR
    for index in range(num_cpus):
        masters.append(
            MasterSpec(
                name=f"cpu{index}",
                workload=cpu_workload,
                region_base=region,
                region_extent=REGION_BYTES,
                work=cpu_work,
                max_outstanding=4,
                regulator=cpu_regulator,
                critical=(index == 0),
            )
        )
        region += REGION_BYTES
    for index in range(num_accels):
        masters.append(
            MasterSpec(
                name=f"acc{index}",
                workload=accel_workload,
                region_base=region,
                region_extent=REGION_BYTES,
                work=None,
                max_outstanding=8,
                regulator=accel_regulator,
            )
        )
        region += REGION_BYTES
    interconnect = zcu102_interconnect()
    if arbiter != interconnect.arbiter:
        interconnect = InterconnectConfig(
            arbiter=arbiter,
            addr_cycles=interconnect.addr_cycles,
            fwd_latency=interconnect.fwd_latency,
            resp_latency=interconnect.resp_latency,
        )
    return PlatformConfig(
        masters=tuple(masters),
        clock=zcu102_clock(),
        interconnect=interconnect,
        dram=zcu102_dram(scheduler),
        seed=seed,
    )


def kv260(
    num_accels: int = 2,
    cpu_workload: str = "latency_probe",
    accel_workload: str = "stream_read",
    cpu_work: Optional[int] = CRITICAL_ACCESSES,
    accel_regulator: Optional[RegulatorSpec] = None,
    seed: int = 1,
) -> PlatformConfig:
    """A Kria KV260-class platform: smaller SoC, narrower memory.

    Differences from :func:`zcu102`: a single critical core next to a
    lighter accelerator complement, a 64-bit (8 B/beat) DDR4 channel
    (half the ZCU102's effective width), and slightly slower timing.
    Used for cross-platform sanity checks: every qualitative result
    must survive the change of board.
    """
    if num_accels < 0:
        raise ConfigError("num_accels must be >= 0")
    dram = DramConfig(
        timing=DramTiming(
            t_cas=16,
            t_rcd=16,
            t_rp=16,
            beat_cycles=1,
            bus_bytes_per_beat=8,
            rw_turnaround=6,
            t_refi=1950,
            t_rfc=98,
        ),
        address_map=AddressMap(num_banks=8, row_bytes=2048),
    )
    masters: List[MasterSpec] = [
        MasterSpec(
            name="cpu0",
            workload=cpu_workload,
            region_base=REGION_FLOOR,
            region_extent=REGION_BYTES,
            work=cpu_work,
            max_outstanding=4,
            critical=True,
        )
    ]
    region = REGION_FLOOR + REGION_BYTES
    for index in range(num_accels):
        masters.append(
            MasterSpec(
                name=f"acc{index}",
                workload=accel_workload,
                region_base=region,
                region_extent=REGION_BYTES,
                work=None,
                max_outstanding=8,
                regulator=accel_regulator,
            )
        )
        region += REGION_BYTES
    return PlatformConfig(
        masters=tuple(masters),
        clock=ClockSpec(freq_mhz=200.0),
        interconnect=zcu102_interconnect(),
        dram=dram,
        seed=seed,
    )


def accel_names(config: PlatformConfig) -> Sequence[str]:
    """Names of the accelerator masters in a preset-built config."""
    return tuple(m.name for m in config.masters if m.name.startswith("acc"))


def cpu_names(config: PlatformConfig) -> Sequence[str]:
    """Names of the CPU masters in a preset-built config."""
    return tuple(m.name for m in config.masters if m.name.startswith("cpu"))
