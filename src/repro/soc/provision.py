"""Shared regulator provisioning for platform builders.

Several regulation schemes need *system-level* resources beyond the
per-port regulator object: a shared reclaim pool (MemGuard), a shared
token controller (PREM), a shared TDMA frame with per-master slot
assignment, automatic window-phase staggering (tightly-coupled), and
the DRAM idle probe for work-conserving injection.

:class:`RegulatorProvisioner` owns that state so every platform
flavour (:class:`~repro.soc.platform.Platform`,
:class:`~repro.soc.hierarchy.TwoLevelPlatform`) provisions regulators
identically.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterable, Optional

from repro.sim.kernel import Simulator
from repro.regulation.base import BandwidthRegulator
from repro.regulation.factory import RegulatorSpec, make_regulator
from repro.regulation.memguard import ReclaimPool
from repro.regulation.prem import PremController
from repro.regulation.tdma import TdmaSchedule


class RegulatorProvisioner:
    """Builds regulators with their shared system resources.

    Args:
        sim: The simulation kernel.
        specs: Every regulator spec the system will provision (used to
            size the TDMA frame and the stagger fan-out upfront).
        dram_idle_probe: Zero-argument callable reporting "memory
            system idle" (wired to work-conserving regulators).
    """

    def __init__(
        self,
        sim: Simulator,
        specs: Iterable[Optional[RegulatorSpec]],
        dram_idle_probe: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.sim = sim
        self.dram_idle_probe = dram_idle_probe
        self.reclaim_pool = ReclaimPool()
        self.prem_controller: Optional[PremController] = None
        self.tdma_schedule: Optional[TdmaSchedule] = None
        self._tdma_next_slot = 0
        self._stagger_slot = 0
        spec_list = [s for s in specs if s is not None]
        self._tdma_count = sum(1 for s in spec_list if s.kind == "tdma")
        self._stagger_count = sum(
            1
            for s in spec_list
            if s.kind == "tightly_coupled" and s.stagger and s.window_phase == 0
        )

    # ------------------------------------------------------------------
    # per-scheme preparation
    # ------------------------------------------------------------------
    def _staggered(self, spec: RegulatorSpec) -> RegulatorSpec:
        """Assign a distinct window phase to each tightly-coupled
        regulator (IP enables are sequenced in hardware; aligned
        windows would clump traffic -- see experiment E12)."""
        if (
            spec.kind != "tightly_coupled"
            or not spec.stagger
            or spec.window_phase != 0
            or self._stagger_count <= 1
        ):
            return spec
        phase = (self._stagger_slot * spec.window_cycles) // self._stagger_count
        self._stagger_slot += 1
        return replace(spec, window_phase=phase)

    def _tdma_binding(self, spec: RegulatorSpec):
        if self.tdma_schedule is None:
            num_slots = spec.tdma_slots or max(1, self._tdma_count)
            self.tdma_schedule = TdmaSchedule(
                slot_cycles=spec.window_cycles, num_slots=num_slots
            )
        slot = self._tdma_next_slot
        self._tdma_next_slot += 1
        return (self.tdma_schedule, slot)

    def _prem_controller(self, spec: RegulatorSpec) -> PremController:
        if self.prem_controller is None:
            self.prem_controller = PremController(
                self.sim, max_hold_cycles=spec.prem_hold_cycles
            )
        return self.prem_controller

    # ------------------------------------------------------------------
    # the one entry point
    # ------------------------------------------------------------------
    def build(
        self, spec: Optional[RegulatorSpec]
    ) -> Optional[BandwidthRegulator]:
        """Build one regulator, provisioning shared state as needed."""
        if spec is None or spec.kind == "none":
            return None
        tdma_binding = None
        prem_controller = None
        if spec.kind == "tightly_coupled":
            spec = self._staggered(spec)
        elif spec.kind == "tdma":
            tdma_binding = self._tdma_binding(spec)
        elif spec.kind == "prem":
            prem_controller = self._prem_controller(spec)
        regulator = make_regulator(
            spec,
            self.sim,
            reclaim_pool=self.reclaim_pool,
            tdma_binding=tdma_binding,
            prem_controller=prem_controller,
        )
        if (
            regulator is not None
            and self.dram_idle_probe is not None
            and getattr(getattr(regulator, "config", None), "work_conserving",
                        False)
        ):
            regulator.attach_idle_probe(self.dram_idle_probe)
        return regulator
