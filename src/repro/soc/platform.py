"""Declarative SoC platform construction.

A :class:`PlatformConfig` fully describes an experiment system: the
clock, the interconnect, the DRAM channel, and one
:class:`MasterSpec` per actor (its workload, memory region, port
parameters and regulation).  :class:`Platform` turns the description
into live objects and runs it.

Keeping the description declarative is what lets benchmarks sweep a
parameter by rebuilding configs in a loop, with the guarantee that
nothing leaks between runs (every build creates a fresh simulator).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.config import ClockSpec
from repro.sim.fastforward import FastForwardEngine
from repro.sim.kernel import Simulator, resolve_fastforward
from repro.sim.trace import TraceRecorder
from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.dram.controller import DramConfig, DramController
from repro.probes.map import ProbeMap, build_probe_map
from repro.qos.manager import QosManager
from repro.regulation.base import BandwidthRegulator
from repro.regulation.factory import RegulatorSpec
from repro.soc.provision import RegulatorProvisioner
from repro.telemetry.log import get_logger
from repro.traffic.arrivals import OpenLoopMaster
from repro.traffic.master import Master
from repro.traffic.workloads import make_workload

_log = get_logger(__name__)


@dataclass(frozen=True)
class MasterSpec:
    """One actor of the platform.

    Attributes:
        name: Unique master name.
        workload: Key into :data:`repro.traffic.workloads.WORKLOADS`.
        region_base: Start of the master's memory region.
        region_extent: Region size in bytes.
        work: Work bound (accesses for cpu workloads, bytes for accel
            workloads); ``None`` = unbounded background traffic.
        max_outstanding: AXI outstanding-transaction limit of the port.
        qos: Static AXI QoS stamped by the port (0..15).
        split_channels: Separate AR/AW queues at the port (see
            :class:`~repro.axi.port.PortConfig`).
        regulator: Regulation of this port (``None`` = unregulated).
        start_at: Cycle the master starts issuing.
        critical: Marks the actor whose completion/latency the
            experiment measures (used for early run termination and
            by result helpers).
    """

    name: str
    workload: str
    region_base: int
    region_extent: int
    work: Optional[int] = None
    max_outstanding: int = 8
    qos: int = 0
    split_channels: bool = False
    regulator: Optional[RegulatorSpec] = None
    start_at: int = 0
    critical: bool = False


@dataclass(frozen=True)
class PlatformConfig:
    """A complete system description.

    Attributes:
        masters: The actors sharing the memory system.
        clock: Reference clock (unit conversions only).
        interconnect: Fabric switch parameters.
        dram: Memory controller / device parameters.
        seed: Experiment seed for all stochastic components.
        trace_masters: Names whose completed transactions are traced.
    """

    masters: Sequence[MasterSpec] = field(default_factory=tuple)
    clock: ClockSpec = field(default_factory=ClockSpec)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    seed: int = 1
    trace_masters: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [m.name for m in self.masters]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate master names in {names}")

    def with_masters(self, masters: Sequence[MasterSpec]) -> "PlatformConfig":
        """Copy of this config with a different actor set."""
        return replace(self, masters=tuple(masters))

    def only(self, *names: str) -> "PlatformConfig":
        """Copy keeping only the named masters (solo baselines)."""
        keep = [m for m in self.masters if m.name in names]
        if len(keep) != len(names):
            missing = set(names) - {m.name for m in keep}
            raise ConfigError(f"unknown masters {sorted(missing)}")
        return self.with_masters(keep)

    @property
    def peak_bytes_per_cycle(self) -> float:
        """DRAM channel peak rate, the reference for shares."""
        return self.dram.timing.peak_bytes_per_cycle


class Platform:
    """Live system built from a :class:`PlatformConfig`."""

    def __init__(self, config: PlatformConfig) -> None:
        if not config.masters:
            raise ConfigError("platform needs at least one master")
        self.config = config
        self.sim = Simulator()
        self.trace = (
            TraceRecorder(config.trace_masters) if config.trace_masters else None
        )
        self.dram = DramController(self.sim, config.dram)
        self.interconnect = Interconnect(self.sim, config.interconnect)
        self.interconnect.attach_memory(self.dram)
        self.qos_manager = QosManager(self.sim, config.peak_bytes_per_cycle)
        self.ports: Dict[str, MasterPort] = {}
        self.regulators: Dict[str, BandwidthRegulator] = {}
        self.masters: Dict[str, Master] = {}
        #: Shared regulator resources (reclaim pool, PREM controller,
        #: TDMA frame, stagger state, work-conserving idle probe).
        self.provisioner = RegulatorProvisioner(
            self.sim,
            (m.regulator for m in config.masters),
            dram_idle_probe=lambda: self.dram.queue_depth == 0,
        )
        for spec in config.masters:
            self._build_master(spec)
        if self.prem_controller is not None:
            self._wire_prem_protection()
        #: Attached fast-forward engine (None unless the
        #: REPRO_FASTFORWARD knob is on and the platform has open-loop
        #: masters to walk analytically).
        self.fastforward: Optional[FastForwardEngine] = None
        if resolve_fastforward():
            streams = [
                m for m in self.masters.values() if isinstance(m, OpenLoopMaster)
            ]
            if streams:
                self.fastforward = FastForwardEngine(
                    self.sim, self.interconnect, self.dram, streams
                )
        #: The probe register file: every component's named live
        #: reads (see :mod:`repro.probes.map`).
        self.probes: ProbeMap = build_probe_map(self)
        _log.debug(
            "platform: %d masters, %d regulated, tracing %s",
            len(self.ports), len(self.regulators),
            list(config.trace_masters) or "off",
        )

    # ------------------------------------------------------------------
    # shared regulator resources (delegated to the provisioner)
    # ------------------------------------------------------------------
    @property
    def reclaim_pool(self):
        """Shared spare-budget pool for MemGuard reclaim."""
        return self.provisioner.reclaim_pool

    @property
    def prem_controller(self):
        """Shared PREM token controller (None when unused)."""
        return self.provisioner.prem_controller

    @property
    def tdma_schedule(self):
        """Shared TDMA frame (None when unused)."""
        return self.provisioner.tdma_schedule

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _wire_prem_protection(self) -> None:
        """PREM mutual exclusion: no regulated actor may start a
        memory access while any critical master's memory phase (a
        pending or in-flight transaction) is active."""
        critical_ports = [
            self.ports[m.name] for m in self.config.masters if m.critical
        ]
        if not critical_ports:
            return

        def protected_active() -> bool:
            return any(
                p.queue_depth > 0 or p.outstanding > 0
                for p in critical_ports
            )

        self.prem_controller.set_protected_probe(protected_active)

    def _build_master(self, spec: MasterSpec) -> None:
        regulator = self.provisioner.build(spec.regulator)
        port = MasterPort(
            self.sim,
            PortConfig(
                name=spec.name,
                max_outstanding=spec.max_outstanding,
                qos=spec.qos,
                split_channels=spec.split_channels,
            ),
            regulator=regulator,
            trace=self.trace,
        )
        self.interconnect.attach_port(port)
        master = make_workload(
            spec.workload,
            self.sim,
            port,
            base=spec.region_base,
            extent=spec.region_extent,
            seed=self.config.seed,
            work=spec.work,
        )
        self.ports[spec.name] = port
        self.masters[spec.name] = master
        if regulator is not None:
            self.regulators[spec.name] = regulator
            self.qos_manager.register(spec.name, regulator)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        max_cycles: int,
        stop_when_critical_done: bool = True,
    ) -> int:
        """Start all masters and run.

        Args:
            max_cycles: Simulation horizon.
            stop_when_critical_done: End the run as soon as every
                ``critical`` master finished its work (background
                hogs would otherwise keep the event queue alive to
                the horizon).

        Returns:
            The cycle at which the run ended.
        """
        if max_cycles < 1:
            raise ConfigError(f"max_cycles must be >= 1, got {max_cycles}")
        critical = [
            self.masters[m.name] for m in self.config.masters if m.critical
        ]
        if stop_when_critical_done and critical:
            remaining = {m.name for m in critical}

            def make_hook(name: str):
                def hook(_cycle: int) -> None:
                    remaining.discard(name)
                    if not remaining:
                        self.sim.request_stop()

                return hook

            for master in critical:
                master.on_finish = make_hook(master.name)
        for spec in self.config.masters:
            self.masters[spec.name].start(spec.start_at)
        return self.sim.run(until=max_cycles)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def master(self, name: str) -> Master:
        try:
            return self.masters[name]
        except KeyError:
            raise ConfigError(f"unknown master {name!r}") from None

    def port(self, name: str) -> MasterPort:
        try:
            return self.ports[name]
        except KeyError:
            raise ConfigError(f"unknown master {name!r}") from None

    @property
    def critical_names(self) -> List[str]:
        return [m.name for m in self.config.masters if m.critical]
