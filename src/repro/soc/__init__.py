"""SoC platform assembly (substrate S8).

Wires all substrates into a runnable system:

* :class:`repro.soc.platform.Platform` -- builds kernel, DRAM,
  interconnect, ports, regulators and masters from a declarative
  :class:`repro.soc.platform.PlatformConfig`.
* :mod:`repro.soc.presets` -- ready-made configurations, including
  the ZCU102-like board model the experiments use.
* :mod:`repro.soc.experiment` -- one-call experiment runner returning
  a structured :class:`repro.soc.experiment.PlatformResult`.
"""

from repro.soc.experiment import PlatformResult, run_experiment, run_solo_baseline
from repro.soc.hierarchy import TwoLevelConfig, TwoLevelPlatform
from repro.soc.platform import MasterSpec, Platform, PlatformConfig
from repro.soc.presets import kv260, zcu102
from repro.soc.provision import RegulatorProvisioner
from repro.soc.scenarios import SCENARIOS, Scenario, make_scenario

__all__ = [
    "PlatformResult",
    "run_experiment",
    "run_solo_baseline",
    "MasterSpec",
    "Platform",
    "PlatformConfig",
    "TwoLevelConfig",
    "TwoLevelPlatform",
    "RegulatorProvisioner",
    "SCENARIOS",
    "Scenario",
    "make_scenario",
    "kv260",
    "zcu102",
]
