"""One-call experiment execution and structured results.

:func:`run_experiment` builds a platform from a config, runs it, and
returns a :class:`PlatformResult` -- the uniform bundle every
benchmark consumes.  :func:`run_solo_baseline` reruns a single master
alone on the same system, the denominator of every slowdown figure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.soc.platform import Platform, PlatformConfig

#: Default horizon: 4M fabric cycles = 16 ms at 250 MHz, enough for
#: every bounded workload in the benchmarks to complete.
DEFAULT_MAX_CYCLES = 4_000_000


@dataclass(frozen=True)
class MasterResult:
    """Measured behaviour of one master over the run.

    Attributes:
        name: Master name.
        completed: Completed transactions.
        bytes_moved: Total payload bytes completed.
        latency_mean / latency_p50 / latency_p95 / latency_p99 /
        latency_max: End-to-end transaction latency stats (cycles).
        queueing_mean: Mean address-acceptance delay (cycles).
        finished_at: Cycle the configured work finished (None for
            unbounded or unfinished masters).
        bandwidth_bytes_per_cycle: Bytes over the master's active
            interval (finish time if bounded, else the run's end).
        regulator_denials: Address handshakes deferred by regulation.
    """

    name: str
    completed: int
    bytes_moved: int
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    queueing_mean: float
    finished_at: Optional[int]
    bandwidth_bytes_per_cycle: float
    regulator_denials: int


@dataclass(frozen=True)
class DramResult:
    """Measured behaviour of the memory controller."""

    serviced: int
    bytes_moved: int
    utilization: float
    row_hit_rate: float
    refreshes: int


class PlatformResult:
    """Everything a benchmark needs from one run.

    Attributes:
        elapsed: Cycle at which the run ended.
        masters: Per-master results by name.
        dram: Memory-controller results.
        platform: The live platform (for monitors, traces, QoS logs).
    """

    def __init__(self, platform: Platform, elapsed: int) -> None:
        self.platform = platform
        self.elapsed = elapsed
        self.masters: Dict[str, MasterResult] = {}
        for name, port in platform.ports.items():
            # Infrastructure ports (e.g. a hierarchy bridge) have no
            # traffic-generating master of their own.
            master = platform.masters.get(name)
            latency = port.stats.sampler("latency")
            queueing = port.stats.sampler("queueing_delay")
            finished = master.finished_at if master is not None else None
            active = finished if finished else elapsed
            nbytes = port.stats.counter("bytes").value
            self.masters[name] = MasterResult(
                name=name,
                completed=port.stats.counter("completed").value,
                bytes_moved=nbytes,
                latency_mean=latency.mean,
                latency_p50=float(latency.percentile(50)),
                latency_p95=float(latency.percentile(95)),
                latency_p99=float(latency.percentile(99)),
                latency_max=float(latency.maximum),
                queueing_mean=queueing.mean,
                finished_at=finished,
                bandwidth_bytes_per_cycle=(nbytes / active if active else 0.0),
                regulator_denials=port.stats.counter("regulator_denials").value,
            )
        self.dram = DramResult(
            serviced=platform.dram.stats.counter("serviced").value,
            bytes_moved=platform.dram.stats.counter("bytes").value,
            utilization=platform.dram.utilization(elapsed) if elapsed else 0.0,
            row_hit_rate=platform.dram.row_hit_rate(),
            refreshes=platform.dram.stats.counter("refreshes").value,
        )

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    def master(self, name: str) -> MasterResult:
        try:
            return self.masters[name]
        except KeyError:
            raise ConfigError(f"no results for master {name!r}") from None

    def critical(self) -> MasterResult:
        """Results of the (single) critical master."""
        names = self.platform.critical_names
        if len(names) != 1:
            raise ConfigError(
                f"expected exactly one critical master, found {names}"
            )
        return self.master(names[0])

    def critical_runtime(self) -> int:
        """Completion time of the critical master's work quantum."""
        result = self.critical()
        if result.finished_at is None:
            raise ConfigError(
                f"critical master {result.name!r} did not finish; "
                "raise max_cycles"
            )
        return result.finished_at

    def bandwidth_gbps(self, name: str) -> float:
        """A master's average bandwidth in GB/s (preset clock)."""
        clock = self.platform.config.clock
        return clock.gbps_from_bytes_per_cycle(
            self.master(name).bandwidth_bytes_per_cycle
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def summary(self) -> "RunSummary":
        """Snapshot into a plain-data :class:`~repro.runner.summary.RunSummary`.

        The summary is picklable and JSON round-trippable, which is
        what the parallel runner and the result cache move around; the
        live platform stays behind.
        """
        from repro.runner.summary import RunSummary

        return RunSummary.from_result(self)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data summary of the run (JSON-serializable).

        Contains everything a downstream analysis needs -- per-master
        results, DRAM figures, the QoS reconfiguration log -- but not
        the live platform objects.  The layout is defined by
        :meth:`repro.runner.summary.RunSummary.to_dict`.
        """
        return self.summary().to_dict()

    def save_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as pretty-printed JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @staticmethod
    def load_json(path: str) -> Dict[str, object]:
        """Load a summary previously written by :meth:`save_json`."""
        with open(path) as fh:
            return json.load(fh)


def run_experiment(
    config: PlatformConfig,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    stop_when_critical_done: bool = True,
) -> PlatformResult:
    """Build, run and measure a platform in one call."""
    platform = Platform(config)
    elapsed = platform.run(
        max_cycles, stop_when_critical_done=stop_when_critical_done
    )
    return PlatformResult(platform, elapsed)


def run_solo_baseline(
    config: PlatformConfig,
    master: str,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> PlatformResult:
    """Run one master alone on the same system (slowdown denominator).

    Any regulator configured for the master is kept, so "solo" means
    "no co-runners", not "no regulation".
    """
    solo = config.only(master)
    return run_experiment(solo, max_cycles=max_cycles)
