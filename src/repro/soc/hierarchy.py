"""Two-level (fabric + PS) platform assembly.

Models the real topology of the evaluation board: CPU masters sit
directly on the PS-level interconnect in front of the DDR controller,
while FPGA accelerators share a fabric-level switch whose single
egress -- an HP port with its own outstanding limit -- bridges into
the PS level.

This is the topology where the *placement* of regulation matters
(experiment E11): per-master IPs on the fabric ports isolate
accelerators from each other as well as from the CPUs; a single
aggregate regulator at the HP port bounds the total but lets one
misbehaving accelerator starve its fabric neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro.errors import ConfigError
from repro.sim.config import ClockSpec
from repro.sim.kernel import Simulator
from repro.axi.bridge import Bridge
from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.dram.controller import DramConfig, DramController
from repro.qos.manager import QosManager
from repro.regulation.factory import RegulatorSpec
from repro.soc.platform import MasterSpec
from repro.soc.provision import RegulatorProvisioner
from repro.traffic.master import Master
from repro.traffic.workloads import make_workload


@dataclass(frozen=True)
class TwoLevelConfig:
    """A complete two-level system description.

    Attributes:
        cpus: Masters attached directly at the PS level.
        accels: Masters attached to the fabric-level switch.
        bridge_name: Name of the shared HP port.
        bridge_outstanding: The HP port's outstanding limit (the
            Zynq HP ports accept a handful of outstanding reads).
        bridge_regulator: Optional *aggregate* regulator at the HP
            port (the coarse-grained placement E11 contrasts).
        fabric / ps: The two switch configurations.
        dram: Memory controller configuration.
        clock: Reference clock.
        seed: Experiment seed.
    """

    cpus: Sequence[MasterSpec] = field(default_factory=tuple)
    accels: Sequence[MasterSpec] = field(default_factory=tuple)
    bridge_name: str = "hp0"
    bridge_outstanding: int = 16
    bridge_regulator: Optional[RegulatorSpec] = None
    fabric: InterconnectConfig = field(default_factory=InterconnectConfig)
    ps: InterconnectConfig = field(default_factory=InterconnectConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    clock: ClockSpec = field(default_factory=ClockSpec)
    seed: int = 1

    def __post_init__(self) -> None:
        names = [m.name for m in self.cpus] + [m.name for m in self.accels]
        names.append(self.bridge_name)
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate master names in {sorted(names)}")
        if not self.cpus and not self.accels:
            raise ConfigError("two-level platform needs at least one master")
        if self.bridge_outstanding < 1:
            raise ConfigError("bridge_outstanding must be >= 1")

    @property
    def peak_bytes_per_cycle(self) -> float:
        return self.dram.timing.peak_bytes_per_cycle


class TwoLevelPlatform:
    """Live two-level system built from a :class:`TwoLevelConfig`."""

    def __init__(self, config: TwoLevelConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.dram = DramController(self.sim, config.dram)
        self.ps = Interconnect(self.sim, config.ps)
        self.ps.attach_memory(self.dram)
        self.fabric = Interconnect(self.sim, config.fabric)
        self.qos_manager = QosManager(self.sim, config.peak_bytes_per_cycle)
        self.ports: Dict[str, MasterPort] = {}
        self.masters: Dict[str, Master] = {}
        self.regulators: Dict[str, object] = {}
        all_specs = (
            [m.regulator for m in config.cpus]
            + [m.regulator for m in config.accels]
            + [config.bridge_regulator]
        )
        self.provisioner = RegulatorProvisioner(
            self.sim,
            all_specs,
            dram_idle_probe=lambda: self.dram.queue_depth == 0,
        )

        # The shared HP port bridging fabric -> PS.
        bridge_regulator = self.provisioner.build(config.bridge_regulator)
        bridge_port = MasterPort(
            self.sim,
            PortConfig(
                name=config.bridge_name,
                max_outstanding=config.bridge_outstanding,
            ),
            regulator=bridge_regulator,
        )
        self.ps.attach_port(bridge_port)
        self.bridge = Bridge(self.sim, bridge_port)
        self.fabric.attach_memory(self.bridge)
        self.ports[config.bridge_name] = bridge_port
        if bridge_regulator is not None:
            self.regulators[config.bridge_name] = bridge_regulator
            self.qos_manager.register(config.bridge_name, bridge_regulator)

        for spec in config.cpus:
            self._build_master(spec, self.ps)
        for spec in config.accels:
            self._build_master(spec, self.fabric)
        if self.prem_controller is not None:
            self._wire_prem_protection()

    # ------------------------------------------------------------------
    # shared regulator resources (delegated to the provisioner)
    # ------------------------------------------------------------------
    @property
    def reclaim_pool(self):
        return self.provisioner.reclaim_pool

    @property
    def prem_controller(self):
        return self.provisioner.prem_controller

    @property
    def tdma_schedule(self):
        return self.provisioner.tdma_schedule

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _wire_prem_protection(self) -> None:
        """PREM mutual exclusion across levels: critical masters'
        memory phases exclude every regulated actor."""
        critical_ports = [
            self.ports[name] for name in self.critical_names
        ]
        if not critical_ports:
            return

        def protected_active() -> bool:
            return any(
                p.queue_depth > 0 or p.outstanding > 0
                for p in critical_ports
            )

        self.prem_controller.set_protected_probe(protected_active)

    def _build_master(self, spec: MasterSpec, interconnect: Interconnect) -> None:
        regulator = self.provisioner.build(spec.regulator)
        port = MasterPort(
            self.sim,
            PortConfig(
                name=spec.name,
                max_outstanding=spec.max_outstanding,
                qos=spec.qos,
                split_channels=spec.split_channels,
            ),
            regulator=regulator,
        )
        interconnect.attach_port(port)
        master = make_workload(
            spec.workload,
            self.sim,
            port,
            base=spec.region_base,
            extent=spec.region_extent,
            seed=self.config.seed,
            work=spec.work,
        )
        self.ports[spec.name] = port
        self.masters[spec.name] = master
        if regulator is not None:
            self.regulators[spec.name] = regulator
            self.qos_manager.register(spec.name, regulator)

    # ------------------------------------------------------------------
    # execution (mirrors Platform.run)
    # ------------------------------------------------------------------
    def run(self, max_cycles: int, stop_when_critical_done: bool = True) -> int:
        if max_cycles < 1:
            raise ConfigError(f"max_cycles must be >= 1, got {max_cycles}")
        specs = list(self.config.cpus) + list(self.config.accels)
        critical = [self.masters[m.name] for m in specs if m.critical]
        if stop_when_critical_done and critical:
            remaining = {m.name for m in critical}

            def make_hook(name: str):
                def hook(_cycle: int) -> None:
                    remaining.discard(name)
                    if not remaining:
                        self.sim.request_stop()

                return hook

            for master in critical:
                master.on_finish = make_hook(master.name)
        for spec in specs:
            self.masters[spec.name].start(spec.start_at)
        return self.sim.run(until=max_cycles)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def critical_names(self):
        """Names of critical masters (PlatformResult compatibility)."""
        specs = list(self.config.cpus) + list(self.config.accels)
        return [m.name for m in specs if m.critical]

    def master(self, name: str) -> Master:
        try:
            return self.masters[name]
        except KeyError:
            raise ConfigError(f"unknown master {name!r}") from None

    def port(self, name: str) -> MasterPort:
        try:
            return self.ports[name]
        except KeyError:
            raise ConfigError(f"unknown port {name!r}") from None
