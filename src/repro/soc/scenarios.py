"""Named system scenarios.

Ready-made multi-master configurations modelled on the application
classes the paper's introduction motivates (ADAS perception stacks,
video pipelines, industrial control).  Each scenario returns a
:class:`~repro.soc.platform.PlatformConfig` with realistic actor
mixes and marks the latency-critical actor; regulation is left to
the caller (pass a builder that assigns a
:class:`~repro.regulation.factory.RegulatorSpec` per master name).

Example::

    from repro.soc.scenarios import make_scenario
    config = make_scenario("adas", regulators={"lidar": spec, "camera": spec})
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.regulation.factory import RegulatorSpec
from repro.soc.platform import MasterSpec, PlatformConfig
from repro.telemetry.log import get_logger

MB = 1 << 20

_log = get_logger(__name__)


@dataclass(frozen=True)
class ScenarioActor:
    """One actor of a scenario template.

    Attributes:
        name: Actor name (regulator assignment key).
        workload: Workload-library key.
        extent: Memory-region size in bytes.
        work: Work bound (None = unbounded background traffic).
        max_outstanding: Port depth.
        critical: The actor whose QoS the scenario is about.
    """

    name: str
    workload: str
    extent: int = 4 * MB
    work: Optional[int] = None
    max_outstanding: int = 8
    critical: bool = False


@dataclass(frozen=True)
class Scenario:
    """A named scenario template."""

    name: str
    description: str
    actors: Sequence[ScenarioActor]


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="adas",
            description=(
                "ADAS perception stack: a control task on the host core, "
                "camera and LiDAR ingest DMAs, a CNN accelerator moving "
                "feature maps, and a logging DMA"
            ),
            actors=(
                ScenarioActor("control", "compute_mix", work=3_000,
                              max_outstanding=4, critical=True),
                ScenarioActor("camera", "stream_write", extent=8 * MB),
                ScenarioActor("lidar", "stream_write", extent=2 * MB),
                ScenarioActor("cnn", "matmul_stream", extent=8 * MB),
                ScenarioActor("logger", "memcpy", extent=2 * MB),
            ),
        ),
        Scenario(
            name="video_pipeline",
            description=(
                "Video transcode pipeline: a bitstream parser on the core, "
                "decoder and encoder DMAs, and a scaler with strided access"
            ),
            actors=(
                ScenarioActor("parser", "pointer_chase", work=2_000,
                              max_outstanding=2, critical=True),
                ScenarioActor("decoder", "stream_read", extent=8 * MB),
                ScenarioActor("encoder", "stream_write", extent=8 * MB),
                ScenarioActor("scaler", "fft_stride", extent=4 * MB),
            ),
        ),
        Scenario(
            name="industrial",
            description=(
                "Industrial control: a hard-deadline control loop, a "
                "vision-inspection accelerator and a telemetry uploader"
            ),
            actors=(
                ScenarioActor("control_loop", "latency_probe", work=4_000,
                              max_outstanding=2, critical=True),
                ScenarioActor("inspection", "stencil", work=50_000,
                              max_outstanding=4),
                ScenarioActor("telemetry", "memcpy", extent=2 * MB),
            ),
        ),
    )
}


def make_scenario(
    name: str,
    regulators: Optional[Dict[str, RegulatorSpec]] = None,
    region_floor: int = 0x1000_0000,
    seed: int = 1,
) -> PlatformConfig:
    """Instantiate a named scenario.

    Args:
        name: Key in :data:`SCENARIOS`.
        regulators: Per-actor regulation (actors absent from the map
            are unregulated).
        region_floor: Base address of the first actor's region.
        seed: Experiment seed.

    Returns:
        A ready-to-run :class:`~repro.soc.platform.PlatformConfig`.
    """
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    regulators = regulators or {}
    unknown = set(regulators) - {a.name for a in scenario.actors}
    if unknown:
        raise ConfigError(
            f"regulators given for unknown actors {sorted(unknown)}"
        )
    masters: List[MasterSpec] = []
    base = region_floor
    for actor in scenario.actors:
        masters.append(
            MasterSpec(
                name=actor.name,
                workload=actor.workload,
                region_base=base,
                region_extent=actor.extent,
                work=actor.work,
                max_outstanding=actor.max_outstanding,
                regulator=regulators.get(actor.name),
                critical=actor.critical,
            )
        )
        base += actor.extent
    _log.debug(
        "scenario %r: %d actors, %d regulated, seed %d",
        name, len(masters), len(regulators), seed,
    )
    return PlatformConfig(masters=tuple(masters), seed=seed)
