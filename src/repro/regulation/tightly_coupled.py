"""The tightly-coupled hardware monitor + regulator IP (the paper's
contribution).

The IP sits inline on a master port's address channels.  Its RTL-level
behaviour, reproduced cycle-for-cycle here:

* a byte-granular **token bucket**: a credit counter replenished by
  ``budget_bytes`` every ``window_cycles`` (a window counter plus a
  saturating adder in hardware);
* **burst-aware charging**: the full burst size is charged when the
  address handshake is accepted, so an admitted burst can never
  overdraw the budget mid-flight;
* **combinational admission**: the stall decision uses the credit
  counter of *this* cycle -- monitoring and regulation are the same
  IP, hence "tightly coupled".  The ``feedback_delay`` knob widens
  the monitor-to-regulator loop to model a loosely-coupled design
  (system-level monitor polled over the fabric); experiment E8 shows
  what that costs;
* **credit carry-over** (optional): capacity of ``(carryover_windows
  + 1) * budget`` lets an idle actor accumulate a bounded burst
  allowance.  ``carryover_windows=0`` reproduces a plain tumbling
  window (credit resets every window), the cheapest RTL variant;
* **fast reconfiguration**: budgets are memory-mapped registers; a
  write takes effect ``reconfig_latency`` bus cycles later (vs a full
  period for the software baseline).

Forward progress: a burst larger than the bucket capacity can never
fit; with ``allow_oversize`` (default) such a burst is admitted when
the bucket is full, and the credit counter goes *negative* (a signed
counter in the RTL): subsequent windows first repay the debt, so the
long-run rate stays at the configured budget while the master is
never wedged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.errors import RegulationError
from repro.sim.kernel import Phase, Simulator
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.monitor.window import WindowedBandwidthMonitor
from repro.regulation.base import BandwidthRegulator
from repro.regulation.token_bucket import TokenBucket
from repro.telemetry.registry import NULL_COUNTER, NULL_GAUGE, get_registry


@dataclass(frozen=True)
class TightlyCoupledConfig:
    """Static configuration of the tightly-coupled IP.

    Attributes:
        window_cycles: Replenish window in cycles (the paper's
            "fine-grained" axis; typical values 64..4096).
        budget_bytes: Bytes of credit granted per window.
        carryover_windows: Extra windows of credit the bucket can
            hold (0 = tumbling window).
        burst_aware: Charge the full burst at the address handshake
            (True, the IP's design) or admit on any positive credit
            and charge per burst anyway (False; allows bounded
            overdraw -- kept for the ablation in E3).
        feedback_delay: Cycles before a charge becomes visible to the
            admission logic (0 = tightly coupled; >0 models a
            loosely-coupled system monitor, experiment E8).
        reconfig_latency: Bus cycles for a budget register write to
            take effect.
        allow_oversize: Admit bursts larger than capacity when the
            bucket is full (forward-progress guarantee).
        window_phase: Cycle offset of the window boundaries.  In
            hardware each IP instance's window counter starts when its
            enable register is written, so instances are naturally
            staggered; phase-aligned windows make all regulated
            masters release their budgets simultaneously, clumping
            traffic.  The platform layer staggers phases by default.
        regulate_reads / regulate_writes: Which AXI channels the IP
            gates.  The RTL instantiates separate gating on AR and
            AW, individually enable-able: e.g. a camera DMA whose
            writes are latency-tolerant but must not be starved can
            be regulated on reads only.  Unregulated-direction
            traffic passes freely and is not charged.
        work_conserving: CMRI-style controlled injection (the
            authors' prior line of work): when the regulated master is
            out of credit *and* the memory system is idle, admit the
            burst anyway without charging it.  Injection consumes
            only bandwidth nobody was using, so the long-run
            guarantee is preserved while utilization rises; the cost
            is a bounded extra delay (at most one in-flight injected
            burst) for a critical request that arrives right after an
            injection.  Requires an idle probe
            (:meth:`TightlyCoupledRegulator.attach_idle_probe`),
            wired automatically by the platform layer.
    """

    window_cycles: int = 1024
    budget_bytes: int = 4096
    carryover_windows: int = 0
    burst_aware: bool = True
    feedback_delay: int = 0
    reconfig_latency: int = 4
    allow_oversize: bool = True
    window_phase: int = 0
    work_conserving: bool = False
    regulate_reads: bool = True
    regulate_writes: bool = True

    def __post_init__(self) -> None:
        if self.window_phase < 0:
            raise RegulationError("window_phase must be >= 0")
        if not (self.regulate_reads or self.regulate_writes):
            raise RegulationError(
                "at least one of regulate_reads/regulate_writes must be set"
            )
        if self.window_cycles < 1:
            raise RegulationError(f"window_cycles must be >= 1, got {self.window_cycles}")
        if self.budget_bytes < 1:
            raise RegulationError(f"budget_bytes must be >= 1, got {self.budget_bytes}")
        if self.carryover_windows < 0:
            raise RegulationError("carryover_windows must be >= 0")
        if self.feedback_delay < 0:
            raise RegulationError("feedback_delay must be >= 0")
        if self.reconfig_latency < 0:
            raise RegulationError("reconfig_latency must be >= 0")

    @property
    def capacity_bytes(self) -> int:
        """Maximum credit the bucket can hold."""
        return (self.carryover_windows + 1) * self.budget_bytes

    def bandwidth_bytes_per_cycle(self) -> float:
        """The long-run rate this configuration enforces."""
        return self.budget_bytes / self.window_cycles


class TightlyCoupledRegulator(BandwidthRegulator):
    """Inline fine-grained bandwidth regulator (see module docstring)."""

    def __init__(self, sim: Simulator, config: TightlyCoupledConfig) -> None:
        super().__init__()
        self.sim = sim
        self.config = config
        # Window boundaries fall at (window_phase mod window) + k*window.
        # Anchoring the bucket one window before cycle 0 keeps the
        # phase while never rejecting early charges as "backwards".
        anchor = (config.window_phase % config.window_cycles) - config.window_cycles
        self._bucket = TokenBucket(
            capacity=config.capacity_bytes,
            refill_amount=config.budget_bytes,
            refill_period=config.window_cycles,
            start=anchor,
        )
        #: Charges not yet visible to admission (feedback_delay > 0):
        #: (visible_at_cycle, nbytes) in increasing time order.
        self._unseen: Deque[Tuple[int, int]] = deque()
        self.monitor: Optional[WindowedBandwidthMonitor] = None
        self._budget_bytes = config.budget_bytes
        self.reconfig_count = 0
        #: Work-conserving mode: callable returning True when the
        #: memory system is idle (no queued requests).
        self._idle_probe: Optional[object] = None
        #: Marks the head transaction admitted via injection, so its
        #: charge is skipped (injection uses only spare bandwidth).
        self._inject_txn_id: Optional[int] = None
        self.injected_bytes = 0
        self.injected_transactions = 0
        self._tm_injections = NULL_COUNTER
        self._tm_budget = NULL_GAUGE
        self._resets_reported = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    # repro: telemetry-bind -- one-time handle creation at wiring time
    def _on_bind(self, port: MasterPort) -> None:
        # The IP's monitor half: per-window byte counts of the very
        # traffic it regulates.
        self.monitor = WindowedBandwidthMonitor(port, self.config.window_cycles)
        registry = get_registry()
        self._tm_injections = registry.counter(
            "regulator_injections", master=port.name
        )
        self._tm_budget = registry.gauge(
            "regulator_budget_bytes", master=port.name
        )
        self._tm_budget.set(self._budget_bytes)
        # Window boundaries are lazy (applied inside the token bucket
        # when time advances), so the reset counter is settled at run
        # end instead of being pushed per boundary.
        self.sim.add_finalizer(self._report_window_resets)

    def _report_window_resets(self, _now: int) -> None:
        delta = self._bucket.refills - self._resets_reported
        if delta > 0:
            self._tm_window_resets.inc(delta)
            self._resets_reported = self._bucket.refills

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _visible_tokens(self, now: int) -> int:
        """Tokens as seen by the admission logic at ``now``.

        With a feedback delay, recent charges have not reached the
        decision logic yet, so it *over*-estimates available credit --
        the root cause of loosely-coupled overshoot.
        """
        tokens = self._bucket.tokens_at(now)
        if not self.config.feedback_delay:
            return tokens
        while self._unseen and self._unseen[0][0] <= now:
            self._unseen.popleft()
        pending = sum(nbytes for _t, nbytes in self._unseen)
        return min(self._bucket.capacity, tokens + pending)

    def _channel_regulated(self, txn: Transaction) -> bool:
        if txn.is_write:
            return self.config.regulate_writes
        return self.config.regulate_reads

    def may_issue(self, txn: Transaction, now: int) -> bool:
        if not self._channel_regulated(txn):
            return True
        # Re-evaluations of the same head (arbitration lost, retry)
        # must re-earn the injection mark, or a later credit-based
        # admission would wrongly skip its charge.
        if self._inject_txn_id == txn.txn_id:
            self._inject_txn_id = None
        if self._admit_by_credit(txn, now):
            return True
        # CMRI-style injection: out of credit, but nobody is using the
        # memory system -> let the burst through uncharged.
        if (
            self.config.work_conserving
            and self._idle_probe is not None
            and self._idle_probe()
        ):
            self._inject_txn_id = txn.txn_id
            return True
        return False

    def _admit_by_credit(self, txn: Transaction, now: int) -> bool:
        tokens = self._visible_tokens(now)
        if self.config.burst_aware:
            if txn.nbytes <= tokens:
                return True
            if (
                self.config.allow_oversize
                and txn.nbytes > self._bucket.capacity
                and tokens >= self._bucket.capacity
            ):
                return True
            return False
        # Non-burst-aware: any positive credit admits the whole burst.
        return tokens > 0

    def charge(self, txn: Transaction, now: int) -> None:
        super().charge(txn, now)
        if not self._channel_regulated(txn):
            return  # free channel: observed by the monitor only
        if self._inject_txn_id == txn.txn_id:
            # Injected burst: spare bandwidth only, no credit spent.
            self._inject_txn_id = None
            self.injected_bytes += txn.nbytes
            self.injected_transactions += 1
            self._tm_injections.inc()
            return
        # Signed credit counter: oversize or overdrawn bursts leave a
        # debt that future window refills repay first.
        self._bucket.force_consume(txn.nbytes, now, allow_debt=True)
        if self.config.feedback_delay:
            self._unseen.append((now + self.config.feedback_delay, txn.nbytes))

    #: Retry cadence while hunting for idle-injection opportunities.
    INJECT_POLL_CYCLES = 32

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        need = min(
            txn.nbytes if self.config.burst_aware else 1, self._bucket.capacity
        )
        by_credit = self._bucket.next_available(need, now)
        if self.config.work_conserving and self._idle_probe is not None:
            # Poll for memory-idle windows between credit refills (in
            # hardware this is free: the stall comparator also sees
            # the controller's queue-empty signal every cycle).
            return min(by_credit, now + self.INJECT_POLL_CYCLES)
        return by_credit

    # ------------------------------------------------------------------
    # fast-forward protocol
    # ------------------------------------------------------------------
    def ff_horizon(self, now: int) -> Optional[int]:
        """Analytic-advance bound: the next window refill boundary.

        Between refill boundaries the credit balance is constant (the
        bucket only gains tokens at period edges), so a denied head
        stays denied until at least the boundary -- the closed-form
        property macro-stepping needs.  Three configurations opt out
        (return ``None``) because their admission decision is *not* a
        pure function of the credit balance over time:

        * ``feedback_delay > 0`` -- the unseen-charge queue drains by
          wall clock, so visible credit changes between boundaries;
        * ``work_conserving`` -- admission also consults the live
          memory-idle probe, and ``next_opportunity`` polls every
          ``INJECT_POLL_CYCLES``;
        * single-direction regulation -- heads on the free channel are
          admitted regardless of credit, so a queue can drain
          mid-region without any boundary being crossed.
        """
        cfg = self.config
        if cfg.feedback_delay or cfg.work_conserving:
            return None
        if not (cfg.regulate_reads and cfg.regulate_writes):
            return None
        horizon = self._bucket.horizon(now)
        if self.monitor is not None:
            edge = self.monitor.bin_edge_after(now)
            if edge < horizon:
                horizon = edge
        return horizon

    def ff_advance_bulk(self, now: int) -> None:
        """Settle the bucket's lazy refill bookkeeping at ``now``.

        The event-accurate kernel advances the bucket as a side effect
        of the ``may_issue`` denial it performs at every arrival cycle;
        after a macro-step the last such cycle is ``now``, and
        ``tokens_at`` is path-independent, so one settling call leaves
        ``_tokens``/``_last_refill``/``refills`` exactly where the
        per-cycle walk would have.
        """
        self._bucket.tokens_at(now)

    # ------------------------------------------------------------------
    # work-conserving wiring
    # ------------------------------------------------------------------
    def attach_idle_probe(self, probe) -> None:
        """Connect the idle signal used by work-conserving injection.

        Args:
            probe: Zero-argument callable returning truthy when the
                memory system has no queued work (in hardware: a
                side-band "queue empty" signal from the controller).
        """
        self._idle_probe = probe

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------
    def set_budget_bytes(self, budget_bytes: int, now: int) -> int:
        """Write the budget register; effective after the bus write."""
        if budget_bytes < 1:
            raise RegulationError(f"budget_bytes must be >= 1, got {budget_bytes}")
        effective_at = now + self.config.reconfig_latency

        def apply() -> None:
            self._budget_bytes = budget_bytes
            capacity = (self.config.carryover_windows + 1) * budget_bytes
            self._bucket.reconfigure(
                self.sim.now, capacity=capacity, refill_amount=budget_bytes
            )
            self.reconfig_count += 1
            self._tm_budget.set(budget_bytes)
            self._release()

        self.sim.schedule_at(effective_at, apply, priority=Phase.CONTROL)
        return effective_at

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def budget_bytes(self) -> int:
        """The currently effective per-window budget."""
        return self._budget_bytes

    @property
    def window_cycles(self) -> int:
        return self.config.window_cycles

    def tokens_now(self) -> int:
        """Credit available this cycle (true, not delayed, view)."""
        return self._bucket.tokens_at(self.sim.now)

    def peek_tokens(self) -> int:
        """Side-effect-free view of this cycle's credit.

        Used by the probe plane: unlike :meth:`tokens_now` it never
        advances the bucket's refill bookkeeping, so sampling it
        cannot perturb any observable counter.
        """
        return self._bucket.peek_tokens(self.sim.now)
