"""Monitored passthrough (no regulation).

The "unregulated" configuration of every experiment: all traffic is
admitted immediately, but the monitor half still counts it so the
interference characterization (E1) can report per-master bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.monitor.window import WindowedBandwidthMonitor
from repro.regulation.base import BandwidthRegulator


# Admits everything, so a port it polices is never regulator-blocked
# and no macro-step ever consults it.  # repro: ff-opt-out
class NoRegulation(BandwidthRegulator):
    """Admit everything; observe only.

    Args:
        monitor_window: Optional window width for the bandwidth
            monitor attached on bind (None = no windowed monitor).
    """

    def __init__(self, monitor_window: Optional[int] = None) -> None:
        super().__init__()
        self._monitor_window = monitor_window
        self.monitor: Optional[WindowedBandwidthMonitor] = None

    def _on_bind(self, port: MasterPort) -> None:
        if self._monitor_window:
            self.monitor = WindowedBandwidthMonitor(port, self._monitor_window)

    def may_issue(self, txn: Transaction, now: int) -> bool:
        return True

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        # Never consulted (may_issue never denies); return now for
        # interface completeness.
        return now
