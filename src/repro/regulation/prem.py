"""PREM-style mutually-exclusive memory arbitration.

The Predictable Execution Model (the authors' other research line:
HePREM, GPUguard, ...) removes memory interference entirely by
allowing only *one* actor at a time to access DRAM: tasks are split
into memory and compute phases and the memory phases are scheduled
mutually exclusively.  The guarantee is perfect isolation; the cost
is that every other actor's memory phase waits, and the DRAM idles
whenever the token holder has nothing to send -- the
under-utilization that CMRI and this paper's regulator attack.

The model here is the arbitration substrate of such a schedule:

* a :class:`PremController` owns a single *memory token*;
* each :class:`PremRegulator` admits its master's transactions only
  while holding the token;
* the token is requested on demand, held while the owner keeps the
  memory system busy (bounded by ``max_hold_cycles``), and granted
  round-robin among requesters.

An unregulated master (e.g. a critical CPU given implicit priority)
simply bypasses the scheme, which models "the critical task owns the
schedule and accelerators fill its gaps" -- the configuration used by
the E16 benchmark.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import RegulationError
from repro.sim.kernel import Phase, Simulator
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.regulation.base import BandwidthRegulator


class PremController:
    """The global memory-token arbiter.

    Args:
        sim: Simulation kernel.
        max_hold_cycles: Longest a holder may keep the token while
            others wait (a memory-phase length bound).
    """

    def __init__(self, sim: Simulator, max_hold_cycles: int = 2048) -> None:
        if max_hold_cycles < 1:
            raise RegulationError("max_hold_cycles must be >= 1")
        self.sim = sim
        self.max_hold_cycles = max_hold_cycles
        self._members: List["PremRegulator"] = []
        self._holder: Optional["PremRegulator"] = None
        self._held_since = 0
        self._rr_index = 0
        self.grants = 0
        #: When set, a callable returning True while a *protected*
        #: actor (the critical task's memory phase) is active: no
        #: regulated actor is admitted then -- this is PREM's defining
        #: mutual exclusion between the critical task and everyone
        #: else.  The platform wires it to the critical ports.
        self._protected_active = None

    def register(self, regulator: "PremRegulator") -> None:
        self._members.append(regulator)

    def set_protected_probe(self, probe) -> None:
        """Install the critical-actor activity probe (see above)."""
        self._protected_active = probe

    # ------------------------------------------------------------------
    # token management
    # ------------------------------------------------------------------
    @property
    def holder(self) -> Optional["PremRegulator"]:
        return self._holder

    def holds(self, regulator: "PremRegulator") -> bool:
        return self._holder is regulator

    def request(self, regulator: "PremRegulator", now: int) -> bool:
        """Try to acquire (or confirm) the token for ``regulator``.

        Returns True when the regulator holds the token afterwards.
        """
        if self._protected_active is not None and self._protected_active():
            # The critical task is in a memory phase: nobody else may
            # start an access (its in-flight bursts still drain).
            return False
        if self._holder is regulator:
            if now - self._held_since >= self.max_hold_cycles and self._waiters(
                regulator
            ):
                self._pass_token(now)
                return self._holder is regulator
            return True
        if self._holder is None:
            self._grant(regulator, now)
            return True
        # Token busy: preempt an expired or idle holder.
        holder_idle = not self._holder.wants_token()
        expired = now - self._held_since >= self.max_hold_cycles
        if holder_idle or expired:
            self._pass_token(now)
            return self._holder is regulator
        return False

    def release_if_idle(self, regulator: "PremRegulator", now: int) -> None:
        """Called when a holder's traffic drains; pass the token on."""
        if self._holder is regulator and not regulator.wants_token():
            self._pass_token(now)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _waiters(self, exclude: "PremRegulator") -> List["PremRegulator"]:
        return [
            m for m in self._members if m is not exclude and m.wants_token()
        ]

    def _grant(self, regulator: "PremRegulator", now: int) -> None:
        self._holder = regulator
        self._held_since = now
        self.grants += 1
        regulator.token_granted()

    def _pass_token(self, now: int) -> None:
        """Grant the token to the next round-robin requester."""
        count = len(self._members)
        for offset in range(1, count + 1):
            candidate = self._members[(self._rr_index + offset) % count]
            if candidate.wants_token():
                self._rr_index = (self._rr_index + offset) % count
                self._grant(candidate, now)
                return
        self._holder = None


# Token-holder admission depends on the other masters' traffic, not
# on time alone, so no analytic horizon exists; regions containing a
# PREM port stay on the event-accurate path.  # repro: ff-opt-out
class PremRegulator(BandwidthRegulator):
    """Admits traffic only while holding the controller's token."""

    def __init__(self, controller: PremController) -> None:
        super().__init__()
        self.controller = controller
        controller.register(self)

    # ------------------------------------------------------------------
    # controller interface
    # ------------------------------------------------------------------
    def wants_token(self) -> bool:
        """True while this master has queued or in-flight traffic."""
        port = self.port
        if port is None:
            return False
        return port.queue_depth > 0 or port.outstanding > 0

    def token_granted(self) -> None:
        self._release()

    # ------------------------------------------------------------------
    # admission interface
    # ------------------------------------------------------------------
    def may_issue(self, txn: Transaction, now: int) -> bool:
        return self.controller.request(self, now)

    def charge(self, txn: Transaction, now: int) -> None:
        super().charge(txn, now)

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        # The token moves on completions/acquisitions, which all kick
        # arbitration; poll at a modest cadence as a fallback.
        return now + 64

    def _on_bind(self, port: MasterPort) -> None:
        # Pass the token on when our traffic drains.
        def on_beat(_nbytes: int, now: int) -> None:
            self.controller.release_if_idle(self, now)

        port.beat_observers.append(on_beat)
