"""The regulator interface.

A regulator lives inline on a :class:`~repro.axi.port.MasterPort`.
The port consults it on every address handshake:

1. ``may_issue(txn, now)`` -- combinational admission decision;
2. ``charge(txn, now)`` -- called when the handshake is accepted;
3. ``next_opportunity(txn, now)`` -- when admission was denied, the
   first cycle at which retrying can succeed (lets the simulation
   stay event-driven instead of polling).

Regulators are also *monitors*: they observe the traffic they police
and export total and per-window counters.  Run-time reconfiguration goes through
``set_budget_bytes`` whose effect latency is regulator-specific (a
few bus cycles for the tightly-coupled IP, the next period boundary
for software MemGuard).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import RegulationError
from repro.axi.txn import Transaction
from repro.telemetry.registry import NULL_COUNTER, get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.axi.port import MasterPort


class BandwidthRegulator:
    """Abstract base of all regulators."""

    def __init__(self) -> None:
        self.port: Optional["MasterPort"] = None
        self.charged_bytes = 0
        self.charged_transactions = 0
        # Telemetry handles; label resolution needs the port name, so
        # the real handles are bound in bind_port.  Until then (and
        # whenever telemetry is off) they are shared no-ops.
        self._tm_grants = NULL_COUNTER
        self._tm_granted_bytes = NULL_COUNTER
        self._tm_window_resets = NULL_COUNTER

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    # repro: telemetry-bind -- one-time handle creation at wiring time
    def bind_port(self, port: "MasterPort") -> None:
        """Attach to the port this regulator polices."""
        if self.port is not None:
            raise RegulationError("regulator bound to two ports")
        self.port = port
        registry = get_registry()
        policy = type(self).__name__
        self._tm_grants = registry.counter(
            "regulator_grants", master=port.name, policy=policy
        )
        self._tm_granted_bytes = registry.counter(
            "regulator_granted_bytes", master=port.name, policy=policy
        )
        self._tm_window_resets = registry.counter(
            "regulator_window_resets", master=port.name, policy=policy
        )
        self._on_bind(port)

    def _on_bind(self, port: "MasterPort") -> None:
        """Subclass hook: subscribe observers, seed state."""

    # ------------------------------------------------------------------
    # the admission interface used by the port
    # ------------------------------------------------------------------
    def may_issue(self, txn: Transaction, now: int) -> bool:
        """Is this transaction's address phase admissible *now*?"""
        raise NotImplementedError

    def charge(self, txn: Transaction, now: int) -> None:
        """Account an accepted transaction.

        Subclasses must call ``super().charge(...)`` to keep the
        monitor totals consistent.
        """
        self.charged_bytes += txn.nbytes
        self.charged_transactions += 1
        self._tm_grants.inc()
        self._tm_granted_bytes.inc(txn.nbytes)

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        """Earliest cycle a denied transaction could be admitted."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # fast-forward protocol (see repro.sim.fastforward)
    # ------------------------------------------------------------------
    def ff_horizon(self, now: int) -> Optional[int]:
        """First future cycle at which this regulator's admission
        decision could change by *time alone* (no traffic in between).

        The fast-forward engine treats the returned cycle as a hard
        upper bound on any macro-step: a blocked region may never span
        it.  Returning ``None`` opts the policy out of analytic
        advancement entirely -- regions containing this regulator stay
        on the event-accurate path.  The base class opts out, so only
        policies that explicitly prove their decision function is
        piecewise-constant in time participate.
        """
        return None

    def ff_advance_bulk(self, now: int) -> None:
        """Settle internal clocks after an analytic macro-step.

        Called once per fast-forwarded region, with ``now`` equal to
        the last cycle the event-accurate kernel would have consulted
        this regulator at.  Implementations must leave the regulator
        in exactly the state a per-cycle denial walk would have --
        including observable counters.  The base implementation is a
        no-op (correct for stateless deniers; opted-out policies are
        never called).
        """

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------
    def set_budget_bytes(self, budget_bytes: int, now: int) -> int:
        """Request a new per-window byte budget.

        Args:
            budget_bytes: New budget (meaning is regulator-specific).
            now: Current cycle.

        Returns:
            The cycle at which the new budget takes effect.

        Raises:
            RegulationError: if the regulator has no notion of budget.
        """
        raise RegulationError(f"{type(self).__name__} does not support budgets")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _release(self) -> None:
        """Tell the port that credit became available."""
        if self.port is not None:
            self.port.regulator_released()
