"""Bandwidth regulation (substrate S6 -- the paper's contribution).

Six regulator families share one interface
(:class:`repro.regulation.base.BandwidthRegulator`):

* :class:`repro.regulation.tightly_coupled.TightlyCoupledRegulator` --
  **the contribution**: a hardware monitor+regulator pair inline on
  the master port.  Fine replenish windows (tens to thousands of
  cycles), burst-aware charging at the address handshake, optional
  credit carry-over, cycle-accurate feedback, and register-write
  reconfiguration within a few bus cycles.
* :class:`repro.regulation.memguard.MemGuardRegulator` -- the
  software baseline: OS-tick periods (~1 ms), PMU-counter overflow
  interrupts with software latency, reconfiguration at period
  boundaries.
* :class:`repro.regulation.tdma.TdmaRegulator` -- time-division
  slots (the hard-real-time composability baseline).
* :class:`repro.regulation.prem.PremRegulator` -- PREM-style mutual
  exclusion with protected critical memory phases.
* :class:`repro.regulation.static_qos.StaticQosRegulator` -- static
  AXI QoS priorities only (no rate control).
* :class:`repro.regulation.noreg.NoRegulation` -- monitored
  passthrough.

:func:`make_regulator` builds any of them from a
:class:`RegulatorSpec`, which is what the SoC platform layer consumes.
"""

from repro.regulation.base import BandwidthRegulator
from repro.regulation.factory import RegulatorSpec, make_regulator
from repro.regulation.memguard import MemGuardConfig, MemGuardRegulator, ReclaimPool
from repro.regulation.noreg import NoRegulation
from repro.regulation.prem import PremController, PremRegulator
from repro.regulation.static_qos import StaticQosRegulator
from repro.regulation.tdma import TdmaRegulator, TdmaSchedule
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)
from repro.regulation.token_bucket import TokenBucket

__all__ = [
    "BandwidthRegulator",
    "RegulatorSpec",
    "make_regulator",
    "MemGuardConfig",
    "MemGuardRegulator",
    "ReclaimPool",
    "NoRegulation",
    "PremController",
    "PremRegulator",
    "StaticQosRegulator",
    "TdmaRegulator",
    "TdmaSchedule",
    "TightlyCoupledConfig",
    "TightlyCoupledRegulator",
    "TokenBucket",
]
