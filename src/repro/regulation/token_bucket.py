"""A discrete-time token bucket.

The accounting core shared by credit-carrying regulator modes.  Time
is integer cycles; refills happen in whole-period steps (matching an
RTL implementation where a period counter triggers a credit adder),
not continuously.

Invariants (property-tested in ``tests/regulation/test_token_bucket.py``):

* tokens never exceed ``capacity``;
* tokens never go negative through ``try_consume`` (only explicit
  ``force_consume(..., allow_debt=True)`` creates a signed deficit,
  which future refills repay before any balance accrues);
* over any span of ``k`` whole periods, at most
  ``initial_tokens + k * refill_amount`` tokens can be consumed.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RegulationError


class TokenBucket:
    """Integer token bucket with periodic whole-step refill.

    Args:
        capacity: Maximum tokens the bucket can hold.
        refill_amount: Tokens added at each period boundary.
        refill_period: Cycles between refills.
        initial: Starting tokens (defaults to ``capacity``).
        start: Cycle of the first period's beginning.
    """

    def __init__(
        self,
        capacity: int,
        refill_amount: int,
        refill_period: int,
        initial: Optional[int] = None,
        start: int = 0,
    ) -> None:
        if capacity < 1:
            raise RegulationError(f"capacity must be >= 1, got {capacity}")
        if refill_amount < 0:
            raise RegulationError(f"refill_amount must be >= 0, got {refill_amount}")
        if refill_period < 1:
            raise RegulationError(f"refill_period must be >= 1, got {refill_period}")
        if initial is not None and not 0 <= initial <= capacity:
            raise RegulationError(
                f"initial tokens {initial} outside [0, {capacity}]"
            )
        self.capacity = capacity
        self.refill_amount = refill_amount
        self.refill_period = refill_period
        self._tokens = capacity if initial is None else initial
        self._last_refill = start
        #: Whole refill periods applied so far (telemetry: each period
        #: boundary is one "window reset" of the owning regulator).
        self.refills = 0

    # ------------------------------------------------------------------
    # time advance
    # ------------------------------------------------------------------
    def _advance(self, now: int) -> None:
        if now < self._last_refill:
            raise RegulationError(
                f"token bucket driven backwards: {now} < {self._last_refill}"
            )
        periods = (now - self._last_refill) // self.refill_period
        if periods:
            self._tokens = min(
                self.capacity, self._tokens + periods * self.refill_amount
            )
            self._last_refill += periods * self.refill_period
            self.refills += periods

    # ------------------------------------------------------------------
    # queries / operations
    # ------------------------------------------------------------------
    def tokens_at(self, now: int) -> int:
        """Tokens available at cycle ``now`` (advances internal time)."""
        self._advance(now)
        return self._tokens

    def peek_tokens(self, now: int) -> int:
        """Tokens that would be available at ``now``, without mutating.

        The read-only twin of :meth:`tokens_at` for observers (probe
        reads): applying pending refills here would be idempotent for
        the balance, but it would advance ``refills`` -- an observable
        counter -- so a pure computation keeps sampled and unsampled
        runs identical.  ``now`` in the past simply reports the
        current balance.
        """
        if now <= self._last_refill:
            return self._tokens
        periods = (now - self._last_refill) // self.refill_period
        if not periods:
            return self._tokens
        return min(self.capacity, self._tokens + periods * self.refill_amount)

    def try_consume(self, amount: int, now: int) -> bool:
        """Atomically consume ``amount`` tokens if available."""
        if amount < 0:
            raise RegulationError(f"cannot consume negative amount {amount}")
        self._advance(now)
        if amount > self._tokens:
            return False
        self._tokens -= amount
        return True

    def force_consume(self, amount: int, now: int, allow_debt: bool = False) -> None:
        """Consume unconditionally.

        Args:
            amount: Tokens to take.
            now: Current cycle.
            allow_debt: When True the balance may go negative (a
                signed credit counter: future refills first repay the
                debt).  When False the balance clamps at zero (a
                saturating counter that forgives overdraw).
        """
        if amount < 0:
            raise RegulationError(f"cannot consume negative amount {amount}")
        self._advance(now)
        self._tokens -= amount
        if not allow_debt and self._tokens < 0:
            self._tokens = 0

    def next_available(self, amount: int, now: int) -> int:
        """First cycle at which ``amount`` tokens will be available.

        Assumes no further consumption in the meantime.

        Raises:
            RegulationError: if ``amount`` exceeds what the bucket can
                ever hold (``capacity``) or refill can never supply it.
        """
        if amount > self.capacity:
            raise RegulationError(
                f"request of {amount} exceeds bucket capacity {self.capacity}"
            )
        self._advance(now)
        if self._tokens >= amount:
            return now
        if self.refill_amount == 0:
            raise RegulationError("bucket never refills; request cannot be met")
        deficit = amount - self._tokens
        periods = -(-deficit // self.refill_amount)  # ceil division
        return self._last_refill + periods * self.refill_period

    def horizon(self, now: int) -> int:
        """First refill-period boundary strictly after ``now``.

        Pure (no ``_advance``): the fast-forward engine calls this
        while *probing* a region, before it has committed to anything,
        so the read must not move ``refills`` or ``_last_refill``.
        Between two boundaries the balance is constant, which is the
        closed-form property the macro-stepper leans on: no admission
        decision of a bucket-backed regulator can change strictly
        inside ``(now, horizon(now))`` without traffic.
        """
        period = self.refill_period
        anchor = self._last_refill
        if now < anchor:
            return anchor
        return anchor + ((now - anchor) // period + 1) * period

    def reconfigure(
        self,
        now: int,
        capacity: Optional[int] = None,
        refill_amount: Optional[int] = None,
    ) -> None:
        """Change capacity and/or refill amount at cycle ``now``.

        Tokens are clamped into the new capacity, mirroring a register
        write in the RTL implementation.
        """
        self._advance(now)
        if capacity is not None:
            if capacity < 1:
                raise RegulationError(f"capacity must be >= 1, got {capacity}")
            self.capacity = capacity
            self._tokens = min(self._tokens, capacity)
        if refill_amount is not None:
            if refill_amount < 0:
                raise RegulationError("refill_amount must be >= 0")
            self.refill_amount = refill_amount
