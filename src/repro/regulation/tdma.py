"""TDMA (time-division) memory regulation.

The classic hard-real-time alternative to rate-based regulation
(T-CREST/PRET-style): the memory timeline is divided into a repeating
frame of fixed slots and each regulated master may only issue during
its own slot.  Guarantees are trivially composable (worst-case wait =
one frame), but the scheme is *non-work-conserving in time*: an idle
slot is lost even if its owner has nothing to send and others are
starving -- the under-utilization argument the rate-based approaches
(and this paper's IP) improve on.

A :class:`TdmaSchedule` is shared by all participating regulators of
one platform; each :class:`TdmaRegulator` holds one slot index.
Slots the platform leaves unassigned are simply idle time (headroom
for unregulated masters such as the host CPU).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RegulationError
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.monitor.window import WindowedBandwidthMonitor
from repro.regulation.base import BandwidthRegulator


class TdmaSchedule:
    """A repeating frame of equal slots.

    Args:
        slot_cycles: Width of one slot.
        num_slots: Slots per frame.
    """

    def __init__(self, slot_cycles: int, num_slots: int) -> None:
        if slot_cycles < 1:
            raise RegulationError(f"slot_cycles must be >= 1, got {slot_cycles}")
        if num_slots < 1:
            raise RegulationError(f"num_slots must be >= 1, got {num_slots}")
        self.slot_cycles = slot_cycles
        self.num_slots = num_slots

    @property
    def frame_cycles(self) -> int:
        return self.slot_cycles * self.num_slots

    def slot_at(self, now: int) -> int:
        """Index of the slot active at cycle ``now``."""
        return (now % self.frame_cycles) // self.slot_cycles

    def slot_start(self, slot_index: int, now: int) -> int:
        """First cycle >= ``now`` at which ``slot_index`` is active."""
        if not 0 <= slot_index < self.num_slots:
            raise RegulationError(
                f"slot {slot_index} outside frame of {self.num_slots}"
            )
        frame_base = (now // self.frame_cycles) * self.frame_cycles
        start = frame_base + slot_index * self.slot_cycles
        if start + self.slot_cycles <= now:
            # This frame's occurrence is already over; take the next.
            start += self.frame_cycles
        # Either the slot is active now (start <= now < start+slot) or
        # it lies in the future; in both cases the answer is below.
        return max(start, now)

    def in_slot(self, slot_index: int, now: int) -> bool:
        return self.slot_at(now) == slot_index

    def cycles_left_in_slot(self, now: int) -> int:
        """Cycles remaining in the currently active slot."""
        return self.slot_cycles - (now % self.slot_cycles)


class TdmaRegulator(BandwidthRegulator):
    """Admits traffic only during this master's TDMA slot.

    A burst is admitted when its *data transfer* fits in the rest of
    the slot (1 beat per cycle at the device), so no burst spills
    into a neighbour's slot -- the property that makes TDMA
    composable.

    Args:
        schedule: The shared frame.
        slot_index: This master's slot.
        monitor_window: Optional bandwidth-monitor window.
    """

    def __init__(
        self,
        schedule: TdmaSchedule,
        slot_index: int,
        monitor_window: int = 0,
    ) -> None:
        super().__init__()
        if not 0 <= slot_index < schedule.num_slots:
            raise RegulationError(
                f"slot_index {slot_index} outside frame of "
                f"{schedule.num_slots} slots"
            )
        self.schedule = schedule
        self.slot_index = slot_index
        self._monitor_window = monitor_window
        self.monitor = None

    def _on_bind(self, port: MasterPort) -> None:
        if self._monitor_window:
            self.monitor = WindowedBandwidthMonitor(port, self._monitor_window)

    def _fits_in_slot(self, txn: Transaction, now: int) -> bool:
        beats = txn.burst_len
        if beats > self.schedule.slot_cycles:
            # A burst longer than a whole slot can never fit; admit at
            # a slot start (forward progress, bounded one-burst spill).
            return now % self.schedule.slot_cycles == 0
        return beats <= self.schedule.cycles_left_in_slot(now)

    def may_issue(self, txn: Transaction, now: int) -> bool:
        return self.schedule.in_slot(self.slot_index, now) and self._fits_in_slot(
            txn, now
        )

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        if self.schedule.in_slot(self.slot_index, now):
            # Blocked by the fit check: wait for the next occurrence
            # of this slot.
            return self.schedule.slot_start(
                self.slot_index, now + self.schedule.cycles_left_in_slot(now)
            )
        return self.schedule.slot_start(self.slot_index, now)

    # ------------------------------------------------------------------
    # fast-forward protocol
    # ------------------------------------------------------------------
    def ff_horizon(self, now: int) -> Optional[int]:
        """Analytic-advance bound: the next occurrence of our slot.

        A denied head stays denied until the slot next *starts*:
        inside the current own slot ``cycles_left_in_slot`` only
        shrinks (so a failed fit keeps failing, and an oversize burst
        is only ever admitted at a slot-start cycle), and outside the
        slot ``in_slot`` is False throughout.  The schedule arithmetic
        is pure, so ``ff_advance_bulk`` stays the base no-op.
        """
        if self.schedule.in_slot(self.slot_index, now):
            horizon = self.schedule.slot_start(
                self.slot_index, now + self.schedule.cycles_left_in_slot(now)
            )
        else:
            horizon = self.schedule.slot_start(self.slot_index, now)
        if self.monitor is not None:
            edge = self.monitor.bin_edge_after(now)
            if edge < horizon:
                horizon = edge
        return horizon

    @property
    def time_share(self) -> float:
        """Fraction of the frame owned by this master."""
        return 1.0 / self.schedule.num_slots
