"""Static AXI QoS "regulation" (ordering, not rate control).

The QoS-400-style baseline: the port's transactions carry a fixed
AXI QoS value and the interconnect uses a
:class:`~repro.axi.arbiter.QosArbiter`.  No handshake is ever stalled;
this class exists so the baseline plugs into the same regulator slot
and exports the same monitoring, making the E4/E5 comparisons
uniform.  Its failure mode -- priority reorders service but cannot
bound a hog's drawn bandwidth -- is visible in those experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RegulationError
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.monitor.window import WindowedBandwidthMonitor
from repro.regulation.base import BandwidthRegulator


# Pure passthrough (stamps QoS, never denies), so the fast-forward
# engine never needs a horizon from it.  # repro: ff-opt-out
class StaticQosRegulator(BandwidthRegulator):
    """Stamp a static AXI QoS value; admit everything.

    Args:
        qos: AXI QoS value (0..15) stamped on the port's traffic.
        monitor_window: Optional bandwidth-monitor window width.
    """

    def __init__(self, qos: int, monitor_window: Optional[int] = None) -> None:
        super().__init__()
        if not 0 <= qos <= 15:
            raise RegulationError(f"qos {qos} outside AXI range 0..15")
        self.qos = qos
        self._monitor_window = monitor_window
        self.monitor: Optional[WindowedBandwidthMonitor] = None

    def _on_bind(self, port: MasterPort) -> None:
        if self._monitor_window:
            self.monitor = WindowedBandwidthMonitor(port, self._monitor_window)

    def may_issue(self, txn: Transaction, now: int) -> bool:
        # Stamping in the admission check guarantees the arbiter sees
        # the value on the first arbitration of this transaction.
        txn.qos = self.qos
        return True

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        return now
