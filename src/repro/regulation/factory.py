"""Regulator construction from declarative specs.

The SoC platform layer describes each port's regulation with a
:class:`RegulatorSpec`; :func:`make_regulator` turns it into a live
regulator object.  This keeps experiment definitions declarative --
a benchmark swaps regulation schemes by swapping specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.sim.kernel import Simulator
from repro.regulation.base import BandwidthRegulator
from repro.regulation.memguard import MemGuardConfig, MemGuardRegulator, ReclaimPool
from repro.regulation.noreg import NoRegulation
from repro.regulation.static_qos import StaticQosRegulator
from repro.regulation.prem import PremController, PremRegulator
from repro.regulation.tdma import TdmaRegulator, TdmaSchedule
from repro.regulation.tightly_coupled import (
    TightlyCoupledConfig,
    TightlyCoupledRegulator,
)

KINDS = (
    "none",
    "noreg",
    "tightly_coupled",
    "memguard",
    "static_qos",
    "tdma",
    "prem",
)


@dataclass(frozen=True)
class RegulatorSpec:
    """Declarative description of one port's regulation.

    Attributes:
        kind: One of :data:`KINDS`.  ``"none"`` means no regulator
            object at all; ``"noreg"`` is a monitored passthrough.
        budget_bytes: Per-window (tightly_coupled) or per-period
            (memguard) byte budget.
        window_cycles: Replenish window for ``tightly_coupled``.
        period_cycles: Regulation period for ``memguard``.
        carryover_windows: Credit carry-over for ``tightly_coupled``.
        burst_aware: Burst-aware charging for ``tightly_coupled``.
        feedback_delay: Monitor-to-regulator feedback delay
            (``tightly_coupled``; 0 = tightly coupled).
        reconfig_latency: Budget register-write latency
            (``tightly_coupled``).
        interrupt_latency: IRQ latency (``memguard``).
        qos: AXI QoS value (``static_qos``).
        monitor_window: Window for passthrough monitors
            (``noreg`` / ``static_qos``).
        window_phase: Explicit window phase offset
            (``tightly_coupled``).
        stagger: Let the platform layer auto-stagger window phases
            across regulated ports (``tightly_coupled``; models IP
            instances being enabled one after another).  Ignored when
            ``window_phase`` is non-zero.
        work_conserving: CMRI-style idle-time injection
            (``tightly_coupled``); the platform wires the DRAM idle
            probe automatically.
        reclaim: Predictive budget reclaim (``memguard``); requires a
            shared :class:`~repro.regulation.memguard.ReclaimPool`,
            which the platform provides automatically.
        reclaim_chunk: Bytes per reclaim grant (``memguard``).
        tdma_slots: Frame length in slots (``tdma``); 0 lets the
            platform size the frame to the number of TDMA-regulated
            masters.  Slot width is ``window_cycles``; the platform
            assigns slot indexes.
        prem_hold_cycles: Memory-phase length bound (``prem``); the
            platform builds one shared token controller per system.
    """

    kind: str = "none"
    budget_bytes: int = 4096
    window_cycles: int = 1024
    period_cycles: int = 250_000
    carryover_windows: int = 0
    burst_aware: bool = True
    feedback_delay: int = 0
    reconfig_latency: int = 4
    interrupt_latency: int = 500
    qos: int = 0
    monitor_window: Optional[int] = None
    window_phase: int = 0
    stagger: bool = True
    work_conserving: bool = False
    regulate_reads: bool = True
    regulate_writes: bool = True
    reclaim: bool = False
    reclaim_chunk: int = 8_192
    tdma_slots: int = 0
    prem_hold_cycles: int = 2_048

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown regulator kind {self.kind!r}; one of {KINDS}")

    def bandwidth_bytes_per_cycle(self) -> float:
        """The long-run rate the spec enforces (regulating kinds only)."""
        if self.kind == "tightly_coupled":
            return self.budget_bytes / self.window_cycles
        if self.kind == "memguard":
            return self.budget_bytes / self.period_cycles
        raise ConfigError(f"{self.kind!r} does not enforce a rate")


def make_regulator(
    spec: Optional[RegulatorSpec],
    sim: Simulator,
    reclaim_pool: Optional[ReclaimPool] = None,
    tdma_binding: Optional[tuple] = None,
    prem_controller: Optional[PremController] = None,
) -> Optional[BandwidthRegulator]:
    """Instantiate the regulator described by ``spec``.

    Args:
        spec: The declarative description; ``None`` or kind
            ``"none"`` yields no regulator.
        sim: Simulation kernel (needed by time-driven regulators).
        reclaim_pool: Shared pool for ``memguard`` specs with
            ``reclaim=True`` (one pool per platform).
        tdma_binding: ``(TdmaSchedule, slot_index)`` for ``tdma``
            specs; the platform computes one schedule per system and
            assigns slot indexes.

    Returns:
        A regulator ready to be passed to
        :class:`~repro.axi.port.MasterPort`, or ``None``.
    """
    if spec is None or spec.kind == "none":
        return None
    if spec.kind == "noreg":
        return NoRegulation(monitor_window=spec.monitor_window)
    if spec.kind == "static_qos":
        return StaticQosRegulator(spec.qos, monitor_window=spec.monitor_window)
    if spec.kind == "tightly_coupled":
        config = TightlyCoupledConfig(
            window_cycles=spec.window_cycles,
            budget_bytes=spec.budget_bytes,
            carryover_windows=spec.carryover_windows,
            burst_aware=spec.burst_aware,
            feedback_delay=spec.feedback_delay,
            reconfig_latency=spec.reconfig_latency,
            window_phase=spec.window_phase,
            work_conserving=spec.work_conserving,
            regulate_reads=spec.regulate_reads,
            regulate_writes=spec.regulate_writes,
        )
        return TightlyCoupledRegulator(sim, config)
    if spec.kind == "memguard":
        config = MemGuardConfig(
            period_cycles=spec.period_cycles,
            budget_bytes=spec.budget_bytes,
            interrupt_latency=spec.interrupt_latency,
            reclaim=spec.reclaim,
            reclaim_chunk=spec.reclaim_chunk,
        )
        if spec.reclaim and reclaim_pool is None:
            raise ConfigError(
                "memguard reclaim requires a shared ReclaimPool "
                "(the platform layer provides one)"
            )
        return MemGuardRegulator(
            sim, config, pool=reclaim_pool if spec.reclaim else None
        )
    if spec.kind == "tdma":
        if tdma_binding is None:
            raise ConfigError(
                "tdma specs need a (schedule, slot) binding "
                "(the platform layer provides one)"
            )
        schedule, slot_index = tdma_binding
        return TdmaRegulator(
            schedule, slot_index, monitor_window=spec.monitor_window or 0
        )
    if spec.kind == "prem":
        if prem_controller is None:
            raise ConfigError(
                "prem specs need a shared PremController "
                "(the platform layer provides one)"
            )
        return PremRegulator(prem_controller)
    raise ConfigError(f"unhandled regulator kind {spec.kind!r}")
