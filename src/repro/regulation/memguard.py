"""Software MemGuard-style regulation (the baseline).

Models the classic OS-level bandwidth reservation mechanism
(MemGuard, RTAS'13) as deployed on the modelled SoC:

* budgets are enforced per **regulation period** equal to the OS
  timer tick (~1 ms; 250k fabric cycles by default) -- orders of
  magnitude coarser than the hardware IP's window;
* consumption is observed through a **PMU byte counter**; when it
  crosses the budget an overflow **interrupt** fires and the software
  handler stalls the offending actor -- but only after
  ``interrupt_latency`` cycles, during which traffic keeps flowing
  (the overshoot the paper measures);
* the actor is released at the **next period boundary**, where the
  budget reloads (classic MemGuard semantics: unused budget is lost,
  excess is not carried as debt);
* reconfiguration (a new budget) is applied by software at the next
  period boundary;
* every period tick and every overflow interrupt costs CPU time,
  tracked in ``overhead_cycles`` for the E7 comparison.

Note the structural limitation the paper stresses: software MemGuard
can only throttle actors the OS controls.  Throttling an FPGA DMA
master requires either cooperation from the accelerator or pausing it
wholesale; we model the mechanism faithfully anyway so its *timing*
properties (coarse period + interrupt latency) can be compared on
equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import RegulationError
from repro.sim.kernel import Phase, Simulator
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.regulation.base import BandwidthRegulator
from repro.telemetry.registry import NULL_COUNTER, get_registry


class ReclaimPool:
    """The global spare-budget pool of MemGuard's reclaim mechanism.

    At every period start each participating regulator predicts its
    need (last period's usage) and donates the unneeded part of its
    budget; regulators that exhaust their budget mid-period draw
    extra chunks from the pool before throttling.  The pool empties
    and refills every period, so reclaim redistributes but never
    inflates the global reservation.
    """

    def __init__(self) -> None:
        self._available = 0
        self._period_start = -1
        self.donated_total = 0
        self.reclaimed_total = 0

    def start_period(self, now: int) -> None:
        """Reset the pool at a period boundary (idempotent per cycle)."""
        if now != self._period_start:
            self._period_start = now
            self._available = 0

    def donate(self, amount: int) -> None:
        if amount < 0:
            raise RegulationError(f"cannot donate negative amount {amount}")
        self._available += amount
        self.donated_total += amount

    def take(self, amount: int) -> int:
        """Grant up to ``amount`` bytes; returns what was granted."""
        if amount < 0:
            raise RegulationError(f"cannot take negative amount {amount}")
        granted = min(amount, self._available)
        self._available -= granted
        self.reclaimed_total += granted
        return granted

    @property
    def available(self) -> int:
        return self._available


@dataclass(frozen=True)
class MemGuardConfig:
    """Static configuration of the software regulator.

    Attributes:
        period_cycles: Regulation period (OS tick) in fabric cycles.
            250_000 cycles = 1 ms at 250 MHz.
        budget_bytes: Bytes allowed per period.
        interrupt_latency: Cycles from PMU overflow to the handler
            actually stalling the actor (IRQ entry + handler work).
        tick_overhead: CPU cycles consumed by each period tick.
        interrupt_overhead: CPU cycles consumed by each overflow IRQ.
        reclaim: Participate in the shared spare-budget pool
            (MemGuard's predictive reclaim): donate the budget slice
            last period's usage suggests will go unused, draw
            ``reclaim_chunk`` grants before throttling.
        reclaim_chunk: Bytes granted per pool request.
    """

    period_cycles: int = 250_000
    budget_bytes: int = 1_000_000
    interrupt_latency: int = 500
    tick_overhead: int = 300
    interrupt_overhead: int = 600
    reclaim: bool = False
    reclaim_chunk: int = 8_192

    def __post_init__(self) -> None:
        if self.period_cycles < 1:
            raise RegulationError("period_cycles must be >= 1")
        if self.budget_bytes < 1:
            raise RegulationError("budget_bytes must be >= 1")
        if self.interrupt_latency < 0:
            raise RegulationError("interrupt_latency must be >= 0")
        if self.tick_overhead < 0 or self.interrupt_overhead < 0:
            raise RegulationError("overheads must be >= 0")
        if self.reclaim_chunk < 1:
            raise RegulationError("reclaim_chunk must be >= 1")

    def bandwidth_bytes_per_cycle(self) -> float:
        """The long-run rate this configuration enforces."""
        return self.budget_bytes / self.period_cycles


class MemGuardRegulator(BandwidthRegulator):
    """Periodic software bandwidth reservation with IRQ throttling."""

    def __init__(
        self,
        sim: Simulator,
        config: MemGuardConfig,
        pool: Optional[ReclaimPool] = None,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.config = config
        self.pool = pool
        if config.reclaim and pool is None:
            raise RegulationError("reclaim enabled but no ReclaimPool given")
        self._budget = config.budget_bytes
        self._pending_budget = None
        self._spent = 0
        self._extra = 0  # reclaimed grant for the current period
        self._last_usage = 0
        self._throttled = False
        self._interrupt_pending = False
        self.overhead_cycles = 0
        self.interrupt_count = 0
        self.tick_count = 0
        self.reconfig_count = 0
        self.reclaimed_bytes = 0
        self._period_start = 0
        self._tm_interrupts = NULL_COUNTER

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    # repro: telemetry-bind -- one-time handle creation at wiring time
    def _on_bind(self, port: MasterPort) -> None:
        # The PMU counts actual data-bus traffic of this master.
        port.beat_observers.append(self._pmu_observe)
        self._tm_interrupts = get_registry().counter(
            "memguard_interrupts", master=port.name
        )
        self.sim.schedule(
            self.config.period_cycles, self._period_tick,
            priority=Phase.REGULATOR, daemon=True,
        )

    # ------------------------------------------------------------------
    # PMU + interrupt machinery
    # ------------------------------------------------------------------
    def _allowance(self) -> int:
        """Budget plus any reclaimed grants for this period."""
        return self._budget + self._extra

    def _pmu_observe(self, nbytes: int, now: int) -> None:
        self._spent += nbytes
        if (
            self._spent >= self._allowance()
            and not self._throttled
            and not self._interrupt_pending
        ):
            self._interrupt_pending = True
            self.sim.schedule(
                self.config.interrupt_latency,
                self._overflow_interrupt,
                priority=Phase.REGULATOR,
            )

    def _overflow_interrupt(self) -> None:
        self._interrupt_pending = False
        self.interrupt_count += 1
        self._tm_interrupts.inc()
        self.overhead_cycles += self.config.interrupt_overhead
        # The period may have rolled over while the IRQ was in flight;
        # in that case the budget was reloaded and no stall happens.
        if self._spent < self._allowance():
            return
        # Reclaim: draw spare budget from the pool before stalling.
        if self.config.reclaim and self.pool is not None:
            granted = self.pool.take(self.config.reclaim_chunk)
            if granted:
                self._extra += granted
                self.reclaimed_bytes += granted
                return
        self._throttled = True

    def _period_tick(self) -> None:
        self._period_start = self.sim.now
        self._last_usage = self._spent
        self._spent = 0
        self._extra = 0
        was_throttled = self._throttled
        self._throttled = False
        if self.config.reclaim and self.pool is not None:
            # Predictive donation: last period's usage forecasts this
            # period's need; the remainder goes to the pool.
            self.pool.start_period(self.sim.now)
            self.pool.donate(max(0, self._budget - self._last_usage))
        if self._pending_budget is not None:
            self._budget = self._pending_budget
            self._pending_budget = None
            self.reconfig_count += 1
        self.tick_count += 1
        self._tm_window_resets.inc()
        self.overhead_cycles += self.config.tick_overhead
        self.sim.schedule(
            self.config.period_cycles, self._period_tick,
            priority=Phase.REGULATOR, daemon=True,
        )
        if was_throttled:
            self._release()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def may_issue(self, txn: Transaction, now: int) -> bool:
        # Software cannot make per-handshake decisions; it only stalls
        # the actor after the overflow interrupt has run.
        return not self._throttled

    def charge(self, txn: Transaction, now: int) -> None:
        # Accounting happens via the PMU at data transfer time; only
        # the monitor totals are updated here.
        super().charge(txn, now)

    def next_opportunity(self, txn: Transaction, now: int) -> int:
        return self._period_start + self.config.period_cycles

    # ------------------------------------------------------------------
    # fast-forward protocol
    # ------------------------------------------------------------------
    def ff_horizon(self, now: int) -> Optional[int]:
        """Analytic-advance bound: the next period tick.

        A throttled actor stays throttled until the tick reloads the
        budget (``may_issue`` reads nothing but ``_throttled``), and
        the tick itself is a daemon event the kernel's queue peek
        already bounds macro-steps by.  The PMU accumulates on data
        beats and the overflow interrupt is a foreground event, so a
        region with either in flight never forms (the fast-forward
        detector's event-population invariant rejects it).
        ``ff_advance_bulk`` stays the base no-op: nothing in this
        regulator advances lazily with wall clock.
        """
        return self._period_start + self.config.period_cycles

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------
    def set_budget_bytes(self, budget_bytes: int, now: int) -> int:
        """Stage a new budget; software applies it at the next tick."""
        if budget_bytes < 1:
            raise RegulationError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self._pending_budget = budget_bytes
        return self._period_start + self.config.period_cycles

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def budget_bytes(self) -> int:
        return self._budget

    @property
    def period_cycles(self) -> int:
        return self.config.period_cycles

    @property
    def throttled(self) -> bool:
        return self._throttled
