"""DRAM timing parameters.

All values are expressed in *fabric cycles* (the simulator's reference
clock).  The defaults approximate a DDR4-2400 64-bit channel behind a
250 MHz fabric: the controller moves ``bus_bytes_per_cycle`` bytes per
fabric cycle when streaming row hits, and pays activate/precharge
penalties scaled to that clock.

The three derived service classes are the ones QoS analysis cares
about:

* **row hit** -- column access only (``t_cas``).
* **row miss** (bank closed) -- activate + column access.
* **row conflict** (other row open) -- precharge + activate + column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DramTiming:
    """Timing set for the modelled DRAM channel, in fabric cycles.

    Attributes:
        t_cas: Column access latency (CAS, a.k.a. CL).
        t_rcd: Row-to-column delay (activate until column ready).
        t_rp: Precharge time (closing an open row).
        beat_cycles: Data-bus cycles per data beat (1 = full rate).
        bus_bytes_per_beat: Bytes moved per data-bus beat.
        rw_turnaround: Extra cycles when switching between read and
            write streams on the data bus.
        t_refi: Average refresh interval (0 disables refresh).
        t_rfc: Refresh cycle time (bus blocked while refreshing).
    """

    t_cas: int = 14
    t_rcd: int = 14
    t_rp: int = 14
    beat_cycles: int = 1
    bus_bytes_per_beat: int = 16
    rw_turnaround: int = 6
    t_refi: int = 1950  # ~7.8 us at 250 MHz
    t_rfc: int = 88  # ~350 ns at 250 MHz

    def __post_init__(self) -> None:
        for field_name in ("t_cas", "t_rcd", "t_rp"):
            if getattr(self, field_name) < 1:
                raise ConfigError(f"{field_name} must be >= 1")
        if self.beat_cycles < 1:
            raise ConfigError("beat_cycles must be >= 1")
        if self.bus_bytes_per_beat < 1:
            raise ConfigError("bus_bytes_per_beat must be >= 1")
        if self.rw_turnaround < 0:
            raise ConfigError("rw_turnaround must be >= 0")
        if self.t_refi < 0 or self.t_rfc < 0:
            raise ConfigError("refresh timings must be >= 0")
        if self.t_refi and self.t_rfc >= self.t_refi:
            raise ConfigError("t_rfc must be smaller than t_refi")

    # ------------------------------------------------------------------
    # derived service latencies (command portion, excludes data beats)
    # ------------------------------------------------------------------
    @property
    def hit_latency(self) -> int:
        """Command cycles for a row-buffer hit."""
        return self.t_cas

    @property
    def miss_latency(self) -> int:
        """Command cycles when the bank is closed (activate needed)."""
        return self.t_rcd + self.t_cas

    @property
    def conflict_latency(self) -> int:
        """Command cycles when another row is open (precharge first)."""
        return self.t_rp + self.t_rcd + self.t_cas

    def data_cycles(self, beats: int) -> int:
        """Data-bus occupancy for a burst of ``beats`` beats."""
        if beats < 1:
            raise ConfigError(f"burst must have >= 1 beat, got {beats}")
        return beats * self.beat_cycles

    @property
    def peak_bytes_per_cycle(self) -> float:
        """Upper bound on sustained bandwidth (streaming row hits)."""
        return self.bus_bytes_per_beat / self.beat_cycles
