"""Per-bank DRAM state.

A bank tracks which row (if any) its row buffer holds and when the
bank finishes its current command sequence.  The controller consults
:meth:`Bank.access_latency` to classify an access (hit / miss /
conflict) and :meth:`Bank.ready_at` for availability.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.timing import DramTiming


class Bank:
    """State of a single DRAM bank."""

    __slots__ = ("index", "open_row", "_ready_at", "hits", "misses", "conflicts")

    def __init__(self, index: int) -> None:
        self.index = index
        self.open_row: Optional[int] = None
        self._ready_at = 0
        self.hits = 0
        self.misses = 0
        self.conflicts = 0

    def ready_at(self) -> int:
        """First cycle the bank can start a new command sequence."""
        return self._ready_at

    def settled(self, now: int) -> bool:
        """True when no command sequence is in flight at ``now``.

        A settled bank has no pending state *transition*: its row
        buffer holds whatever the last access left, and nothing will
        change until the controller issues a new command.  The
        fast-forward engine requires every bank settled before
        macro-stepping (``ready_at`` in the future means a bank-state
        transition -- one of the structural horizon boundaries --
        still lies ahead).
        """
        return self._ready_at <= now

    def classify(self, row: int) -> str:
        """Classify an access to ``row``: ``hit``/``miss``/``conflict``."""
        if self.open_row is None:
            return "miss"
        if self.open_row == row:
            return "hit"
        return "conflict"

    def access_latency(self, row: int, timing: DramTiming) -> int:
        """Command cycles for an access to ``row`` in the current state."""
        kind = self.classify(row)
        if kind == "hit":
            return timing.hit_latency
        if kind == "miss":
            return timing.miss_latency
        return timing.conflict_latency

    def perform_access(self, row: int, start: int, timing: DramTiming) -> int:
        """Commit an access: update row buffer, stats and busy time.

        Args:
            row: Target row.
            start: Cycle the command sequence begins (>= ready_at()).
            timing: Timing parameters.

        Returns:
            The cycle at which the *column data* becomes available
            (command portion finished); the data-bus transfer is
            accounted by the controller.
        """
        kind = self.classify(row)
        latency = self.access_latency(row, timing)
        if kind == "hit":
            self.hits += 1
        elif kind == "miss":
            self.misses += 1
        else:
            self.conflicts += 1
        self.open_row = row
        done = start + latency
        self._ready_at = done
        return done

    def auto_precharge(self, timing: DramTiming) -> None:
        """Close the row right after the current access (closed-page
        policy): the precharge serializes after the column access."""
        self.open_row = None
        self._ready_at += timing.t_rp

    def precharge_all(self, now: int, timing: DramTiming) -> None:
        """Close the row buffer (used around refresh)."""
        if self.open_row is not None:
            self.open_row = None
            self._ready_at = max(self._ready_at, now + timing.t_rp)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses + self.conflicts

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0
