"""Physical address decoding: address -> (bank, row, column).

The default layout is row:bank:column (bank bits between column and
row bits), the common choice on the modelled SoC family because it
spreads sequential streams across banks only at row granularity,
keeping streaming accesses inside one row (maximizing row hits) while
different large buffers land on different banks.

An alternative ``bank_interleaved`` layout (bank bits directly above
the burst bits) is provided for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigError


def _is_pow2(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass(frozen=True)
class AddressMap:
    """Bit-sliced DRAM address decoding.

    Attributes:
        num_banks: Bank count (power of two).
        row_bytes: Row (page) size in bytes (power of two).
        interleave: ``"row_bank_col"`` (default) or ``"bank_interleaved"``.
        interleave_bytes: For ``bank_interleaved``, the stripe width in
            bytes after which the bank index increments.
    """

    num_banks: int = 8
    row_bytes: int = 2048
    interleave: str = "row_bank_col"
    interleave_bytes: int = 256

    def __post_init__(self) -> None:
        if not _is_pow2(self.num_banks):
            raise ConfigError(f"num_banks must be a power of two, got {self.num_banks}")
        if not _is_pow2(self.row_bytes):
            raise ConfigError(f"row_bytes must be a power of two, got {self.row_bytes}")
        if self.interleave not in ("row_bank_col", "bank_interleaved"):
            raise ConfigError(f"unknown interleave {self.interleave!r}")
        if not _is_pow2(self.interleave_bytes):
            raise ConfigError(
                f"interleave_bytes must be a power of two, got {self.interleave_bytes}"
            )

    def decode(self, addr: int) -> Tuple[int, int]:
        """Decode a byte address into ``(bank, row)``.

        Column position within the row does not affect timing at this
        abstraction level, so it is not returned.
        """
        if addr < 0:
            raise ConfigError(f"negative address {addr:#x}")
        if self.interleave == "row_bank_col":
            row_index_global = addr // self.row_bytes
            bank = row_index_global % self.num_banks
            row = row_index_global // self.num_banks
            return bank, row
        # bank_interleaved: stripe banks at interleave_bytes granularity.
        stripe = addr // self.interleave_bytes
        bank = stripe % self.num_banks
        # Row index within the bank: fold out the bank bits.
        per_bank_offset = (
            stripe // self.num_banks
        ) * self.interleave_bytes + addr % self.interleave_bytes
        row = per_bank_offset // self.row_bytes
        return bank, row

    def same_row(self, addr_a: int, addr_b: int) -> bool:
        """True when both addresses fall in the same (bank, row)."""
        return self.decode(addr_a) == self.decode(addr_b)
