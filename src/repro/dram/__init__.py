"""DRAM device and controller model (substrate S3).

The shared DRAM controller is the resource whose contention the
reproduced paper regulates, so the model keeps the properties that
matter for QoS studies:

* a banked device with open-row (row-buffer) state, so access
  *locality* changes service time (row hit vs miss vs conflict);
* an FR-FCFS scheduler (row hits first, then oldest), the policy of
  commercial controllers, with a starvation cap;
* a serialized data bus -- the actual bandwidth bottleneck;
* read/write turnaround penalties and periodic refresh.

Absolute latencies are derived from a DDR4-like timing set expressed
in fabric cycles; see :class:`repro.dram.timing.DramTiming`.
"""

from repro.dram.address_map import AddressMap
from repro.dram.bank import Bank
from repro.dram.controller import DramConfig, DramController
from repro.dram.timing import DramTiming

__all__ = [
    "AddressMap",
    "Bank",
    "DramConfig",
    "DramController",
    "DramTiming",
]
