"""The DRAM memory controller.

Models the controller of the shared DDR channel as a two-stage
pipeline: bank command sequences (activate / precharge / column
access) overlap with the data-bus transfer of the previous request,
and the serialized data bus is the sustained-bandwidth bottleneck.

Scheduling policies:

* ``frfcfs`` (default) -- First-Ready FCFS: row-buffer hits are served
  before older non-hits, bounded by a starvation cap, as in
  commercial controllers.  Locality-rich streams (DMA hogs) extract
  more bandwidth per request, which is why unregulated accelerators
  hurt latency-sensitive CPU traffic so badly.
* ``fcfs`` -- strict arrival order; a pessimistic baseline used in
  sensitivity studies.

Refresh is modelled as a periodic all-bank event that closes row
buffers and blocks the data bus for ``t_rfc`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError, ProtocolError
from repro.sim.kernel import Phase, Simulator
from repro.sim.stats import StatSet
from repro.axi.txn import Transaction
from repro.dram.address_map import AddressMap
from repro.dram.bank import Bank
from repro.dram.timing import DramTiming
from repro.telemetry.registry import get_registry


@dataclass(frozen=True)
class DramConfig:
    """Static DRAM controller configuration.

    Attributes:
        timing: Device timing set (fabric cycles).
        address_map: Physical address decoding.
        scheduler: ``"frfcfs"``, ``"frfcfs_qos"`` or ``"fcfs"``.
            ``frfcfs_qos`` restricts each pick to the highest AXI QoS
            value present in the queue before applying the FR-FCFS
            rule, modelling DDR controllers that map AxQOS into
            scheduling priority.
        frfcfs_cap: Max number of row hits that may bypass the oldest
            queued request before it is force-served (starvation cap).
        refresh_enabled: Model periodic refresh.
        posted_writes: Writes complete at a write buffer (the
            controller acknowledges as soon as the data is accepted),
            as commercial controllers do; the drain to the device
            still occupies the data bus.  Read latency then excludes
            write-drain waiting only insofar as the scheduler can
            reorder -- see ``read_priority``.
        write_buffer_depth: Posted-write buffer entries; when full,
            writes are no longer posted (back-pressure).
        read_priority: Scheduler prefers reads over buffered writes
            until the write buffer reaches its high watermark
            (read-first with drain threshold, the standard policy).
        write_drain_watermark: Buffered writes that force draining.
        row_policy: ``"open"`` keeps rows open after an access
            (row-buffer locality pays off; conflicts cost extra) or
            ``"closed"`` auto-precharges after every access (every
            access is activate+CAS; predictable but locality-blind,
            the policy some real-time controllers choose).
    """

    timing: DramTiming = field(default_factory=DramTiming)
    address_map: AddressMap = field(default_factory=AddressMap)
    scheduler: str = "frfcfs"
    frfcfs_cap: int = 4
    refresh_enabled: bool = True
    posted_writes: bool = False
    write_buffer_depth: int = 16
    read_priority: bool = False
    write_drain_watermark: int = 12
    row_policy: str = "open"

    def __post_init__(self) -> None:
        if self.scheduler not in ("frfcfs", "frfcfs_qos", "fcfs"):
            raise ConfigError(f"unknown scheduler {self.scheduler!r}")
        if self.frfcfs_cap < 0:
            raise ConfigError(f"frfcfs_cap must be >= 0, got {self.frfcfs_cap}")
        if self.write_buffer_depth < 1:
            raise ConfigError("write_buffer_depth must be >= 1")
        if not 1 <= self.write_drain_watermark <= self.write_buffer_depth:
            raise ConfigError(
                "write_drain_watermark must be in [1, write_buffer_depth]"
            )
        if self.read_priority and not self.posted_writes:
            raise ConfigError("read_priority requires posted_writes")
        if self.row_policy not in ("open", "closed"):
            raise ConfigError(f"unknown row policy {self.row_policy!r}")


class _QueueEntry:
    __slots__ = ("txn", "arrival", "bank", "row", "bypasses", "posted")

    def __init__(
        self,
        txn: Transaction,
        arrival: int,
        bank: int,
        row: int,
        posted: bool = False,
    ) -> None:
        self.txn = txn
        self.arrival = arrival
        self.bank = bank
        self.row = row
        self.bypasses = 0
        #: Posted write: already acknowledged upstream; this entry is
        #: only the drain of the buffered data to the device.
        self.posted = posted


class DramController:
    """FR-FCFS memory controller over a banked device."""

    def __init__(self, sim: Simulator, config: Optional[DramConfig] = None) -> None:
        self.sim = sim
        self.config = config or DramConfig()
        self.timing = self.config.timing
        self.address_map = self.config.address_map
        self.banks = [Bank(i) for i in range(self.address_map.num_banks)]
        self.stats = StatSet("dram")
        self._queue: List[_QueueEntry] = []
        self._upstream = None
        self._bus_free_at = 0
        # First cycle the scheduler may pick the next request.  Set to
        # the *start* of the previous data transfer so the next bank
        # command sequence overlaps it (two-stage pipeline); streaming
        # row hits then sustain the full data-bus rate.
        self._pick_free_at = 0
        self._last_was_write: Optional[bool] = None
        self._busy_cycles = 0
        self._buffered_writes = 0
        self._sched_scheduled_at: Optional[int] = None
        # Process-wide telemetry handles (null no-ops when disabled),
        # resolved once per controller; _service updates the matching
        # kind counter through this dict without a registry lookup.
        registry = get_registry()
        self._tm_row = {
            kind: registry.counter("dram_row_access", kind=kind)
            for kind in ("hit", "miss", "conflict")
        }
        self._tm_serviced = registry.counter("dram_serviced")
        self._tm_bytes = registry.counter("dram_bytes")
        self._tm_refreshes = registry.counter("dram_refreshes")
        self._tm_turnarounds = registry.counter("dram_turnarounds")
        self._tm_queue_depth = registry.histogram("dram_queue_depth")
        if self.config.refresh_enabled and self.timing.t_refi > 0:
            self.sim.schedule(
                self.timing.t_refi, self._refresh, priority=Phase.MEMORY,
                daemon=True,
            )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def set_upstream(self, upstream) -> None:
        """Connect the interconnect that receives completions."""
        if self._upstream is not None:
            raise ProtocolError("upstream attached twice")
        self._upstream = upstream

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def enqueue(self, txn: Transaction) -> None:
        """Accept a transaction from the interconnect."""
        bank, row = self.address_map.decode(txn.addr)
        posted = (
            self.config.posted_writes
            and txn.is_write
            and self._buffered_writes < self.config.write_buffer_depth
        )
        self._queue.append(
            _QueueEntry(txn, self.sim.now, bank, row, posted=posted)
        )
        self.stats.counter("enqueued").add()
        self.stats.sampler("queue_depth").record(len(self._queue))
        self._tm_queue_depth.observe(len(self._queue))
        if posted:
            # The write buffer acknowledges immediately; the drain to
            # the device stays queued.
            self._buffered_writes += 1
            self.stats.counter("posted_writes").add()
            txn.mark_mem_start(self.sim.now)
            upstream = self._upstream
            if upstream is None:
                raise ProtocolError("no upstream attached to DRAM controller")
            upstream.on_mem_complete(txn)
        self._kick()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def ff_quiescent(self, now: int) -> bool:
        """True when the controller is fully drained at ``now``.

        The fast-forward engine only macro-steps regions where the
        memory system is provably inert: nothing queued, no posted
        write draining, no scheduler pass pending, the data bus and
        pick stage free, and every bank settled (no in-flight command
        sequence -- a future ``ready_at`` is a bank-state transition
        and therefore a structural horizon boundary).  Refresh stays
        safe without being checked here: the refresh daemon is a
        queued event, and the kernel bounds every macro-step by the
        queue's next event time.
        """
        if self._queue or self._buffered_writes:
            return False
        if self._sched_scheduled_at is not None:
            return False
        if self._bus_free_at > now or self._pick_free_at > now:
            return False
        return all(bank.settled(now) for bank in self.banks)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        at = max(self.sim.now, self._next_schedule_time())
        if self._sched_scheduled_at is not None and self._sched_scheduled_at <= at:
            return
        self._sched_scheduled_at = at
        self.sim.schedule_at(at, self._schedule_pass, priority=Phase.MEMORY)

    def _next_schedule_time(self) -> int:
        # The pipeline admits a new request as soon as the previous
        # one has started its data transfer (two-stage overlap).
        return self._pick_free_at

    def _schedule_pass(self) -> None:
        self._sched_scheduled_at = None
        if not self._queue:
            return
        now = self.sim.now
        if now < self._pick_free_at:
            self._kick()
            return
        entry = self._pick(now)
        self._queue.remove(entry)
        self._service(entry, now)
        if self._queue:
            self._kick()

    def _pick(self, now: int) -> _QueueEntry:
        """Select the next request according to the configured policy."""
        candidates = self._queue
        if self.config.read_priority:
            # Read-first with drain threshold: hold buffered writes
            # back while reads are pending, until the buffer fills to
            # its watermark.
            reads = [e for e in candidates if not e.posted]
            if reads and self._buffered_writes < self.config.write_drain_watermark:
                candidates = reads
        if self.config.scheduler == "frfcfs_qos":
            top_qos = max(e.txn.qos for e in candidates)
            candidates = [e for e in candidates if e.txn.qos == top_qos]
        oldest = min(candidates, key=lambda e: (e.arrival, e.txn.txn_id))
        if self.config.scheduler == "fcfs":
            return oldest
        # FR-FCFS with starvation cap.
        hits = [
            e for e in candidates if self.banks[e.bank].classify(e.row) == "hit"
        ]
        if not hits:
            return oldest
        best_hit = min(hits, key=lambda e: (e.arrival, e.txn.txn_id))
        if best_hit is oldest:
            return oldest
        if oldest.bypasses >= self.config.frfcfs_cap:
            return oldest
        oldest.bypasses += 1
        self.stats.counter("frfcfs_bypasses").add()
        return best_hit

    def _service(self, entry: _QueueEntry, now: int) -> None:
        txn = entry.txn
        bank = self.banks[entry.bank]
        kind = bank.classify(entry.row)
        self.stats.counter(f"row_{kind}").add()
        self._tm_row[kind].inc()

        cmd_start = max(now, bank.ready_at())
        data_ready = bank.perform_access(entry.row, cmd_start, self.timing)
        if self.config.row_policy == "closed":
            bank.auto_precharge(self.timing)

        bus_start = max(data_ready, self._bus_free_at)
        if self._last_was_write is not None and self._last_was_write != txn.is_write:
            bus_start += self.timing.rw_turnaround
            self.stats.counter("turnarounds").add()
            self._tm_turnarounds.inc()
        data_cycles = self.timing.data_cycles(txn.burst_len)
        bus_end = bus_start + data_cycles

        self._bus_free_at = bus_end
        self._pick_free_at = bus_start
        self._last_was_write = txn.is_write
        self._busy_cycles += data_cycles
        self.stats.counter("serviced").add()
        self.stats.counter("bytes").add(txn.nbytes)
        self._tm_serviced.inc()
        self._tm_bytes.inc(txn.nbytes)
        self.stats.sampler("service_time").record(bus_end - entry.arrival)

        if entry.posted:
            # Drain of an already-acknowledged write: free the buffer
            # slot when the data leaves the bus; no upstream
            # completion (it was sent at enqueue).
            self.sim.schedule_at(
                bus_end, self._drain_done, priority=Phase.MEMORY
            )
            return
        txn.mark_mem_start(cmd_start)
        upstream = self._upstream
        if upstream is None:
            raise ProtocolError("no upstream attached to DRAM controller")
        self.sim.schedule_at(
            bus_end, lambda t=txn: upstream.on_mem_complete(t), priority=Phase.MEMORY
        )

    def _drain_done(self) -> None:
        self._buffered_writes -= 1

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        now = self.sim.now
        for bank in self.banks:
            bank.precharge_all(now, self.timing)
        # All-bank refresh blocks the device for t_rfc.
        refresh_end = max(self._bus_free_at, now) + self.timing.t_rfc
        self._bus_free_at = refresh_end
        self._pick_free_at = max(self._pick_free_at, refresh_end)
        for bank in self.banks:
            bank._ready_at = max(bank.ready_at(), refresh_end)
        self.stats.counter("refreshes").add()
        self._tm_refreshes.inc()
        self.sim.schedule(
            self.timing.t_refi, self._refresh, priority=Phase.MEMORY, daemon=True
        )
        if self._queue:
            self._kick()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def busy_cycles(self) -> int:
        """Data-bus cycles spent transferring payload."""
        return self._busy_cycles

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the data bus moved payload."""
        if elapsed <= 0:
            raise ConfigError(f"elapsed must be positive, got {elapsed}")
        return self._busy_cycles / elapsed

    def row_hit_rate(self) -> float:
        """Aggregate row-buffer hit rate across banks."""
        total = sum(b.accesses for b in self.banks)
        if not total:
            return 0.0
        return sum(b.hits for b in self.banks) / total
