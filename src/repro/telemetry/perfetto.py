"""Chrome/Perfetto trace-event export.

Turns the simulator's transaction records
(:class:`~repro.sim.trace.TraceRecord`) and regulator throttle
intervals into the Chrome trace-event JSON format, which
``ui.perfetto.dev`` (and ``chrome://tracing``) open directly.

Mapping:

* Each **master** becomes one track (``tid``); each completed
  transaction contributes two complete-duration slices (``"ph": "X"``):
  a *wait* slice from creation to interconnect acceptance and an
  *xfer* slice from acceptance to response.  One simulated cycle maps
  to one microsecond, so the timeline reads directly in cycles.
* Each **regulator** gets a companion track carrying *throttle*
  slices -- the intervals during which the port's head transaction
  was being denied (:attr:`~repro.axi.port.MasterPort.throttle_log`).
* Thread-name metadata events (``"ph": "M"``) label the tracks.

For long runs, construct the sink with ``ring_buffer=N`` to keep only
the most recent ``N`` slices (oldest dropped first), bounding memory
like a hardware trace buffer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.sim.trace import TraceRecord

JsonEvent = Dict[str, object]

#: Process id used for all simulator tracks.
TRACE_PID = 1


class TraceEventSink:
    """Accumulates Chrome trace events, optionally ring-buffered.

    Args:
        ring_buffer: Keep at most this many duration events (oldest
            evicted first); ``None`` keeps everything.

    Raises:
        ConfigError: If ``ring_buffer`` is zero or negative.
    """

    def __init__(self, ring_buffer: Optional[int] = None) -> None:
        if ring_buffer is not None and ring_buffer <= 0:
            raise ConfigError(
                f"ring_buffer must be >= 1, got {ring_buffer}"
            )
        self._events: Union[List[JsonEvent], Deque[JsonEvent]] = (
            deque(maxlen=ring_buffer) if ring_buffer is not None else []
        )
        self.dropped = 0
        self._ring = ring_buffer
        self._tids: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # track management
    # ------------------------------------------------------------------
    def tid_for(self, track: str) -> int:
        """Stable thread id for a named track (allocated on first use)."""
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids) + 1
        return tid

    # ------------------------------------------------------------------
    # event emission
    # ------------------------------------------------------------------
    def add_slice(
        self,
        track: str,
        name: str,
        start: int,
        duration: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Add one complete-duration event (``ph: "X"``).

        ``start``/``duration`` are in simulated cycles; exported
        timestamps use 1 cycle = 1 microsecond.
        """
        event: JsonEvent = {
            "name": name,
            "ph": "X",
            "ts": start,
            "dur": max(duration, 1),
            "pid": TRACE_PID,
            "tid": self.tid_for(track),
            "cat": "sim",
        }
        if args:
            event["args"] = args
        if self._ring is not None and len(self._events) == self._ring:
            self.dropped += 1
        self._events.append(event)

    def add_transaction(self, record: TraceRecord) -> None:
        """Two slices per transaction: queueing wait, then transfer."""
        kind = "write" if record.is_write else "read"
        args = {
            "txn_id": record.txn_id,
            "addr": hex(record.addr),
            "nbytes": record.nbytes,
        }
        wait = record.accepted - record.created
        if wait > 0:
            self.add_slice(
                record.master, f"wait {kind}", record.created, wait, args
            )
        self.add_slice(
            record.master,
            f"{kind} {record.nbytes}B",
            record.accepted,
            record.completed - record.accepted,
            args,
        )

    def add_throttle(
        self, regulator_track: str, start: int, end: int,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """One regulator throttle interval as a slice."""
        self.add_slice(regulator_track, "throttle", start, end - start, args)

    def add_transactions(self, records: Iterable[TraceRecord]) -> None:
        for record in records:
            self.add_transaction(record)

    def add_throttle_log(
        self, master: str, intervals: Iterable[Tuple[int, int]]
    ) -> None:
        """All throttle intervals of one master's regulator."""
        track = f"{master}/regulator"
        for start, end in intervals:
            self.add_throttle(track, start, end, {"master": master})

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _metadata(self) -> List[JsonEvent]:
        meta: List[JsonEvent] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID,
                "args": {"name": "repro-sim"},
            }
        ]
        for track, tid in sorted(self._tids.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            meta.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": TRACE_PID,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        return meta

    def to_dict(self) -> Dict[str, object]:
        """The trace as a Chrome trace-event JSON object."""
        return {
            "traceEvents": self._metadata() + list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.telemetry.perfetto",
                "time_unit": "1us = 1 simulated cycle",
                "dropped_events": self.dropped,
            },
        }

    def write(self, path: str) -> None:
        """Write ``trace.json`` (open it at ui.perfetto.dev)."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)

    def __len__(self) -> int:
        """Number of buffered duration events (metadata excluded)."""
        return len(self._events)


def export_platform_trace(
    platform: "object",
    path: Optional[str] = None,
    ring_buffer: Optional[int] = None,
) -> TraceEventSink:
    """Export a run platform's recorded lifecycle + throttle intervals.

    Requires the platform to have been built with transaction tracing
    enabled (``PlatformConfig.trace_masters``); regulator throttle
    tracks appear for every port whose ``throttle_log`` is non-empty.
    """
    sink = TraceEventSink(ring_buffer=ring_buffer)
    recorder = getattr(platform, "trace", None)
    if recorder is not None:
        sink.add_transactions(recorder)
    for name, port in getattr(platform, "ports", {}).items():
        # Prefer the bounded-ring accessor; fall back to a plain
        # throttle_log attribute for port-like stand-ins.
        accessor = getattr(port, "throttle_intervals", None)
        log = accessor() if callable(accessor) else getattr(
            port, "throttle_log", None
        )
        if log:
            sink.add_throttle_log(name, log)
    if path is not None:
        sink.write(path)
    return sink
