"""Shared logging helper for the ``repro`` package.

All package code obtains its logger from :func:`get_logger`, which
parents everything under the ``"repro"`` logger and configures that
root exactly once: a stderr handler with a compact format and a level
taken from ``REPRO_LOG_LEVEL`` (default ``WARNING``, so the library
is silent in normal use).  Applications embedding the library can
call :func:`get_logger` with ``configure=False`` -- or configure the
``"repro"`` logger themselves first -- and the helper will not touch
handlers at all.
"""

from __future__ import annotations

# repro: config-layer -- this module resolves environment knobs
import logging
import os
from typing import Optional

#: Environment variable controlling the package log level.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Root logger name for the whole package.
ROOT_LOGGER = "repro"

_DEFAULT_LEVEL = "WARNING"

_configured = False


def resolve_level(name: Optional[str] = None) -> int:
    """Map a level name (argument > ``REPRO_LOG_LEVEL`` > WARNING) to int.

    Unknown names fall back to WARNING rather than raising: a typo in
    an environment knob should never take down a simulation.
    """
    if name is None:
        name = os.environ.get(LOG_LEVEL_ENV, "") or _DEFAULT_LEVEL
    value = logging.getLevelName(name.strip().upper())
    if not isinstance(value, int):
        value = logging.WARNING
    return value


def configure(level: Optional[str] = None, force: bool = False) -> logging.Logger:
    """Attach the package's stderr handler to the ``repro`` root logger.

    Idempotent; respects handlers installed by the host application
    unless ``force`` re-applies the level anyway.
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER)
    if _configured and not force:
        return root
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
        root.propagate = False
    root.setLevel(resolve_level(level))
    _configured = True
    return root


def get_logger(name: str = ROOT_LOGGER, configure_root: bool = True) -> logging.Logger:
    """The module logger for ``name``, parented under ``repro``.

    Args:
        name: Usually the caller's ``__name__``; names outside the
            ``repro`` namespace are re-parented under it.
        configure_root: When True (default), lazily install the
            package stderr handler honouring ``REPRO_LOG_LEVEL``.
    """
    if configure_root:
        configure()
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)
