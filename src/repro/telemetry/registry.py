"""The process-wide metrics registry.

Every instrumented component (kernel, ports, DRAM controller,
regulators, runner) obtains *handles* -- :class:`Counter`,
:class:`Gauge`, :class:`Histogram` -- from a :class:`MetricsRegistry`
at construction time and updates them on its normal code paths.
Handles are identified by a metric name plus a frozen label set
(``counter("axi_completed", master="cpu0")``), so one metric
aggregates across components while labels keep the per-component
breakdown.

Overhead discipline (the subsystem's core contract):

* When telemetry is **disabled** (``REPRO_TELEMETRY=off`` or a
  registry built with ``enabled=False``), every accessor returns a
  shared *null* handle whose update methods are no-ops.  Components
  keep a uniform call site; the cost is one no-op method call on
  transaction-granularity paths only.
* Nanosecond-granularity paths (the event-queue push/pop loops) are
  never instrumented push-style at all: the queues maintain a few
  plain integers on their *cold* branches and the kernel exposes them
  pull-style via :meth:`repro.sim.kernel.Simulator.kernel_stats`, so
  the hot loops are byte-identical with telemetry on or off.

The module keeps one default registry per process
(:func:`get_registry`); tests and tools can swap it with
:func:`set_registry` or scope it with :func:`use_registry`.
"""

from __future__ import annotations

# repro: config-layer -- this module resolves environment knobs
import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

Number = Union[int, float]

#: Environment variable gating telemetry collection process-wide.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Values of :data:`TELEMETRY_ENV` that disable collection.
_OFF_VALUES = ("off", "0", "no", "false")

#: Frozen label encoding: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (powers of two): wide enough
#: for cycle latencies and queue depths without per-metric tuning.
DEFAULT_BUCKETS = tuple(1 << i for i in range(1, 21))


def telemetry_enabled() -> bool:
    """True unless ``REPRO_TELEMETRY`` is set to an off value."""
    value = os.environ.get(TELEMETRY_ENV, "").strip().lower()
    return value not in _OFF_VALUES or value == ""


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing tally handle."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (non-negative) to the counter."""
        self.value += amount

    def snapshot(self) -> Number:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A handle holding the latest value of some instantaneous signal."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Number:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """A streaming histogram handle with fixed bucket upper bounds.

    Stores one count per bucket plus count/sum/max, so memory stays
    O(buckets) no matter how many samples are observed -- the same
    trade a hardware range-counter monitor makes
    (:class:`repro.monitor.histogram.LatencyHistogram`).
    """

    __slots__ = ("name", "labels", "bounds", "counts", "overflow",
                 "count", "total", "maximum")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        bounds: Sequence[Number] = DEFAULT_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(
                f"histogram {name!r}: bounds must be non-empty and ascending"
            )
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total: Number = 0
        self.maximum: Number = 0

    def observe(self, value: Number) -> None:
        """Fold one sample into its bucket."""
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value
        bounds = self.bounds
        # Linear scan: bucket lists are short and samples are small in
        # the common case, so this beats bisect's call overhead.
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile_bound(self, pct: float) -> Number:
        """Upper bucket bound containing the ``pct`` percentile."""
        if not 0 < pct <= 100:
            raise ConfigError(f"percentile {pct} out of (0, 100]")
        if not self.count:
            return 0
        threshold = pct / 100.0 * self.count
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= threshold:
                return bound
        return self.maximum

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": float(self.mean),
            "max": float(self.maximum),
            "p50": float(self.percentile_bound(50)),
            "p99": float(self.percentile_bound(99)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}{dict(self.labels)}, n={self.count})"


class _NullCounter:
    """Shared no-op counter handle (telemetry disabled)."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass

    def snapshot(self) -> Number:
        return 0


class _NullGauge:
    """Shared no-op gauge handle (telemetry disabled)."""

    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass

    def snapshot(self) -> Number:
        return 0


class _NullHistogram:
    """Shared no-op histogram handle (telemetry disabled)."""

    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"count": 0.0, "mean": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}


#: The singletons every disabled registry hands out.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """A named family of metric handles with label sets.

    Args:
        enabled: ``None`` defers to ``REPRO_TELEMETRY``; ``False``
            makes every accessor return the shared null handles, so
            instrumented code paths cost one no-op call at most.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        self.enabled = telemetry_enabled() if enabled is None else bool(enabled)
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # handle accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """The counter handle for ``name`` + ``labels`` (created once)."""
        if not self.enabled:
            return NULL_COUNTER
        key = (name, _label_key(labels))
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter(name, key[1])
        return handle

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge handle for ``name`` + ``labels`` (created once)."""
        if not self.enabled:
            return NULL_GAUGE
        key = (name, _label_key(labels))
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge(name, key[1])
        return handle

    def histogram(
        self,
        name: str,
        bounds: Sequence[Number] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram handle for ``name`` + ``labels`` (created once).

        ``bounds`` applies on first creation; later calls reuse the
        existing handle regardless.
        """
        if not self.enabled:
            return NULL_HISTOGRAM
        key = (name, _label_key(labels))
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram(name, key[1], bounds)
        return handle

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def collect(self) -> Dict[str, List[Dict[str, object]]]:
        """Snapshot all handles: metric name -> list of label'd values."""
        out: Dict[str, List[Dict[str, object]]] = {}
        for (name, labels), counter in sorted(self._counters.items()):
            out.setdefault(name, []).append(
                {"labels": dict(labels), "type": "counter",
                 "value": counter.value}
            )
        for (name, labels), gauge in sorted(self._gauges.items()):
            out.setdefault(name, []).append(
                {"labels": dict(labels), "type": "gauge", "value": gauge.value}
            )
        for (name, labels), hist in sorted(self._histograms.items()):
            out.setdefault(name, []).append(
                {"labels": dict(labels), "type": "histogram",
                 "value": hist.summary()}
            )
        return out

    def format_summary(self, limit: Optional[int] = None) -> str:
        """Human-readable summary, one line per (metric, label set).

        Args:
            limit: Keep only the first ``limit`` lines (None = all).
        """
        lines: List[str] = []
        for name, entries in self.collect().items():
            for entry in entries:
                labels = entry["labels"]
                tag = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                value = entry["value"]
                if entry["type"] == "histogram":
                    value = (
                        f"count={value['count']:.0f} mean={value['mean']:.1f} "
                        f"p99={value['p99']:.0f} max={value['max']:.0f}"
                    )
                lines.append(f"{name}{tag} = {value}")
        if limit is not None:
            lines = lines[:limit]
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every handle (new handles start from zero).

        Components keep updating their *old* handles after a reset;
        reset is for process-level tools that rebuild the world (and
        for tests), not for zeroing live components mid-run.
        """
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: The process-wide default registry (lazily built from the env).
_default: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _default
    if _default is None:
        # Each process owns its own lazily-created singleton: a pool
        # worker building one is correct isolation, not lost state --
        # worker-side counters are folded into the returned summary,
        # never read back through this global.  # repro: allow[CONC001]
        _default = MetricsRegistry()
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one.

    Components capture handles at construction time, so swap the
    registry *before* building the platform under measurement.
    """
    global _default
    previous = get_registry()
    _default = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the default registry to a ``with`` block (test helper)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
