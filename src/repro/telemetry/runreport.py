"""Runner batch telemetry reports.

The parallel runner already accounts for what it did
(:class:`~repro.runner.parallel.RunnerStats`: cache hits, dedup,
executed count, wall time, per-spec timings).  This module freezes
one batch's accounting into a :class:`RunnerTelemetry` record and
writes it as a JSON report next to the results it describes, so a
sweep leaves behind *how it ran* alongside *what it computed* --
the record ``scripts/bench_smoke.py`` appends into
``BENCH_runner.json`` (schema 4).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

#: Report format version.  2: adds ``worker_source`` (provenance of
#: the resolved worker count), ``recovered`` (worker-crash
#: re-executions), and ``single_flight_waited`` (specs satisfied by
#: another process's in-flight computation).
REPORT_SCHEMA = 2


@dataclass(frozen=True)
class RunnerTelemetry:
    """How one runner batch executed.

    Attributes:
        total: Specs requested.
        executed: Simulations actually performed.
        cache_hits: Specs satisfied from the on-disk cache.
        cache_misses: Cache lookups in this batch that found nothing.
        cache_poisoned: Corrupt/stale entries this batch discarded.
        deduped: Specs satisfied by an equal-hash batch sibling.
        mode: ``"parallel"`` or ``"serial"``.
        workers: Worker processes used for the executed part.
        worker_source: Provenance of the resolved worker count
            (``"REPRO_JOBS=<n>"``, ``"sched_getaffinity"``,
            ``"os.cpu_count"``, a cgroup-clamp description, or
            ``"explicit argument"``) -- the figure that makes a
            serial fallback diagnosable from the record alone.
        recovered: Specs re-executed in the parent after a worker
            crash.
        single_flight_waited: Specs satisfied by waiting on another
            process's in-flight cache claim instead of re-simulating.
        wall_seconds: Wall-clock time of the whole batch.
        spec_seconds: Per-executed-spec simulation seconds, in
            execution-list order (a hard invariant of the runner:
            work stealing never scrambles attribution).
        utilization: Busy fraction of the worker pool:
            ``sum(spec_seconds) / (wall_seconds * workers)``.
        fallback_reason: Why a serial batch did not use a pool
            (``None`` for parallel batches); see
            :class:`~repro.runner.parallel.RunnerStats`.
    """

    total: int
    executed: int
    cache_hits: int
    cache_misses: int
    cache_poisoned: int
    deduped: int
    mode: str
    workers: int
    wall_seconds: float
    spec_seconds: Tuple[float, ...] = field(default_factory=tuple)
    utilization: float = 0.0
    fallback_reason: Optional[str] = None
    worker_source: Optional[str] = None
    recovered: int = 0
    single_flight_waited: int = 0

    @classmethod
    def from_runner(cls, runner: "object") -> "RunnerTelemetry":
        """Snapshot a :class:`~repro.runner.parallel.ParallelRunner`'s
        most recent batch (``runner.last_stats``; the cache counts are
        the stats' per-batch deltas, not the cache's lifetime totals,
        so reports written after every batch stay disjoint)."""
        stats = runner.last_stats
        workers = max(getattr(stats, "workers", 1), 1)
        wall = getattr(stats, "wall_seconds", 0.0)
        spec_seconds = tuple(getattr(stats, "spec_seconds", ()))
        busy = sum(spec_seconds)
        return cls(
            total=stats.total,
            executed=stats.executed,
            cache_hits=stats.cache_hits,
            cache_misses=getattr(stats, "cache_misses", 0),
            cache_poisoned=getattr(stats, "cache_poisoned", 0),
            deduped=stats.deduped,
            mode=stats.mode,
            workers=workers,
            wall_seconds=wall,
            spec_seconds=spec_seconds,
            utilization=(busy / (wall * workers)) if wall > 0 else 0.0,
            fallback_reason=getattr(stats, "fallback_reason", None),
            worker_source=getattr(stats, "worker_source", None),
            recovered=getattr(stats, "recovered", 0),
            single_flight_waited=getattr(stats, "single_flight_waited", 0),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable report payload (with schema tag)."""
        payload = asdict(self)
        payload["spec_seconds"] = list(self.spec_seconds)
        payload["schema"] = REPORT_SCHEMA
        return payload

    def write(self, path: str) -> str:
        """Write the report as pretty-printed JSON; returns ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
        return path


def write_runner_report(
    runner: "object", path: str, extra: Optional[Dict[str, object]] = None
) -> str:
    """One-call snapshot + write for benchmark scripts.

    ``extra`` entries (e.g. the experiment name or result file the
    report sits next to) are merged into the payload.
    """
    payload = RunnerTelemetry.from_runner(runner).to_dict()
    if extra:
        payload.update(extra)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path
