"""Wall-clock phase profiler for the event kernel.

:class:`PhaseProfiler` attaches to a :class:`~repro.sim.kernel.Simulator`
and attributes *host* wall-clock time plus dispatched-event counts to
the component handler that consumed them.  The attribution key is
derived from the event callback: ``ClassName.method`` for bound
methods (``DramController._service``, ``MasterPort._retry`` ...),
the qualified name for plain functions.

The kernel keeps its normal dispatch loop untouched; when a profiler
is attached, :meth:`Simulator.run` branches *once per run* into an
instrumented twin loop that brackets every callback with two
``perf_counter`` reads.  Detached runs therefore pay nothing, and
profiled runs pay a constant per event -- small against real handler
work, which is what keeps measured overhead within the subsystem's
budget on experiment workloads.

Typical use::

    profiler = PhaseProfiler()
    with profiler.attach_to(platform.sim):
        platform.run(max_cycles)
    print(profiler.format_table())

or in one call for a whole experiment config::

    result, profiler = profile_experiment(config)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.soc.experiment import PlatformResult
    from repro.soc.platform import PlatformConfig


def callback_key(callback: Callable[[], object]) -> str:
    """Attribution key for an event callback.

    Bound methods become ``ClassName.method`` -- the component
    granularity the profile table groups by.  Anything else falls
    back to its qualified (or repr) name.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{getattr(callback, '__name__', '?')}"
    return getattr(callback, "__qualname__", None) or repr(callback)


class PhaseProfiler:
    """Accumulates per-handler dispatch counts and wall-clock seconds.

    Args:
        clock: Monotonic float-seconds clock (injectable for tests).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        #: key -> [dispatch count, total seconds]
        self.records: Dict[str, List[float]] = {}
        #: Wall-clock seconds spent inside profiled run() loops.
        self.wall_seconds = 0.0
        #: Total events dispatched under this profiler.
        self.events = 0

    # ------------------------------------------------------------------
    # collection (called from the kernel's instrumented loop)
    # ------------------------------------------------------------------
    def observe(self, callback: Callable[[], object], elapsed: float) -> None:
        """Fold one dispatched callback into the profile."""
        key = callback_key(callback)
        record = self.records.get(key)
        if record is None:
            record = self.records[key] = [0, 0.0]
        record[0] += 1
        record[1] += elapsed
        self.events += 1

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, sim: "Simulator") -> None:
        """Route ``sim``'s future run() calls through the profiled loop."""
        if sim._profiler is not None and sim._profiler is not self:
            raise ConfigError("simulator already has a profiler attached")
        sim._profiler = self

    def detach(self, sim: "Simulator") -> None:
        """Restore the unprofiled dispatch loop."""
        if sim._profiler is self:
            sim._profiler = None

    @contextmanager
    def attach_to(self, sim: "Simulator") -> Iterator["PhaseProfiler"]:
        """Scope attachment to a ``with`` block."""
        self.attach(sim)
        try:
            yield self
        finally:
            self.detach(sim)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def rows(self) -> List[Tuple[str, int, float]]:
        """``(key, events, seconds)`` rows sorted by time, descending."""
        return sorted(
            ((key, int(n), s) for key, (n, s) in self.records.items()),
            key=lambda row: row[2],
            reverse=True,
        )

    def format_table(self, limit: Optional[int] = None) -> str:
        """The sorted attribution table as aligned text.

        Columns: handler, events dispatched, total milliseconds, share
        of profiled time, mean microseconds per event.
        """
        rows = self.rows()
        if limit is not None:
            rows = rows[:limit]
        total = sum(s for _, _, s in self.rows()) or 1e-12
        key_width = max([len(k) for k, _, _ in rows] + [len("handler")])
        lines = [
            f"{'handler':<{key_width}}  {'events':>10}  {'time_ms':>10}  "
            f"{'share':>6}  {'us/event':>9}"
        ]
        for key, events, seconds in rows:
            mean_us = seconds / events * 1e6 if events else 0.0
            lines.append(
                f"{key:<{key_width}}  {events:>10}  {seconds * 1e3:>10.2f}  "
                f"{seconds / total:>6.1%}  {mean_us:>9.2f}"
            )
        lines.append(
            f"{'TOTAL':<{key_width}}  {self.events:>10}  "
            f"{self.wall_seconds * 1e3:>10.2f}"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable profile snapshot."""
        return {
            "wall_seconds": self.wall_seconds,
            "events": self.events,
            "handlers": [
                {"handler": key, "events": events, "seconds": seconds}
                for key, events, seconds in self.rows()
            ],
        }


def profile_experiment(
    config: "PlatformConfig",
    max_cycles: Optional[int] = None,
    stop_when_critical_done: bool = True,
) -> Tuple["PlatformResult", PhaseProfiler]:
    """Run one experiment under a fresh profiler.

    Returns the usual :class:`~repro.soc.experiment.PlatformResult`
    plus the populated :class:`PhaseProfiler`.
    """
    from repro.soc.experiment import DEFAULT_MAX_CYCLES, PlatformResult
    from repro.soc.platform import Platform

    if max_cycles is None:
        max_cycles = DEFAULT_MAX_CYCLES
    platform = Platform(config)
    profiler = PhaseProfiler()
    with profiler.attach_to(platform.sim):
        elapsed = platform.run(
            max_cycles, stop_when_critical_done=stop_when_critical_done
        )
    return PlatformResult(platform, elapsed), profiler
