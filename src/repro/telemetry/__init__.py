"""Observability plane: metrics, logging, profiling, trace export.

The reproduced paper is about *monitoring tightly coupled to
regulation*; this package is the equivalent plane for the
reproduction itself.  Four pieces, all optional and all cheap to
leave in place:

* :mod:`repro.telemetry.registry` -- a process-wide metrics registry
  (counters / gauges / histograms with labels).  Components grab
  handles at construction; with ``REPRO_TELEMETRY=off`` every handle
  is a shared no-op and nanosecond-hot paths are never touched at all
  (the kernel exposes queue statistics pull-style instead).
* :mod:`repro.telemetry.log` -- the package logging helper
  (``get_logger``), one stderr handler under the ``repro`` root
  logger, level from ``REPRO_LOG_LEVEL``.
* :mod:`repro.telemetry.profiler` -- a wall-clock phase profiler
  attributing host time and event counts per component handler.
* :mod:`repro.telemetry.perfetto` -- Chrome/Perfetto trace-event
  export of transaction lifecycles and regulator throttle intervals.
* :mod:`repro.telemetry.runreport` -- JSON reports of how a runner
  batch executed (timing, cache behaviour, worker utilization).
"""

from repro.telemetry.log import (
    LOG_LEVEL_ENV,
    get_logger,
)
from repro.telemetry.perfetto import TraceEventSink, export_platform_trace
from repro.telemetry.profiler import PhaseProfiler, profile_experiment
from repro.telemetry.registry import (
    TELEMETRY_ENV,
    MetricsRegistry,
    get_registry,
    set_registry,
    telemetry_enabled,
    use_registry,
)
from repro.telemetry.runreport import RunnerTelemetry, write_runner_report

__all__ = [
    "LOG_LEVEL_ENV",
    "MetricsRegistry",
    "PhaseProfiler",
    "RunnerTelemetry",
    "TELEMETRY_ENV",
    "TraceEventSink",
    "export_platform_trace",
    "get_logger",
    "get_registry",
    "profile_experiment",
    "set_registry",
    "telemetry_enabled",
    "use_registry",
    "write_runner_report",
]
