"""The run-time QoS controller.

The software component that owns all regulator instances (it models
the host-side driver of the tightly-coupled IPs, or the MemGuard
daemon for the software baseline).  It translates policies into
per-regulator register values and performs run-time budget changes,
each with the latency the underlying mechanism imposes.

The reconfiguration log it keeps (requested cycle vs effective cycle)
feeds experiment E7 (response-latency table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError, RegulationError
from repro.sim.kernel import Simulator
from repro.qos.budget import BandwidthBudget
from repro.qos.policy import QosPolicy
from repro.regulation.base import BandwidthRegulator
from repro.regulation.memguard import MemGuardRegulator
from repro.regulation.tightly_coupled import TightlyCoupledRegulator


@dataclass(frozen=True)
class ReconfigEvent:
    """One entry of the reconfiguration log."""

    master: str
    requested_at: int
    effective_at: int
    budget_bytes: int

    @property
    def latency(self) -> int:
        return self.effective_at - self.requested_at


class QosManager:
    """Owns regulators and applies policies / budget changes."""

    def __init__(self, sim: Simulator, peak_bytes_per_cycle: float) -> None:
        if peak_bytes_per_cycle <= 0:
            raise ConfigError("peak_bytes_per_cycle must be positive")
        self.sim = sim
        self.peak_bytes_per_cycle = peak_bytes_per_cycle
        self._regulators: Dict[str, BandwidthRegulator] = {}
        self.log: List[ReconfigEvent] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, master: str, regulator: BandwidthRegulator) -> None:
        if master in self._regulators:
            raise ConfigError(f"master {master!r} registered twice")
        self._regulators[master] = regulator

    def regulator(self, master: str) -> BandwidthRegulator:
        try:
            return self._regulators[master]
        except KeyError:
            raise ConfigError(f"no regulator registered for {master!r}") from None

    @property
    def masters(self) -> List[str]:
        return sorted(self._regulators)

    # ------------------------------------------------------------------
    # budget programming
    # ------------------------------------------------------------------
    def set_budget(self, master: str, budget: BandwidthBudget) -> ReconfigEvent:
        """Program ``master``'s regulator to enforce ``budget``.

        The byte value written depends on the regulator's own window:
        fine windows for the tightly-coupled IP, the OS period for
        MemGuard.

        Returns:
            The log entry, including when the change takes effect.
        """
        regulator = self.regulator(master)
        window = self._window_of(regulator)
        budget_bytes = budget.to_window_bytes(window)
        now = self.sim.now
        effective_at = regulator.set_budget_bytes(budget_bytes, now)
        event = ReconfigEvent(
            master=master,
            requested_at=now,
            effective_at=effective_at,
            budget_bytes=budget_bytes,
        )
        self.log.append(event)
        return event

    def apply_policy(self, policy: QosPolicy) -> List[ReconfigEvent]:
        """Apply a policy to every registered master it names."""
        if not policy.is_feasible():
            raise ConfigError(
                f"policy {policy.name!r} oversubscribes the channel "
                f"({policy.total_share:.2f} of peak)"
            )
        events = []
        for master in self.masters:
            if master not in policy.shares:
                continue
            budget = BandwidthBudget.from_fraction_of_peak(
                policy.shares[master], self.peak_bytes_per_cycle
            )
            events.append(self.set_budget(master, budget))
        return events

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def current_budget(self, master: str) -> Optional[BandwidthBudget]:
        """The rate currently enforced for ``master`` (None if n/a)."""
        regulator = self.regulator(master)
        try:
            window = self._window_of(regulator)
        except RegulationError:
            return None
        return BandwidthBudget.from_window(regulator.budget_bytes, window)

    @staticmethod
    def _window_of(regulator: BandwidthRegulator) -> int:
        if isinstance(regulator, TightlyCoupledRegulator):
            return regulator.window_cycles
        if isinstance(regulator, MemGuardRegulator):
            return regulator.period_cycles
        raise RegulationError(
            f"{type(regulator).__name__} has no budget window to program"
        )
