"""QoS management layer (substrate S7).

Turns datasheet-level intents ("the camera pipeline gets 800 MB/s,
the critical core is protected, best-effort actors share the rest")
into regulator configurations, and drives run-time reconfiguration:

* :mod:`repro.qos.budget` -- budget arithmetic between GB/s,
  bytes-per-cycle and bytes-per-window.
* :mod:`repro.qos.policy` -- partitioning policies over a set of
  masters.
* :mod:`repro.qos.manager` -- the run-time controller that owns the
  regulators and applies policies/budget changes with their modelled
  reprogramming latencies.
"""

from repro.qos.admission import (
    AdmissionController,
    AdmissionDecision,
    Reservation,
)
from repro.qos.budget import BandwidthBudget
from repro.qos.manager import QosManager
from repro.qos.policy import QosPolicy, critical_plus_besteffort, proportional_shares

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Reservation",
    "BandwidthBudget",
    "QosManager",
    "QosPolicy",
    "critical_plus_besteffort",
    "proportional_shares",
]
