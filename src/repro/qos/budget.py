"""Bandwidth budget arithmetic.

A :class:`BandwidthBudget` is a rate (bytes per cycle) with
conversions to and from the units used at the three layers involved:
datasheets (GB/s), regulator registers (bytes per window), and
analysis (fraction of the DRAM channel's peak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.config import ClockSpec


@dataclass(frozen=True)
class BandwidthBudget:
    """A bandwidth allowance expressed as bytes per fabric cycle."""

    bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ConfigError(
                f"budget must be positive, got {self.bytes_per_cycle} B/cycle"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_gbps(gbps: float, clock: ClockSpec) -> "BandwidthBudget":
        """Build from a GB/s figure under a given fabric clock."""
        return BandwidthBudget(clock.bytes_per_cycle_from_gbps(gbps))

    @staticmethod
    def from_fraction_of_peak(
        fraction: float, peak_bytes_per_cycle: float
    ) -> "BandwidthBudget":
        """Build as a fraction (0..1] of the channel's peak rate."""
        if not 0 < fraction <= 1:
            raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
        if peak_bytes_per_cycle <= 0:
            raise ConfigError("peak rate must be positive")
        return BandwidthBudget(fraction * peak_bytes_per_cycle)

    @staticmethod
    def from_window(budget_bytes: int, window_cycles: int) -> "BandwidthBudget":
        """Build from regulator register values."""
        if window_cycles < 1:
            raise ConfigError("window_cycles must be >= 1")
        if budget_bytes < 1:
            raise ConfigError("budget_bytes must be >= 1")
        return BandwidthBudget(budget_bytes / window_cycles)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_gbps(self, clock: ClockSpec) -> float:
        return clock.gbps_from_bytes_per_cycle(self.bytes_per_cycle)

    def to_window_bytes(self, window_cycles: int) -> int:
        """Bytes-per-window register value for a given window.

        Rounds to the nearest byte but never below 1 (a zero budget
        would wedge the regulated master forever).
        """
        if window_cycles < 1:
            raise ConfigError("window_cycles must be >= 1")
        return max(1, round(self.bytes_per_cycle * window_cycles))

    def fraction_of(self, peak_bytes_per_cycle: float) -> float:
        if peak_bytes_per_cycle <= 0:
            raise ConfigError("peak rate must be positive")
        return self.bytes_per_cycle / peak_bytes_per_cycle

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "BandwidthBudget":
        if factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {factor}")
        return BandwidthBudget(self.bytes_per_cycle * factor)

    def split(self, shares: int) -> "BandwidthBudget":
        """Divide evenly among ``shares`` actors."""
        if shares < 1:
            raise ConfigError(f"shares must be >= 1, got {shares}")
        return BandwidthBudget(self.bytes_per_cycle / shares)
