"""QoS partitioning policies.

A :class:`QosPolicy` is an assignment of bandwidth budgets (fractions
of the channel peak) to master names.  Policies are pure data; the
:class:`~repro.qos.manager.QosManager` applies them to live
regulators.

Two canonical constructors cover the paper's scenarios:

* :func:`proportional_shares` -- explicit fractions per master.
* :func:`critical_plus_besteffort` -- reserve a fraction for the
  critical actor(s) and split a best-effort allowance evenly among
  the rest (the configuration used in E5's utilization/slowdown
  trade-off sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.errors import ConfigError


@dataclass(frozen=True)
class QosPolicy:
    """Bandwidth shares per master, as fractions of channel peak.

    Attributes:
        shares: Mapping from master name to peak fraction (0..1).
            Masters absent from the map are left unregulated by
            :class:`~repro.qos.manager.QosManager.apply_policy`.
        name: Optional label for reports.
    """

    shares: Dict[str, float] = field(default_factory=dict)
    name: str = "policy"

    def __post_init__(self) -> None:
        for master, share in self.shares.items():
            if not 0 < share <= 1:
                raise ConfigError(
                    f"share for {master!r} must be in (0, 1], got {share}"
                )

    @property
    def total_share(self) -> float:
        return sum(self.shares.values())

    def is_feasible(self, headroom: float = 1.0) -> bool:
        """True when the summed shares fit within ``headroom`` of peak."""
        return self.total_share <= headroom + 1e-9

    def share_of(self, master: str) -> float:
        try:
            return self.shares[master]
        except KeyError:
            raise ConfigError(f"policy {self.name!r} has no share for {master!r}")


def proportional_shares(shares: Dict[str, float], name: str = "proportional") -> QosPolicy:
    """Build a policy from explicit per-master fractions."""
    return QosPolicy(shares=dict(shares), name=name)


def critical_plus_besteffort(
    critical: Iterable[str],
    best_effort: Iterable[str],
    critical_share: float,
    best_effort_total: float,
    name: str = "critical+be",
) -> QosPolicy:
    """Reserve bandwidth for critical actors, split the rest evenly.

    Args:
        critical: Names of the protected masters; each receives
            ``critical_share``.
        best_effort: Names of the remaining masters; together they
            receive ``best_effort_total``, split evenly.
        critical_share: Peak fraction per critical master.
        best_effort_total: Peak fraction shared by all best-effort
            masters.

    Returns:
        The combined policy.

    Raises:
        ConfigError: on empty groups where a share was requested, or
            shares outside (0, 1].
    """
    critical_list: List[str] = list(critical)
    best_effort_list: List[str] = list(best_effort)
    shares: Dict[str, float] = {}
    for master in critical_list:
        shares[master] = critical_share
    if best_effort_list:
        per_master = best_effort_total / len(best_effort_list)
        for master in best_effort_list:
            shares[master] = per_master
    elif best_effort_total:
        raise ConfigError("best_effort_total given but no best-effort masters")
    return QosPolicy(shares=shares, name=name)
