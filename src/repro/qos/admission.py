"""QoS admission control.

The run-time counterpart of the analytic bounds: before programming a
new reservation into a regulator, check that the system can still
honour everything it already promised.  Two tests gate admission:

* **capacity** -- the sum of all reserved rates plus the protected
  head-room must fit within the platform's *achievable* (calibrated)
  bandwidth;
* **latency** (optional) -- with the new actor's interference
  envelope added, the analytic worst-case read latency of the
  critical task must stay within its declared tolerance.

This is the component that turns the regulator IP into a QoS
*contract* system: a reservation request either yields an enforceable
budget or a refusal with the reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.analysis.bounds import CoRunnerEnvelope, worst_case_read_latency
from repro.axi.interconnect import InterconnectConfig
from repro.dram.timing import DramTiming
from repro.qos.budget import BandwidthBudget


@dataclass(frozen=True)
class Reservation:
    """One admitted bandwidth contract.

    Attributes:
        master: Actor name.
        rate: Reserved rate.
        envelope: The actor's interference envelope (for the latency
            test).
    """

    master: str
    rate: BandwidthBudget
    envelope: CoRunnerEnvelope


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission test."""

    admitted: bool
    reason: str
    projected_total_rate: float = 0.0
    projected_latency_bound: Optional[int] = None


class AdmissionController:
    """Tracks reservations and gates new ones.

    Args:
        achievable_peak: Calibrated sustainable bandwidth (B/cycle).
        protected_headroom: Rate (B/cycle) that must always remain
            unreserved for the protected/critical actor(s).
        latency_target: Optional worst-case latency tolerance (cycles)
            of the critical task; enables the analytic latency test.
        timing / interconnect: Platform parameters for the latency
            test (required when ``latency_target`` is set).
        critical_burst_beats / critical_outstanding: The critical
            actor's own parameters for the bound.
        frfcfs_cap: The DRAM scheduler's starvation cap.
    """

    def __init__(
        self,
        achievable_peak: float,
        protected_headroom: float,
        latency_target: Optional[int] = None,
        timing: Optional[DramTiming] = None,
        interconnect: Optional[InterconnectConfig] = None,
        critical_burst_beats: int = 4,
        critical_outstanding: int = 2,
        frfcfs_cap: int = 4,
    ) -> None:
        if achievable_peak <= 0:
            raise ConfigError("achievable_peak must be positive")
        if not 0 <= protected_headroom < achievable_peak:
            raise ConfigError(
                "protected_headroom must be in [0, achievable_peak)"
            )
        if latency_target is not None:
            if latency_target < 1:
                raise ConfigError("latency_target must be >= 1")
            if timing is None or interconnect is None:
                raise ConfigError(
                    "latency test needs timing and interconnect parameters"
                )
        self.achievable_peak = achievable_peak
        self.protected_headroom = protected_headroom
        self.latency_target = latency_target
        self.timing = timing
        self.interconnect = interconnect
        self.critical_burst_beats = critical_burst_beats
        self.critical_outstanding = critical_outstanding
        self.frfcfs_cap = frfcfs_cap
        self._reservations: Dict[str, Reservation] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def reserved_rate(self) -> float:
        return sum(r.rate.bytes_per_cycle for r in self._reservations.values())

    @property
    def available_rate(self) -> float:
        return self.achievable_peak - self.protected_headroom - self.reserved_rate

    def reservations(self) -> Dict[str, Reservation]:
        return dict(self._reservations)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _latency_bound_with(self, extra: Optional[Reservation]) -> int:
        envelopes = [r.envelope for r in self._reservations.values()]
        if extra is not None:
            envelopes.append(extra.envelope)
        return worst_case_read_latency(
            timing=self.timing,
            interconnect=self.interconnect,
            co_runners=envelopes,
            critical_burst_beats=self.critical_burst_beats,
            frfcfs_cap=self.frfcfs_cap,
            own_outstanding=self.critical_outstanding,
        )

    def check(
        self,
        master: str,
        rate: BandwidthBudget,
        envelope: CoRunnerEnvelope,
    ) -> AdmissionDecision:
        """Test a reservation without committing it."""
        if master in self._reservations:
            return AdmissionDecision(
                admitted=False,
                reason=f"{master!r} already holds a reservation",
            )
        projected = self.reserved_rate + rate.bytes_per_cycle
        if projected > self.achievable_peak - self.protected_headroom + 1e-9:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"capacity: {projected:.2f} B/cyc reserved would leave "
                    f"less than the protected head-room "
                    f"({self.protected_headroom:.2f} B/cyc) of the "
                    f"achievable {self.achievable_peak:.2f} B/cyc"
                ),
                projected_total_rate=projected,
            )
        bound = None
        if self.latency_target is not None:
            candidate = Reservation(master, rate, envelope)
            bound = self._latency_bound_with(candidate)
            if bound > self.latency_target:
                return AdmissionDecision(
                    admitted=False,
                    reason=(
                        f"latency: worst-case {bound} cycles exceeds the "
                        f"critical target of {self.latency_target}"
                    ),
                    projected_total_rate=projected,
                    projected_latency_bound=bound,
                )
        return AdmissionDecision(
            admitted=True,
            reason="ok",
            projected_total_rate=projected,
            projected_latency_bound=bound,
        )

    def admit(
        self,
        master: str,
        rate: BandwidthBudget,
        envelope: CoRunnerEnvelope,
    ) -> AdmissionDecision:
        """Test and, on success, record a reservation."""
        decision = self.check(master, rate, envelope)
        if decision.admitted:
            self._reservations[master] = Reservation(master, rate, envelope)
        return decision

    def release(self, master: str) -> None:
        """Drop a reservation (actor finished or was torn down)."""
        try:
            del self._reservations[master]
        except KeyError:
            raise ConfigError(f"no reservation held by {master!r}") from None
