"""Master ports: the attachment point of masters *and* regulators.

A :class:`MasterPort` sits between one traffic-generating master and
the interconnect.  It owns the request queue awaiting address-channel
acceptance, enforces the AXI outstanding-transaction limit, and hosts
the (optional) bandwidth regulator *inline* -- exactly where the
reproduced paper places its tightly-coupled monitoring/regulation IP.

Because the regulator is consulted on the very handshake it gates and
is charged on the very cycle a burst is accepted, the feedback loop
between monitoring and regulation is cycle-accurate.  The contrast
with loosely-coupled (sampled) monitoring is explored by experiment
E8 (:mod:`repro.regulation` supports a sampling delay for that).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import ConfigError, ProtocolError
from repro.sim.kernel import Phase, Simulator
from repro.sim.stats import StatSet
from repro.sim.trace import TraceRecord, TraceRecorder
from repro.axi.txn import Transaction
from repro.telemetry.registry import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.regulation.base import BandwidthRegulator


@dataclass(frozen=True)
class PortConfig:
    """Static configuration of one master port.

    Attributes:
        name: Unique port / master name.
        max_outstanding: Maximum accepted-but-uncompleted transactions.
        qos: Default AXI QoS value stamped on transactions that carry
            none (0..15).
        split_channels: Model the independent AXI read (AR) and write
            (AW) address channels as separate queues.  With a single
            combined queue (the default, adequate for single-direction
            masters), a stalled write at the head blocks queued reads
            behind it; split channels remove that head-of-line
            coupling, as real AXI masters do.
        throttle_log_limit: Most recent closed throttle intervals the
            port retains (a ring buffer -- long served runs must not
            grow memory per denial).  ``None`` keeps every interval;
            overwritten intervals are counted in
            :attr:`MasterPort.throttle_dropped` and the cumulative
            throttled-cycle total stays exact either way.
    """

    name: str
    max_outstanding: int = 8
    qos: int = 0
    split_channels: bool = False
    throttle_log_limit: Optional[int] = 4096

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ConfigError(
                f"port {self.name!r}: max_outstanding must be >= 1, "
                f"got {self.max_outstanding}"
            )
        if not 0 <= self.qos <= 15:
            raise ConfigError(f"port {self.name!r}: qos {self.qos} outside 0..15")
        if self.throttle_log_limit is not None and self.throttle_log_limit < 1:
            raise ConfigError(
                f"port {self.name!r}: throttle_log_limit must be >= 1 "
                f"or None, got {self.throttle_log_limit}"
            )


class MasterPort:
    """One master's entry point into the interconnect.

    Args:
        sim: The simulation kernel.
        config: Static port parameters.
        regulator: Optional inline bandwidth regulator.  ``None``
            means the port is unregulated (passthrough).
        trace: Optional trace recorder receiving completed txns.
    """

    def __init__(
        self,
        sim: Simulator,
        config: PortConfig,
        regulator: Optional["BandwidthRegulator"] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = config.name
        self.regulator = regulator
        self.trace = trace
        self.stats = StatSet(config.name)
        # One combined queue, or one per address channel (AR/AW).
        if config.split_channels:
            self._queues = {False: deque(), True: deque()}
        else:
            self._queues = {False: deque()}
        self._outstanding = 0
        self._interconnect = None  # set by Interconnect.attach_port
        self._retry_scheduled_at: Optional[int] = None
        #: Retry kick events currently in the queue (scheduled, not
        #: yet fired).  The fast-forward detector sums this over every
        #: port to account for the full foreground-event population;
        #: unlike ``_retry_scheduled_at`` it never resets early, so a
        #: stale retry on an already-drained port is still counted.
        self._retry_events_live = 0
        #: Called with the completed transaction (set by the master).
        self.on_response: Optional[Callable[[Transaction], None]] = None
        #: Observers of data-beat traffic: ``fn(nbytes, now)``.
        self.beat_observers: List[Callable[[int, int], None]] = []
        #: Observers of completed transactions: ``fn(txn)``; called
        #: after timestamps are final (latency monitors hook here).
        self.completion_observers: List[Callable[[Transaction], None]] = []
        # Pre-resolved collectors: submit/accept/complete run once per
        # transaction, so the StatSet name lookups are hoisted out of
        # the hot path.
        self._stat_submitted = self.stats.counter("submitted")
        self._stat_accepted = self.stats.counter("accepted")
        self._stat_completed = self.stats.counter("completed")
        self._stat_bytes = self.stats.counter("bytes")
        self._stat_denials = self.stats.counter("regulator_denials")
        self._samp_queueing = self.stats.sampler("queueing_delay")
        self._samp_latency = self.stats.sampler("latency")
        # Process-wide telemetry handles (shared null no-ops when
        # REPRO_TELEMETRY=off), resolved once per port like the
        # StatSet collectors above.
        registry = get_registry()
        self._tm_issued = registry.counter("axi_txn_issued", master=self.name)
        self._tm_accepted = registry.counter("axi_txn_accepted", master=self.name)
        self._tm_completed = registry.counter(
            "axi_txn_completed", master=self.name
        )
        self._tm_denials = registry.counter(
            "regulator_throttle_stalls", master=self.name
        )
        self._tm_outstanding = registry.histogram(
            "axi_outstanding_depth", master=self.name
        )
        # Closed throttle intervals (start, end): spans during which
        # the head-of-line transaction was held back by the regulator.
        # Ring-bounded by config.throttle_log_limit; read through
        # throttle_intervals() / the throttle_log property.
        self._throttle_log: Deque[Tuple[int, int]] = deque(
            maxlen=config.throttle_log_limit
        )
        #: Closed intervals overwritten because the ring was full.
        self.throttle_dropped = 0
        #: Cumulative cycles spent in *closed* throttle intervals
        #: (exact even after the ring drops old intervals).
        self.throttle_cycles = 0
        self._throttle_since: Optional[int] = None
        #: Latency of the most recently completed transaction (0
        #: before the first completion); a live-probe register.
        self.last_latency = 0
        if regulator is not None:
            regulator.bind_port(self)
            sim.add_finalizer(self._close_throttle)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _set_interconnect(self, interconnect) -> None:
        if self._interconnect is not None:
            raise ProtocolError(f"port {self.name!r} attached twice")
        self._interconnect = interconnect

    # ------------------------------------------------------------------
    # master-facing API
    # ------------------------------------------------------------------
    # repro: hot -- once per transaction
    def submit(self, txn: Transaction) -> None:
        """Present a new transaction's address phase to the port."""
        if self._interconnect is None:
            raise ProtocolError(f"port {self.name!r} not attached to interconnect")
        if txn.qos == 0 and self.config.qos != 0:
            txn.qos = self.config.qos
        txn.mark_issued(self.sim.now)
        self._queue_for(txn).append(txn)
        self._stat_submitted.add()
        self._tm_issued.inc()
        self._interconnect.kick()

    def _queue_for(self, txn: Transaction) -> Deque[Transaction]:
        if self.config.split_channels:
            return self._queues[txn.is_write]
        return self._queues[False]

    @property
    def queue_depth(self) -> int:
        """Transactions waiting for address acceptance."""
        return sum(len(q) for q in self._queues.values())

    @property
    def outstanding(self) -> int:
        """Accepted-but-uncompleted transactions."""
        return self._outstanding

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return self.queue_depth == 0 and self._outstanding == 0

    # ------------------------------------------------------------------
    # interconnect-facing API
    # ------------------------------------------------------------------
    def _candidate_heads(self, want_write: Optional[bool]):
        """Head transactions matching the requested direction."""
        if self.config.split_channels:
            if want_write is None:
                keys = (False, True)
            else:
                keys = (want_write,)
            return [self._queues[k][0] for k in keys if self._queues[k]]
        queue = self._queues[False]
        if not queue:
            return []
        head = queue[0]
        if want_write is not None and head.is_write != want_write:
            return []
        return [head]

    # repro: hot -- once per arbitration pass
    def head(self, want_write: Optional[bool] = None) -> Optional[Transaction]:
        """Return an eligible head-of-line transaction, or None.

        Args:
            want_write: Restrict to the write (True) or read (False)
                address channel; None accepts either.  With
                ``split_channels`` each direction has its own queue,
                otherwise only the single queue's head can match.

        A head is eligible when the outstanding limit has room and the
        regulator (if any) admits it *now*.  When the regulator is the
        blocker, a retry kick is scheduled for the cycle the regulator
        says credit becomes available, so the interconnect re-runs
        arbitration without polling.
        """
        if self._outstanding >= self.config.max_outstanding:
            return None
        for txn in self._candidate_heads(want_write):
            if self.regulator is not None:
                now = self.sim.now
                if not self.regulator.may_issue(txn, now):
                    self._stat_denials.add()
                    self._tm_denials.inc()
                    if self._throttle_since is None:
                        self._throttle_since = now
                    self._schedule_retry(
                        self.regulator.next_opportunity(txn, now)
                    )
                    continue
            return txn
        return None

    # repro: hot
    def accept_head(self, want_write: Optional[bool] = None) -> Transaction:
        """The interconnect accepted this port's head transaction."""
        if self.config.split_channels and want_write is None:
            raise ProtocolError(
                f"port {self.name!r}: split channels need a direction"
            )
        key = want_write if self.config.split_channels else False
        queue = self._queues[key]
        if not queue:
            raise ProtocolError(f"port {self.name!r}: accept with empty queue")
        txn = queue.popleft()
        txn.mark_accepted(self.sim.now)
        self._outstanding += 1
        if self.regulator is not None:
            self.regulator.charge(txn, self.sim.now)
            if self._throttle_since is not None:
                self._append_throttle(self._throttle_since, self.sim.now)
                self._throttle_since = None
        self._stat_accepted.add()
        self._tm_accepted.inc()
        self._tm_outstanding.observe(self._outstanding)
        self._samp_queueing.record(txn.accepted - txn.issued)
        return txn

    # repro: hot
    def complete(self, txn: Transaction) -> None:
        """A response for ``txn`` arrived back at the master."""
        if self._outstanding <= 0:
            raise ProtocolError(f"port {self.name!r}: completion underflow")
        self._outstanding -= 1
        now = self.sim.now
        txn.mark_completed(now)
        self._stat_completed.add()
        self._tm_completed.inc()
        self._stat_bytes.add(txn.nbytes)
        latency = txn.latency
        self.last_latency = latency
        self._samp_latency.record(latency)
        # Flattened single-observer fast path: almost every port has
        # exactly one beat observer (its bandwidth monitor), and this
        # runs once per completed transaction.
        observers = self.beat_observers
        if observers:
            if len(observers) == 1:
                observers[0](txn.nbytes, now)
            else:
                for observer in observers:
                    observer(txn.nbytes, now)
        observers = self.completion_observers
        if observers:
            if len(observers) == 1:
                observers[0](txn)
            else:
                for observer in observers:
                    observer(txn)
        if self.trace is not None:
            self.trace.record(
                TraceRecord(
                    master=self.name,
                    txn_id=txn.txn_id,
                    is_write=txn.is_write,
                    addr=txn.addr,
                    nbytes=txn.nbytes,
                    created=txn.created,
                    issued=txn.issued,
                    accepted=txn.accepted,
                    completed=txn.completed,
                )
            )
        if self.on_response is not None:
            self.on_response(txn)
        # A freed outstanding slot may unblock a head-of-line txn.
        if self.queue_depth:
            self._interconnect.kick()

    # ------------------------------------------------------------------
    # regulator support
    # ------------------------------------------------------------------
    def _append_throttle(self, start: int, end: int) -> None:
        """Record one closed throttle interval into the bounded ring."""
        log = self._throttle_log
        if log.maxlen is not None and len(log) == log.maxlen:
            self.throttle_dropped += 1
        log.append((start, end))
        self.throttle_cycles += end - start

    def throttle_intervals(self) -> List[Tuple[int, int]]:
        """Retained closed throttle intervals, oldest first.

        The accessor consumers (Perfetto export, probes) should use;
        at most ``config.throttle_log_limit`` intervals are retained
        (:attr:`throttle_dropped` counts overwritten ones).
        """
        return list(self._throttle_log)

    @property
    def throttle_log(self) -> "Deque[Tuple[int, int]]":
        """The live interval ring (read-only compatibility view)."""
        return self._throttle_log

    def throttle_cycles_at(self, now: int) -> int:
        """Total throttled cycles up to ``now``, open interval included."""
        total = self.throttle_cycles
        since = self._throttle_since
        if since is not None and now > since:
            total += now - since
        return total

    def _close_throttle(self, now: int) -> None:
        """Run finalizer: close a throttle interval left open at the
        end of a run (denied and never re-accepted)."""
        if self._throttle_since is not None and now > self._throttle_since:
            self._append_throttle(self._throttle_since, now)
            self._throttle_since = None

    def regulator_released(self) -> None:
        """Callback for regulators: credit became available."""
        if self.queue_depth:
            self._interconnect.kick()

    def _schedule_retry(self, at_cycle: int) -> None:
        """Arrange an interconnect kick at ``at_cycle`` (deduplicated)."""
        now = self.sim.now
        at_cycle = max(at_cycle, now + 1)
        if (
            self._retry_scheduled_at is not None
            and self._retry_scheduled_at <= at_cycle
            and self._retry_scheduled_at > now
        ):
            return
        self._retry_scheduled_at = at_cycle
        self._retry_events_live += 1

        def retry() -> None:
            self._retry_events_live -= 1
            self._retry_scheduled_at = None
            if self.queue_depth:
                self._interconnect.kick()

        self.sim.schedule_at(at_cycle, retry, priority=Phase.MASTER)
