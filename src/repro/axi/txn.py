"""AXI transaction objects.

A :class:`Transaction` models one AXI burst: a single address-channel
handshake followed by ``burst_len`` data beats of ``bytes_per_beat``
bytes each.  The object carries its complete timestamp lifecycle so
latency decomposition (queueing vs service) falls out of the trace.

Lifecycle (all timestamps in cycles, ``-1`` = not reached yet)::

    created  -->  issued  -->  accepted  -->  mem_start  -->  completed
    (master)     (at port)    (intercon.)     (DRAM ctl)     (response)
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.errors import ProtocolError

#: Shared id source; reset per :class:`Transaction.reset_ids` for tests.
_txn_ids: Iterator[int] = itertools.count()


class Transaction:
    """One AXI burst transfer.

    Attributes:
        txn_id: Unique id within the process (monotonic).
        master: Name of the issuing master.
        is_write: Write (AW/W/B) vs read (AR/R) transaction.
        addr: Byte address of the first beat.
        burst_len: Number of data beats (AXI ``AxLEN + 1``).
        bytes_per_beat: Beat width in bytes (AXI ``AxSIZE`` decoded).
        qos: AXI QoS value (0..15, higher = more important).
        created / issued / accepted / mem_start / completed: lifecycle
            timestamps in cycles; ``-1`` until the phase is reached.
    """

    __slots__ = (
        "txn_id",
        "master",
        "is_write",
        "addr",
        "burst_len",
        "bytes_per_beat",
        "qos",
        "created",
        "issued",
        "accepted",
        "mem_start",
        "completed",
    )

    def __init__(
        self,
        master: str,
        is_write: bool,
        addr: int,
        burst_len: int,
        bytes_per_beat: int = 16,
        qos: int = 0,
        created: int = 0,
    ) -> None:
        if burst_len < 1 or burst_len > 256:
            raise ProtocolError(f"burst_len {burst_len} outside AXI4 range 1..256")
        if bytes_per_beat < 1 or bytes_per_beat & (bytes_per_beat - 1):
            raise ProtocolError(
                f"bytes_per_beat {bytes_per_beat} must be a power of two"
            )
        if not 0 <= qos <= 15:
            raise ProtocolError(f"qos {qos} outside AXI range 0..15")
        if addr < 0:
            raise ProtocolError(f"negative address {addr:#x}")
        self.txn_id = next(_txn_ids)
        self.master = master
        self.is_write = is_write
        self.addr = addr
        self.burst_len = burst_len
        self.bytes_per_beat = bytes_per_beat
        self.qos = qos
        self.created = created
        self.issued = -1
        self.accepted = -1
        self.mem_start = -1
        self.completed = -1

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total payload bytes moved by this burst."""
        return self.burst_len * self.bytes_per_beat

    @property
    def end_addr(self) -> int:
        """One past the last byte touched."""
        return self.addr + self.nbytes

    @property
    def latency(self) -> int:
        """End-to-end latency; only valid once completed."""
        if self.completed < 0:
            raise ProtocolError(f"txn {self.txn_id} not completed yet")
        return self.completed - self.created

    @property
    def service_latency(self) -> Optional[int]:
        """Cycles from interconnect acceptance to completion."""
        if self.completed < 0 or self.accepted < 0:
            return None
        return self.completed - self.accepted

    # ------------------------------------------------------------------
    # lifecycle transitions (with protocol checking)
    # ------------------------------------------------------------------
    def mark_issued(self, now: int) -> None:
        if self.issued >= 0:
            raise ProtocolError(f"txn {self.txn_id} issued twice")
        self.issued = now

    def mark_accepted(self, now: int) -> None:
        if self.issued < 0:
            raise ProtocolError(f"txn {self.txn_id} accepted before issue")
        if self.accepted >= 0:
            raise ProtocolError(f"txn {self.txn_id} accepted twice")
        self.accepted = now

    def mark_mem_start(self, now: int) -> None:
        if self.accepted < 0:
            raise ProtocolError(f"txn {self.txn_id} reached memory before acceptance")
        if self.mem_start >= 0:
            raise ProtocolError(f"txn {self.txn_id} started in memory twice")
        self.mem_start = now

    def mark_completed(self, now: int) -> None:
        if self.mem_start < 0:
            raise ProtocolError(f"txn {self.txn_id} completed before memory service")
        if self.completed >= 0:
            raise ProtocolError(f"txn {self.txn_id} completed twice")
        self.completed = now

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    @staticmethod
    def reset_ids() -> None:
        """Restart the global id counter (test isolation helper)."""
        global _txn_ids
        _txn_ids = itertools.count()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "W" if self.is_write else "R"
        return (
            f"Txn#{self.txn_id}[{kind} {self.master} addr={self.addr:#x} "
            f"beats={self.burst_len}x{self.bytes_per_beat}B qos={self.qos}]"
        )
