"""Static AXI QoS (QoS-400 style) configuration helpers.

Commercial fabrics let integrators pin an ``AxQOS`` value per master
port.  :class:`QosMap` captures such an assignment and applies it to
a set of :class:`~repro.axi.port.PortConfig` objects.  It exists as a
first-class object because "static QoS priorities" is one of the
baselines the reproduced paper argues is insufficient: priorities
reorder service but give no rate guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import ConfigError
from repro.axi.port import PortConfig


@dataclass
class QosMap:
    """An assignment of AXI QoS values (0..15) to master names."""

    values: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, qos in self.values.items():
            if not 0 <= qos <= 15:
                raise ConfigError(f"QoS for {name!r} must be 0..15, got {qos}")

    def set(self, master: str, qos: int) -> None:
        if not 0 <= qos <= 15:
            raise ConfigError(f"QoS for {master!r} must be 0..15, got {qos}")
        self.values[master] = qos

    def get(self, master: str) -> int:
        """QoS for a master; unlisted masters get the AXI default (0)."""
        return self.values.get(master, 0)

    def apply(self, configs: List[PortConfig]) -> List[PortConfig]:
        """Return copies of ``configs`` with QoS values stamped in."""
        out: List[PortConfig] = []
        for cfg in configs:
            qos = self.values.get(cfg.name)
            if qos is None:
                out.append(cfg)
            else:
                out.append(
                    PortConfig(
                        name=cfg.name,
                        max_outstanding=cfg.max_outstanding,
                        qos=qos,
                    )
                )
        return out

    @staticmethod
    def critical_first(critical: List[str], best_effort: List[str]) -> "QosMap":
        """Convenience: critical masters at QoS 15, best-effort at 0."""
        values = {name: 15 for name in critical}
        values.update({name: 0 for name in best_effort})
        return QosMap(values)
