"""Fabric-to-PS bridge: cascading two interconnect levels.

On Zynq-class SoCs the FPGA masters do not reach the DDR controller
directly: they funnel through a small number of shared high-
performance (HP/HPC) ports of the processing system, each with its
own outstanding-transaction limit.  That shared ingress port is both
a contention point *among accelerators* and the place where a
coarse-grained "aggregate" regulator would sit -- the contrast with
the paper's per-master IPs is experiment E11.

A :class:`Bridge` plays two roles:

* it is the *memory* of the upstream (fabric-level) interconnect:
  accepted fabric transactions are forwarded downstream;
* it is a *master* on the downstream (PS-level) interconnect: each
  forwarded transaction becomes a child transaction submitted
  through the bridge's port (whose ``max_outstanding`` models the HP
  port's capability, and whose optional regulator models aggregate
  regulation).

Child completions complete the parent upstream, preserving each
layer's transaction lifecycle checks.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ProtocolError
from repro.sim.kernel import Simulator
from repro.sim.stats import StatSet
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction


class Bridge:
    """Forwards an upstream interconnect's traffic through one
    downstream master port.

    Args:
        sim: Simulation kernel.
        port: The downstream :class:`~repro.axi.port.MasterPort` this
            bridge drives (its name labels the HP port; its
            outstanding limit and optional regulator model the shared
            ingress).  The bridge takes the port's ``on_response``
            slot.
    """

    def __init__(self, sim: Simulator, port: MasterPort) -> None:
        self.sim = sim
        self.port = port
        self.name = port.name
        self.stats = StatSet(f"{port.name}.bridge")
        self._upstream = None
        self._parents: Dict[int, Transaction] = {}
        if port.on_response is not None:
            raise ProtocolError(f"port {port.name!r} already has a master")
        port.on_response = self._on_child_response

    # ------------------------------------------------------------------
    # upstream-facing (the fabric interconnect's "memory")
    # ------------------------------------------------------------------
    def set_upstream(self, upstream) -> None:
        if self._upstream is not None:
            raise ProtocolError(f"bridge {self.name!r}: upstream attached twice")
        self._upstream = upstream

    def enqueue(self, txn: Transaction) -> None:
        """Accept a fabric-accepted transaction; forward downstream."""
        child = Transaction(
            master=self.name,
            is_write=txn.is_write,
            addr=txn.addr,
            burst_len=txn.burst_len,
            bytes_per_beat=txn.bytes_per_beat,
            qos=txn.qos,
            created=self.sim.now,
        )
        self._parents[child.txn_id] = txn
        self.stats.counter("forwarded").add()
        self.stats.sampler("occupancy").record(len(self._parents))
        self.port.submit(child)

    # ------------------------------------------------------------------
    # downstream-facing
    # ------------------------------------------------------------------
    def _on_child_response(self, child: Transaction) -> None:
        parent = self._parents.pop(child.txn_id, None)
        if parent is None:
            raise ProtocolError(
                f"bridge {self.name!r}: response for unknown child "
                f"{child.txn_id}"
            )
        # The parent "reached memory" when its child did.
        parent.mark_mem_start(child.mem_start)
        upstream = self._upstream
        if upstream is None:
            raise ProtocolError(f"bridge {self.name!r}: no upstream attached")
        upstream.on_mem_complete(parent)

    @property
    def in_flight(self) -> int:
        """Parent transactions currently forwarded and uncompleted."""
        return len(self._parents)
