"""The AXI crossbar between master ports and the memory controller.

The interconnect accepts at most one address phase per
``addr_cycles`` (the address-channel throughput of the fabric
switch), chooses among eligible ports with a pluggable
:class:`~repro.axi.arbiter.Arbiter`, and forwards accepted
transactions to the DRAM controller after a fixed pipeline latency.
Responses travel back with a symmetric latency.

The implementation is fully event-driven: arbitration only runs when
some port *kicks* the interconnect (new request, freed outstanding
slot, or regulator credit release), so idle cycles cost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError, ProtocolError
from repro.sim.kernel import Phase, Simulator
from repro.sim.stats import StatSet
from repro.axi.arbiter import Arbiter, make_arbiter
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.telemetry.registry import get_registry


@dataclass(frozen=True)
class InterconnectConfig:
    """Static interconnect parameters.

    Attributes:
        arbiter: Arbitration policy name (see
            :func:`repro.axi.arbiter.make_arbiter`).
        addr_cycles: Minimum cycles between two address acceptances
            on one channel (1 = one handshake per cycle).
        fwd_latency: Pipeline cycles from acceptance to arrival at the
            DRAM controller queue.
        resp_latency: Pipeline cycles from DRAM completion to the
            response landing back at the master port.
        split_addr_channels: Arbitrate the read (AR) and write (AW)
            address channels independently, as a real AXI switch
            does: one read *and* one write acceptance can happen per
            ``addr_cycles``.  Combine with
            :attr:`repro.axi.port.PortConfig.split_channels` on the
            ports to remove read/write head-of-line coupling.
    """

    arbiter: str = "round_robin"
    addr_cycles: int = 1
    fwd_latency: int = 4
    resp_latency: int = 4
    split_addr_channels: bool = False

    def __post_init__(self) -> None:
        if self.addr_cycles < 1:
            raise ConfigError(f"addr_cycles must be >= 1, got {self.addr_cycles}")
        if self.fwd_latency < 0 or self.resp_latency < 0:
            raise ConfigError("interconnect latencies must be non-negative")


class Interconnect:
    """N master ports -> 1 memory port crossbar with arbitration."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[InterconnectConfig] = None,
        arbiter: Optional[Arbiter] = None,
    ) -> None:
        self.sim = sim
        self.config = config or InterconnectConfig()
        self.arbiter = arbiter or make_arbiter(self.config.arbiter)
        self.ports: List[MasterPort] = []
        self._ports_by_name = {}
        self.stats = StatSet("interconnect")
        self._memory = None  # set by attach_memory
        # First free cycle per address channel: one combined channel
        # (key None) or independent read/write channels.
        if self.config.split_addr_channels:
            self._next_free = {False: 0, True: 0}
        else:
            self._next_free = {None: 0}
        self._arb_scheduled_at: Optional[int] = None
        registry = get_registry()
        self._tm_passes = registry.counter("interconnect_arb_passes")
        self._tm_accepted = registry.counter("interconnect_accepted")

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_port(self, port: MasterPort) -> int:
        """Register a master port; returns its port index."""
        if port.name in self._ports_by_name:
            raise ConfigError(f"duplicate port name {port.name!r}")
        port._set_interconnect(self)
        self.ports.append(port)
        self._ports_by_name[port.name] = port
        return len(self.ports) - 1

    def attach_memory(self, memory) -> None:
        """Connect the downstream memory controller.

        The controller must expose ``enqueue(txn)`` and call our
        :meth:`on_mem_complete` when a transaction finishes service.
        """
        if self._memory is not None:
            raise ProtocolError("memory controller attached twice")
        self._memory = memory
        memory.set_upstream(self)

    # ------------------------------------------------------------------
    # arbitration
    # ------------------------------------------------------------------
    def kick(self) -> None:
        """Request an arbitration pass (deduplicated, event-driven)."""
        at = max(self.sim.now, min(self._next_free.values()))
        if self._arb_scheduled_at is not None and self._arb_scheduled_at <= at:
            return
        self._arb_scheduled_at = at
        self.sim.schedule_at(at, self._arbitrate, priority=Phase.ARBITER)

    def _arbitrate(self) -> None:
        self._arb_scheduled_at = None
        self._tm_passes.inc()
        now = self.sim.now
        progressed = False
        for direction, free_at in self._next_free.items():
            if now < free_at:
                continue
            if self._arbitrate_channel(direction, now):
                progressed = True
        if progressed:
            # More candidates may be waiting; try again when a channel
            # frees up.
            self.kick()

    def _arbitrate_channel(self, direction: Optional[bool], now: int) -> bool:
        """One acceptance attempt on one address channel.

        Args:
            direction: False = read channel, True = write channel,
                None = the combined channel.

        Returns:
            True when a transaction was accepted.
        """
        candidates = []
        for index, port in enumerate(self.ports):
            txn = port.head(want_write=direction)
            if txn is not None:
                candidates.append((index, txn))
        if not candidates:
            return False
        winner = self.arbiter.select(candidates)
        # Accept by the chosen transaction's own direction: on a
        # split-channel port this selects the right queue even when
        # this interconnect runs a combined channel.
        chosen = dict(candidates)[winner]
        txn = self.ports[winner].accept_head(want_write=chosen.is_write)
        self.stats.counter("accepted").add()
        self.stats.counter("accepted_bytes").add(txn.nbytes)
        self._tm_accepted.inc()
        self._next_free[direction] = now + self.config.addr_cycles
        if self._memory is None:
            raise ProtocolError("no memory controller attached")
        memory = self._memory
        self.sim.schedule(
            self.config.fwd_latency,
            lambda t=txn: memory.enqueue(t),
            priority=Phase.MEMORY,
        )
        return True

    # ------------------------------------------------------------------
    # response path
    # ------------------------------------------------------------------
    def on_mem_complete(self, txn: Transaction) -> None:
        """Route a completed transaction back to its master port."""
        port = self._port_by_name(txn.master)
        self.sim.schedule(
            self.config.resp_latency,
            lambda t=txn: port.complete(t),
            priority=Phase.RESPONSE,
        )

    def _port_by_name(self, name: str) -> MasterPort:
        try:
            return self._ports_by_name[name]
        except KeyError:
            raise ProtocolError(f"response for unknown master {name!r}") from None
