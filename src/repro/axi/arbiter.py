"""Arbitration policies for the interconnect address channel.

An arbiter picks, among the master ports that currently have an
eligible head-of-line transaction, the one whose address phase is
accepted this cycle.  Three policies are provided, matching what the
commercial fabric of the modelled SoC offers:

* :class:`RoundRobinArbiter` -- the fair default of AXI crossbars.
* :class:`FixedPriorityArbiter` -- static port priorities.
* :class:`QosArbiter` -- AXI QoS-400 style: highest transaction QoS
  value wins, round-robin among equals.  This is the "static priority
  QoS" baseline the paper contrasts with true bandwidth regulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.axi.txn import Transaction


class Arbiter:
    """Base arbitration interface.

    Subclasses implement :meth:`select`; candidates are given as
    ``(port_index, head_transaction)`` pairs in port order.
    """

    def select(self, candidates: Sequence[tuple]) -> int:
        """Return the winning ``port_index`` among the candidates.

        Args:
            candidates: Non-empty sequence of ``(port_index, txn)``.
        """
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbitration: the port after the last winner
    gets the highest priority next time."""

    def __init__(self) -> None:
        self._last_winner = -1

    def select(self, candidates: Sequence[tuple]) -> int:
        best_index: Optional[int] = None
        best_key: Optional[int] = None
        for port_index, _txn in candidates:
            # Distance past the previous winner, wrapping at a large
            # bound; smaller distance = higher rotating priority.
            distance = port_index - self._last_winner
            if distance <= 0:
                distance += 1 << 20
            if best_key is None or distance < best_key:
                best_key = distance
                best_index = port_index
        assert best_index is not None
        self._last_winner = best_index
        return best_index


class FixedPriorityArbiter(Arbiter):
    """Static priorities per port; lower priority number wins.

    Args:
        priorities: Mapping from port index to priority level.  Ports
            missing from the map get the lowest priority (a large
            number).  Ties break by port index.
    """

    def __init__(self, priorities: Optional[Dict[int, int]] = None) -> None:
        self._priorities = dict(priorities or {})

    def select(self, candidates: Sequence[tuple]) -> int:
        def key(item: tuple) -> tuple:
            port_index, _txn = item
            return (self._priorities.get(port_index, 1 << 20), port_index)

        return min(candidates, key=key)[0]


class QosArbiter(Arbiter):
    """AXI QoS-400 style arbitration.

    The transaction with the highest AXI ``qos`` field wins; equal-QoS
    candidates are served round-robin.  Note this provides *ordering*
    only -- a high-QoS master still suffers when low-QoS masters keep
    the DRAM data bus busy, which is exactly the limitation the
    reproduced paper's regulator addresses.
    """

    def __init__(self) -> None:
        self._rr = RoundRobinArbiter()

    def select(self, candidates: Sequence[tuple]) -> int:
        best_qos = max(txn.qos for _i, txn in candidates)
        top = [(i, txn) for i, txn in candidates if txn.qos == best_qos]
        return self._rr.select(top)


_ARBITERS = {
    "round_robin": RoundRobinArbiter,
    "fixed_priority": FixedPriorityArbiter,
    "qos": QosArbiter,
}


def make_arbiter(name: str, **kwargs) -> Arbiter:
    """Factory: build an arbiter by policy name.

    Args:
        name: One of ``round_robin``, ``fixed_priority``, ``qos``.
        **kwargs: Forwarded to the arbiter constructor.
    """
    try:
        cls = _ARBITERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown arbiter {name!r}; choose from {sorted(_ARBITERS)}"
        ) from None
    return cls(**kwargs)
