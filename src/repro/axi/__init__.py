"""Transaction-level AXI interconnect model (substrate S2).

The model works at the granularity of AXI *transactions* (an address
phase plus a burst of data beats).  This is the level at which both
the bandwidth monitor and the regulator of the reproduced paper
operate: the regulator gates address-channel handshakes, and the
monitor counts data beats.  Wire-level AXI signalling below this
abstraction does not change arbitration outcomes or per-window byte
counts, so it is intentionally not modelled.

Key classes:

* :class:`repro.axi.txn.Transaction` -- one burst transfer with its
  full timestamp lifecycle.
* :class:`repro.axi.port.MasterPort` -- per-master entry point that
  enforces outstanding limits and hosts the (optional) regulator.
* :class:`repro.axi.interconnect.Interconnect` -- the crossbar /
  arbiter between master ports and the DRAM controller port.
* :mod:`repro.axi.arbiter` -- round-robin, fixed-priority and
  QoS-400-style arbitration policies.
"""

from repro.axi.arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    QosArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.axi.interconnect import Interconnect, InterconnectConfig
from repro.axi.port import MasterPort, PortConfig
from repro.axi.qos import QosMap
from repro.axi.txn import Transaction

__all__ = [
    "Arbiter",
    "FixedPriorityArbiter",
    "QosArbiter",
    "RoundRobinArbiter",
    "make_arbiter",
    "Interconnect",
    "InterconnectConfig",
    "MasterPort",
    "PortConfig",
    "QosMap",
    "Transaction",
]
