"""Latency histograms with CDF export.

Log2-bucketed histograms mirror what a hardware latency monitor can
afford (a small bank of range counters) while still supporting the
latency-distribution figures (E4).  Exact percentiles, when needed,
come from :class:`repro.sim.stats.Sampler`; the histogram is the
compact streaming alternative.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigError


class LatencyHistogram:
    """A power-of-two bucketed latency histogram.

    Bucket ``i`` counts samples in ``[2**i, 2**(i+1))``; bucket 0 also
    absorbs zero-latency samples.

    Args:
        max_exponent: Largest bucket exponent; samples at or above
            ``2**max_exponent`` fold into the last bucket.
    """

    def __init__(self, max_exponent: int = 20) -> None:
        if max_exponent < 1:
            raise ConfigError("max_exponent must be >= 1")
        self.max_exponent = max_exponent
        self._buckets = [0] * (max_exponent + 1)
        self._count = 0
        self._total = 0

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ConfigError(f"negative latency {latency}")
        self._count += 1
        self._total += latency
        self._buckets[self._bucket_of(latency)] += 1

    def _bucket_of(self, latency: int) -> int:
        if latency < 1:
            return 0
        return min(latency.bit_length() - 1, self.max_exponent)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def buckets(self) -> List[Tuple[int, int]]:
        """``(bucket_floor, count)`` pairs for non-empty buckets."""
        return [
            (1 << i if i else 0, n) for i, n in enumerate(self._buckets) if n
        ]

    def cdf(self) -> List[Tuple[int, float]]:
        """``(latency_upper_bound, cumulative_fraction)`` pairs."""
        if not self._count:
            return []
        out: List[Tuple[int, float]] = []
        running = 0
        for i, n in enumerate(self._buckets):
            if not n and not running:
                continue
            running += n
            out.append(((1 << (i + 1)) - 1, running / self._count))
            if running == self._count:
                break
        return out

    def percentile_bound(self, pct: float) -> int:
        """Upper bound of the bucket containing the percentile.

        Conservative (rounds up to the bucket edge), matching what a
        hardware range-counter monitor can report.
        """
        if not 0 < pct <= 100:
            raise ConfigError(f"percentile {pct} out of (0, 100]")
        if not self._count:
            return 0
        threshold = pct / 100.0 * self._count
        running = 0
        for i, n in enumerate(self._buckets):
            running += n
            if running >= threshold:
                return (1 << (i + 1)) - 1
        return (1 << (self.max_exponent + 1)) - 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Return a new histogram combining both populations."""
        if other.max_exponent != self.max_exponent:
            raise ConfigError("cannot merge histograms of different shapes")
        merged = LatencyHistogram(self.max_exponent)
        merged._count = self._count + other._count
        merged._total = self._total + other._total
        merged._buckets = [a + b for a, b in zip(self._buckets, other._buckets)]
        return merged
