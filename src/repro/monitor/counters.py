"""Raw traffic counters.

A :class:`BeatCounter` is the model of a PMU-style byte counter: it
subscribes to a port's beat stream and accumulates totals.  Software
regulators (MemGuard) poll exactly this kind of counter; the
tightly-coupled IP embeds one per monitored channel.
"""

from __future__ import annotations

from repro.axi.port import MasterPort


class BeatCounter:
    """Accumulates beats and bytes observed on one master port."""

    def __init__(self, port: MasterPort) -> None:
        self.port = port
        self.master = port.name
        self.total_bytes = 0
        self.total_transactions = 0
        self._last_read_bytes = 0
        port.beat_observers.append(self._observe)

    def _observe(self, nbytes: int, now: int) -> None:
        self.total_bytes += nbytes
        self.total_transactions += 1

    def read_and_clear_delta(self) -> int:
        """Return bytes accumulated since the previous call.

        This models the read-and-reset access pattern of a software
        regulator sampling a hardware counter once per period.
        """
        delta = self.total_bytes - self._last_read_bytes
        self._last_read_bytes = self.total_bytes
        return delta

    def bandwidth_bytes_per_cycle(self, elapsed: int) -> float:
        """Average bandwidth over ``elapsed`` cycles."""
        if elapsed <= 0:
            return 0.0
        return self.total_bytes / elapsed
