"""Windowed bandwidth monitoring.

The fine-grained view exported by the tightly-coupled IP: bytes moved
per fixed window.  Besides plain bandwidth traces this module provides
the *overshoot* analysis used in experiments E2/E3/E8: given a target
budget, how far above it did any window actually go?  Coarse or
loosely-coupled regulation shows large per-window overshoot even when
the long-run average looks correct -- the core quantitative argument
of the reproduced paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.axi.port import MasterPort
from repro.sim.stats import TimeSeries


def overshoot_from_bins(
    window_bytes: Sequence[int], budget_bytes_per_window: float
) -> Dict[str, float]:
    """Overshoot statistics over pre-recorded per-window byte counts.

    The pure-data core of :meth:`WindowedBandwidthMonitor.overshoot_report`,
    usable on bins that crossed a process boundary (e.g.
    :attr:`repro.runner.summary.RunSummary.monitor_bins`).

    Args:
        window_bytes: Dense per-window byte counts.
        budget_bytes_per_window: Allowed bytes per window.

    Returns:
        Dict with ``max_overshoot_ratio``, ``violation_fraction`` and
        ``mean_ratio`` (all 0.0 when no windows were recorded).
    """
    if budget_bytes_per_window <= 0:
        raise ConfigError("budget must be positive")
    if not window_bytes:
        return {
            "max_overshoot_ratio": 0.0,
            "violation_fraction": 0.0,
            "mean_ratio": 0.0,
        }
    # Single pass, no materialized ratio list: bin arrays can span
    # hundreds of thousands of windows on long-horizon sweeps.  The
    # per-element float operations match the obvious list-based
    # formulation exactly, so reported values are bit-identical.
    count = 0
    total = 0.0
    max_ratio = 0.0
    violations = 0
    threshold = 1.0 + 1e-9
    for w in window_bytes:
        ratio = w / budget_bytes_per_window
        count += 1
        total += ratio
        if ratio > max_ratio:
            max_ratio = ratio
        if ratio > threshold:
            violations += 1
    return {
        "max_overshoot_ratio": max_ratio,
        "violation_fraction": violations / count,
        "mean_ratio": total / count,
    }


class WindowedBandwidthMonitor:
    """Per-window byte counts for one master port.

    Args:
        port: The observed port.
        window_cycles: Width of the observation window in cycles.
            Pick the *analysis* granularity here; it need not match
            any regulator's window.
    """

    def __init__(self, port: MasterPort, window_cycles: int) -> None:
        if window_cycles < 1:
            raise ConfigError(f"window_cycles must be >= 1, got {window_cycles}")
        self.port = port
        self.master = port.name
        self.window_cycles = window_cycles
        self._series = TimeSeries(f"{port.name}.window_bytes", window_cycles)
        port.beat_observers.append(self._observe)

    def _observe(self, nbytes: int, now: int) -> None:
        self._series.add(now, nbytes)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def window_bytes(self, horizon_cycles: int) -> List[int]:
        """Dense per-window byte counts covering ``[0, horizon)``."""
        if horizon_cycles < self.window_cycles:
            raise ConfigError("horizon shorter than one window")
        last_bin = horizon_cycles // self.window_cycles - 1
        return [int(v) for v in self._series.bins(0, last_bin)]

    def total_bytes(self) -> int:
        return int(self._series.total())

    def current_window_bytes(self) -> int:
        """Bytes in the most recently touched window (live view)."""
        return int(self._series.last_bin())

    def peak_window_bytes(self) -> int:
        return int(self._series.max_bin())

    def bin_edge_after(self, now: int) -> int:
        """First window-bin boundary strictly after cycle ``now``.

        A pure helper for the fast-forward engine: window-bin edges
        are one of the structural horizon terms bounding a macro-step
        (the monitor itself is passive -- it only accumulates on
        observed beats -- but keeping regions inside a single bin
        keeps the invariant trivially auditable).
        """
        return (now // self.window_cycles + 1) * self.window_cycles

    def mean_bandwidth_bytes_per_cycle(self, horizon_cycles: int) -> float:
        if horizon_cycles <= 0:
            raise ConfigError("horizon must be positive")
        return self.total_bytes() / horizon_cycles

    # ------------------------------------------------------------------
    # overshoot analysis
    # ------------------------------------------------------------------
    def overshoot_report(
        self, budget_bytes_per_window: float, horizon_cycles: int
    ) -> Dict[str, float]:
        """Quantify violations of a per-window byte budget.

        Args:
            budget_bytes_per_window: Allowed bytes in each window of
                this monitor's width.
            horizon_cycles: Analysis horizon.

        Returns:
            Dict with:
                ``max_overshoot_ratio`` -- worst window's bytes divided
                by the budget (1.0 = never exceeded);
                ``violation_fraction`` -- fraction of windows above
                budget;
                ``mean_ratio`` -- average window bytes over budget.
        """
        return overshoot_from_bins(
            self.window_bytes(horizon_cycles), budget_bytes_per_window
        )
