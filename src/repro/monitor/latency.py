"""Per-port latency monitoring.

A :class:`LatencyMonitor` subscribes to a port's completion stream
and maintains the log-bucketed histogram a hardware latency monitor
(a small bank of range counters per channel) can afford, exactly as
the monitor half of the reproduced IP exports it.  It can split read
and write populations and windows the observation to an interval of
interest (e.g. "after the mode switch").
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.axi.port import MasterPort
from repro.axi.txn import Transaction
from repro.monitor.histogram import LatencyHistogram


class LatencyMonitor:
    """Histogram-based latency observer for one master port.

    Args:
        port: The observed port.
        max_exponent: Histogram shape (see
            :class:`~repro.monitor.histogram.LatencyHistogram`).
        split_rw: Keep separate read/write histograms.
        from_cycle / to_cycle: Observation window; completions whose
            ``completed`` timestamp falls outside are ignored.
    """

    def __init__(
        self,
        port: MasterPort,
        max_exponent: int = 20,
        split_rw: bool = False,
        from_cycle: int = 0,
        to_cycle: Optional[int] = None,
    ) -> None:
        if to_cycle is not None and to_cycle <= from_cycle:
            raise ConfigError("to_cycle must exceed from_cycle")
        self.port = port
        self.master = port.name
        self.split_rw = split_rw
        self.from_cycle = from_cycle
        self.to_cycle = to_cycle
        self.reads = LatencyHistogram(max_exponent)
        self.writes = LatencyHistogram(max_exponent) if split_rw else self.reads
        port.completion_observers.append(self._observe)

    def _observe(self, txn: Transaction) -> None:
        if txn.completed < self.from_cycle:
            return
        if self.to_cycle is not None and txn.completed > self.to_cycle:
            return
        target = self.writes if (self.split_rw and txn.is_write) else self.reads
        target.record(txn.latency)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def combined(self) -> LatencyHistogram:
        """Reads and writes together."""
        if not self.split_rw:
            return self.reads
        return self.reads.merge(self.writes)

    def summary(self) -> dict:
        """Mean and conservative percentile bounds of the population."""
        hist = self.combined
        return {
            "count": hist.count,
            "mean": hist.mean,
            "p50_bound": hist.percentile_bound(50),
            "p95_bound": hist.percentile_bound(95),
            "p99_bound": hist.percentile_bound(99),
        }
