"""Bandwidth and latency monitoring (substrate S5).

Monitors are passive observers of port traffic:

* :class:`repro.monitor.counters.BeatCounter` -- total beats/bytes per
  master (the raw PMU-style counter software regulators poll).
* :class:`repro.monitor.window.WindowedBandwidthMonitor` -- per-window
  byte counts, the fine-grained view the tightly-coupled IP exports;
  includes overshoot analysis against a budget.
* :class:`repro.monitor.histogram.LatencyHistogram` -- log-bucketed
  latency distribution with CDF export for the E4 figures.
"""

from repro.monitor.counters import BeatCounter
from repro.monitor.histogram import LatencyHistogram
from repro.monitor.window import WindowedBandwidthMonitor

__all__ = ["BeatCounter", "LatencyHistogram", "WindowedBandwidthMonitor"]
