"""Lint front-end: run the engine over paths, format, exit-code.

This is what ``repro check lint`` calls::

    repro check lint src/                 # human output, exit 1 on errors
    repro check lint src/ --format json   # machine-readable findings
    repro check lint src/ --write-baseline  # grandfather current findings
    repro check lint --list-rules         # the rule catalogue

The baseline defaults to ``.repro-lint-baseline.json`` in the working
directory; the shipped tree keeps it empty.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence, TextIO

from repro.checks.baseline import DEFAULT_BASELINE, load_baseline, write_baseline
from repro.checks.engine import LintEngine, LintResult, all_rules

__all__ = ["lint_paths", "format_report", "run_lint"]


def lint_paths(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    jobs: Optional[int] = None,
) -> LintResult:
    """Lint ``paths`` with every registered rule.

    Args:
        paths: Files and/or directories.
        baseline_path: Baseline file; ``None`` uses the default
            location (an absent file means an empty baseline).
        jobs: Scan with this many pool workers (serial fallback when
            pools cannot run); ``None``/``1`` stays serial.
    """
    baseline = load_baseline(baseline_path or DEFAULT_BASELINE)
    return LintEngine(baseline=baseline).run(paths, jobs=jobs)


def format_report(result: LintResult, fmt: str = "human") -> str:
    """Render a :class:`~repro.checks.engine.LintResult`."""
    if fmt == "json":
        return json.dumps(
            {
                "files": result.files,
                "errors": len(result.errors),
                "warnings": len(result.warnings),
                "suppressed": result.suppressed,
                "baselined": len(result.baselined),
                "findings": [f.to_dict() for f in result.findings],
            },
            indent=2,
        )
    lines: List[str] = [f.format_human() for f in result.findings]
    for finding in result.baselined:
        lines.append(f"{finding.format_human()} (baselined)")
    lines.append(
        f"{result.files} files: {len(result.errors)} errors, "
        f"{len(result.warnings)} warnings, {result.suppressed} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    return "\n".join(lines)


def format_rule_catalogue() -> str:
    """One line per registered rule (``--list-rules``)."""
    lines = []
    for rule_ in all_rules():
        lines.append(
            f"{rule_.id}  [{rule_.family}/{rule_.severity}]  "
            f"{rule_.description}"
        )
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    fmt: str = "human",
    update_baseline: bool = False,
    stream: Optional[TextIO] = None,
    jobs: Optional[int] = None,
) -> int:
    """Full CLI behaviour; returns the process exit code.

    Exit codes: 0 clean (warnings allowed), 1 error findings,
    2 engine failure (raised as :class:`repro.errors.LintError` by
    the callee and translated by the CLI).
    """
    if stream is None:
        stream = sys.stdout  # resolved per call so capture hooks see it
    result = lint_paths(paths, baseline_path, jobs=jobs)
    if update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(target, result.findings + result.baselined)
        print(
            f"baseline {target}: {len(result.findings)} findings recorded",
            file=stream,
        )
        return 0
    print(format_report(result, fmt), file=stream)
    return 1 if result.errors else 0
