"""Finding and severity primitives shared by the lint engine."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional


class Severity:
    """Finding severities (``ERROR`` findings fail the build)."""

    ERROR = "error"
    WARNING = "warning"

    ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: The violated rule (e.g. ``"DET002"``).
        severity: ``Severity.ERROR`` or ``Severity.WARNING``.
        path: Filesystem path of the offending file as given to the
            engine (what the human/JSON reports print).
        line / col: 1-based line and 0-based column of the violation.
        message: Human-oriented description of this occurrence.
        source: The stripped source line, used for the baseline
            fingerprint so entries survive unrelated line drift.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    source: str = ""

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline.

        Deliberately excludes the line *number*: a grandfathered
        finding keeps matching its baseline entry when unrelated edits
        move it.  Identical violations on identical source lines share
        a fingerprint; the baseline stores per-fingerprint *counts* so
        adding one more still fails.
        """
        blob = "|".join((self.path, self.rule_id, self.source, self.message))
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]

    def format_human(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }


def finding_sort_key(finding: Finding):
    """Stable report order: path, then position, then rule id."""
    return (finding.path, finding.line, finding.col, finding.rule_id)


def repro_relpath(path: str) -> Optional[str]:
    """Posix path of ``path`` relative to the ``repro`` package root.

    Returns e.g. ``"repro/sim/rng.py"`` for any spelling of a path
    into the package, or ``None`` for files outside it (test
    fixtures, scratch files) -- rules treat those as fully in scope,
    so fixtures exercise every rule regardless of where they live.
    """
    norm = path.replace("\\", "/")
    parts = norm.split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return None
