"""Correctness tooling: the invariant lint engine and runtime sanitizer.

The reproduction's headline claim -- bit-identical QoS results across
scheduler backends, worker counts, and telemetry on/off -- rests on
invariants nothing in the language enforces: all randomness flows
through seeded :mod:`repro.sim.rng` streams, kernel hot paths stay
allocation-free, telemetry handles are bound at construction.  This
package enforces them mechanically:

* :mod:`repro.checks.lint` -- an AST-based lint engine with five rule
  families (DET determinism, HOT hot-path discipline, TEL telemetry
  discipline, ERR error hygiene, API surface hygiene), inline
  ``# repro: allow[RULE]`` suppressions and a baseline file for
  grandfathered findings.  Run it with ``repro check lint src/``.
* :mod:`repro.checks.sanitize` -- a runtime event-queue sanitizer
  (``REPRO_SANITIZE=1``) wrapping either scheduler backend with
  dispatch-order, pool double-free and occupancy assertions that raise
  :class:`repro.errors.SanitizerError` with event provenance.

See ``docs/static-analysis.md`` for the rule catalogue and workflow.
"""

from repro.checks.engine import LintEngine, ModuleContext, Rule, rule
from repro.checks.findings import Finding, Severity
from repro.checks.lint import lint_paths
from repro.checks.sanitize import SANITIZE_ENV, SanitizingQueue, sanitize_enabled

__all__ = [
    "Finding",
    "LintEngine",
    "lint_paths",
    "ModuleContext",
    "Rule",
    "rule",
    "SANITIZE_ENV",
    "SanitizingQueue",
    "sanitize_enabled",
    "Severity",
]
