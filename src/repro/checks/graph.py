"""Whole-program symbol table, call graph, and reachability.

The per-file linter (:mod:`repro.checks.engine`) sees one module at a
time, which is exactly as far as anchor-comment-driven rules can go.
The analyses behind ``repro check deep`` need more: *which functions
can execute inside a pool worker process*, *which code runs under the
asyncio serve loop*, *what is transitively reachable from a hot-path
anchor*.  This module supplies the shared substrate:

* :func:`extract_symbols` distils one parsed module into a picklable
  :class:`ModuleSymbols` -- functions with their call sites, classes
  with bases/attribute types, imports, suppressions.  Extraction also
  pre-computes the location-bound facts the concurrency rules need
  (module-global writes, blocking calls, filesystem writes, HOT
  discipline findings) so the expensive AST walk happens once per
  file and can run in a :class:`~repro.runner.pool.WorkerPool`.
* :class:`ProjectIndex` merges the per-file tables into a project
  view: import/alias resolution, lightweight type inference (parameter
  annotations, ``self.attr`` assignments, local constructor calls,
  registry dicts), method resolution with dynamic dispatch through
  subclass overrides, and BFS reachability over the resulting edges.
* :class:`GraphRule` / :data:`GRAPH_REGISTRY` mirror the per-file rule
  framework for rules that need the whole index (the CONC and FFC
  families in :mod:`repro.checks.rules.conc` / ``.ffc``).

The resolver is deliberately *under*-approximate where Python is
dynamic: an edge is added only when a receiver's type can be traced
through annotations, constructor assignments, or a registry dict.
That keeps the hot-set and worker-set reports precise enough to act
on; the escape hatches (anchors, ``allow[...]``, the deep baseline)
cover the rest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checks.engine import (
    ClassInfo,
    FunctionInfo,
    ModuleContext,
    build_context,
)
from repro.checks.findings import Finding, Severity
from repro.errors import LintError

__all__ = [
    "CallSite",
    "FunctionSym",
    "ClassSym",
    "ModuleSymbols",
    "ProjectIndex",
    "GraphRule",
    "GRAPH_REGISTRY",
    "graph_rule",
    "all_graph_rules",
    "extract_symbols",
    "module_name_for",
]

# ---------------------------------------------------------------------------
# data model (everything picklable: the scan fans out over a WorkerPool)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    Attributes:
        kind: How the callee is spelled -- ``"name"`` (``f(...)``),
            ``"self"``/``"cls"`` (``self.f(...)``), ``"super"``
            (``super().f(...)``), ``"attr"`` (``recv.f(...)`` for any
            other receiver), or ``"registry"`` (``TABLE[key](...)``).
        func: Bare callee name (method or function name).
        recv: Dotted receiver text (``"self._pool"``, ``"time"``,
            registry dict name for ``"registry"``); empty for
            ``"name"``/``"self"``/``"cls"``/``"super"`` kinds.
        line: 1-based source line of the call.
        arg_refs: Dotted texts of Name/Attribute arguments -- function
            references handed to the callee (worker-fn detection).
    """

    kind: str
    func: str
    recv: str = ""
    line: int = 0
    arg_refs: Tuple[str, ...] = ()


@dataclass
class FunctionSym:
    """One function, summarised for cross-module analysis."""

    qualname: str  #: ``<module>.<Class>.<name>`` -- globally unique key
    module: str
    name: str
    cls: Optional[str]  #: enclosing class qualname, or ``None``
    line: int
    is_async: bool
    anchors: Tuple[str, ...]
    params: Tuple[str, ...]
    param_types: Dict[str, str] = field(default_factory=dict)
    return_type: str = ""
    decorators: Tuple[str, ...] = ()
    calls: Tuple[CallSite, ...] = ()
    nested: Tuple[str, ...] = ()  #: qualnames of nested defs (closures)
    local_types: Dict[str, str] = field(default_factory=dict)
    local_regs: Dict[str, str] = field(default_factory=dict)
    #: Pre-computed location-bound findings (already suppression
    #: filtered); the graph rules *select* from these by reachability.
    hot_findings: Tuple[Finding, ...] = ()
    global_writes: Tuple[Finding, ...] = ()
    blocking_calls: Tuple[Finding, ...] = ()
    fs_writes: Tuple[Finding, ...] = ()


@dataclass
class ClassSym:
    """One class, summarised for cross-module analysis."""

    qualname: str  #: ``<module>.<Class>`` -- globally unique key
    module: str
    name: str
    line: int
    path: str
    source: str  #: stripped ``class`` source line (for fingerprints)
    anchors: Tuple[str, ...]
    bases: Tuple[str, ...]  #: raw dotted base texts, in order
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    #: dataclass fields as ``(name, annotation text, line, source)``.
    fields: Tuple[Tuple[str, str, int, str], ...] = ()


@dataclass
class ModuleSymbols:
    """Everything :class:`ProjectIndex` needs from one source file."""

    module: str  #: dotted module name (``repro.sim.kernel``)
    path: str
    rel: Optional[str]
    imports: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionSym] = field(default_factory=list)
    classes: List[ClassSym] = field(default_factory=list)
    registries: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    suppressions: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    markers: Tuple[str, ...] = ()
    suppressed: int = 0  #: findings dropped by inline ``allow`` comments


# ---------------------------------------------------------------------------
# extraction helpers
# ---------------------------------------------------------------------------

#: Wrapper generics unwrapped when reading an annotation as a type.
_TYPE_WRAPPERS = {"Optional", "List", "Sequence", "Tuple", "Set",
                  "FrozenSet", "Iterable", "Final", "ClassVar",
                  "Deque", "Type"}

#: Calls that block the event loop when reached from an ``async def``.
_BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection",
}

#: Filesystem mutations that need the claim protocol in worker code.
_FS_WRITE_CALLS = {
    "os.replace", "os.rename", "os.renames", "os.makedirs", "os.mkdir",
    "os.remove", "os.unlink", "os.rmdir",
    "shutil.move", "shutil.copy", "shutil.copy2", "shutil.copyfile",
    "shutil.copytree", "shutil.rmtree",
}


def module_name_for(path: str, rel: Optional[str]) -> str:
    """Dotted module name for a file.

    Files inside the ``repro`` package get their real dotted name
    (``repro/sim/kernel.py`` -> ``repro.sim.kernel``; ``__init__.py``
    names the package).  Files outside (test fixtures) get their stem,
    so fixtures form tiny self-contained projects of their own.
    """
    if rel:
        parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
    stem = path.replace("\\", "/").rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else stem


def _dotted(node: ast.AST) -> str:
    """Dotted text of a Name/Attribute chain, else ``""``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _ann_text(node: Optional[ast.AST]) -> str:
    """Annotation -> dotted type text, unwrapping one generic layer.

    ``Optional[WorkerPool]`` -> ``WorkerPool``; ``"Kernel"`` (string
    annotation) -> ``Kernel``; unresolvable shapes -> ``""``.
    """
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ""
    if isinstance(node, ast.Subscript):
        base = _dotted(node.value)
        tail = base.rsplit(".", 1)[-1]
        if tail in _TYPE_WRAPPERS:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _ann_text(inner)
        return base
    text = _dotted(node)
    return "" if text in ("None",) else text


def _resolve_imports(tree: ast.Module, module: str) -> Dict[str, str]:
    """Module-level alias table: local name -> absolute dotted target."""
    imports: Dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".")
                # level 1 = current package; each extra level pops one.
                anchor = anchor[: len(anchor) - (node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _body_walk(fn_node: ast.AST) -> Iterable[ast.AST]:
    """Body nodes, not descending into nested defs or lambdas."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _call_site(node: ast.Call) -> Optional[CallSite]:
    """Classify one call expression; ``None`` for unresolvable shapes."""
    refs: List[str] = []
    for arg in list(node.args) + [kw.value for kw in node.keywords]:
        text = _dotted(arg)
        if text:
            refs.append(text)
    arg_refs = tuple(refs)
    callee = node.func
    if isinstance(callee, ast.Name):
        return CallSite("name", callee.id, "", node.lineno, arg_refs)
    if isinstance(callee, ast.Attribute):
        value = callee.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "super"):
            return CallSite("super", callee.attr, "", node.lineno, arg_refs)
        recv = _dotted(value)
        if recv == "self" or recv == "cls":
            return CallSite(recv if recv == "cls" else "self",
                            callee.attr, "", node.lineno, arg_refs)
        if recv:
            return CallSite("attr", callee.attr, recv, node.lineno, arg_refs)
        return None
    if isinstance(callee, ast.Subscript) and isinstance(callee.value, ast.Name):
        return CallSite("registry", "", callee.value.id, node.lineno, arg_refs)
    return None


def _resolved_call_name(
    site: CallSite, imports: Dict[str, str]
) -> str:
    """Import-resolved dotted name of a call, for table matching."""
    if site.kind == "name":
        return imports.get(site.func, site.func)
    if site.kind == "attr":
        head, _, tail = site.recv.partition(".")
        root = imports.get(head, head)
        recv = f"{root}.{tail}" if tail else root
        return f"{recv}.{site.func}"
    return ""


def _write_mode(node: ast.Call) -> bool:
    """Does this ``open()`` call use a writing mode?"""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in mode.value for ch in "wax+")
    return True  # dynamic mode: assume the worst


def _mk_finding(
    rule_id: str,
    severity: str,
    ctx: ModuleContext,
    node: ast.AST,
    message: str,
) -> Finding:
    line = getattr(node, "lineno", 1)
    return Finding(
        rule_id=rule_id,
        severity=severity,
        path=ctx.path,
        line=line,
        col=getattr(node, "col_offset", 0),
        message=message,
        source=ctx.source_line(line),
    )


def _function_facts(
    ctx: ModuleContext,
    fn: FunctionInfo,
    qualname: str,
    module: str,
    cls: Optional[str],
    imports: Dict[str, str],
) -> Tuple[FunctionSym, int]:
    """Summarise one function; returns ``(symbol, suppressed count)``."""
    node = fn.node
    params: List[str] = []
    param_types: Dict[str, str] = {}
    args = node.args
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        params.append(a.arg)
        ann = _ann_text(a.annotation)
        if ann:
            param_types[a.arg] = ann
    decorators = tuple(
        d for d in (_dotted(dec.func if isinstance(dec, ast.Call) else dec)
                    for dec in node.decorator_list) if d
    )

    declared_globals: Set[str] = set()
    calls: List[CallSite] = []
    local_types: Dict[str, str] = {}
    local_regs: Dict[str, str] = {}
    global_writes: List[Finding] = []
    blocking: List[Finding] = []
    fs_writes: List[Finding] = []
    suppressed = 0

    def keep(finding: Finding, out: List[Finding]) -> None:
        nonlocal suppressed
        if ctx.is_suppressed(finding.rule_id, finding.line):
            suppressed += 1
        else:
            out.append(finding)

    for sub in _body_walk(node):
        if isinstance(sub, ast.Global):
            declared_globals.update(sub.names)
    for sub in _body_walk(node):
        if isinstance(sub, ast.Call):
            site = _call_site(sub)
            if site is not None:
                calls.append(site)
                resolved = _resolved_call_name(site, imports)
                if resolved in _BLOCKING_CALLS:
                    keep(_mk_finding(
                        "CONC003", Severity.ERROR, ctx, sub,
                        f"blocking call {resolved}() in {qualname}(), "
                        "reachable from an async handler; use the loop's "
                        "executor or an async equivalent",
                    ), blocking)
                elif resolved == "open":
                    keep(_mk_finding(
                        "CONC003", Severity.ERROR, ctx, sub,
                        f"synchronous file I/O (open) in {qualname}(), "
                        "reachable from an async handler; move it off "
                        "the event loop",
                    ), blocking)
                    if _write_mode(sub):
                        keep(_mk_finding(
                            "CONC004", Severity.ERROR, ctx, sub,
                            f"file write (open) in worker-reachable "
                            f"{qualname}() without the claim protocol; "
                            "claim the path atomically or anchor the "
                            "function with '# repro: claim-protocol'",
                        ), fs_writes)
                elif resolved in _FS_WRITE_CALLS:
                    keep(_mk_finding(
                        "CONC004", Severity.ERROR, ctx, sub,
                        f"filesystem mutation {resolved}() in "
                        f"worker-reachable {qualname}() without the claim "
                        "protocol; claim the path atomically or anchor "
                        "the function with '# repro: claim-protocol'",
                    ), fs_writes)
        elif isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: List[ast.AST]
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            else:
                targets = [sub.target]
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_globals):
                    keep(_mk_finding(
                        "CONC001", Severity.ERROR, ctx, sub,
                        f"module global {target.id!r} rebound in "
                        f"{qualname}(); a worker process mutates its own "
                        "copy, the parent never sees it",
                    ), global_writes)
            value = getattr(sub, "value", None)
            first = targets[0] if targets else None
            if isinstance(first, ast.Name) and value is not None:
                if isinstance(value, ast.Call):
                    callee = _dotted(value.func)
                    if callee:
                        local_types[first.id] = callee
                elif (isinstance(value, ast.Subscript)
                        and isinstance(value.value, ast.Name)):
                    local_regs[first.id] = value.value.id

    nested = tuple(
        f"{module}.{other.qualname}"
        for other in ctx.functions
        if other is not fn
        and other.qualname.startswith(fn.qualname + ".")
        and "." not in other.qualname[len(fn.qualname) + 1:]
    )

    sym = FunctionSym(
        qualname=qualname,
        module=module,
        name=node.name,
        cls=cls,
        line=node.lineno,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        anchors=tuple(sorted(fn.anchors)),
        params=tuple(params),
        param_types=param_types,
        return_type=_ann_text(node.returns),
        decorators=decorators,
        calls=tuple(calls),
        nested=nested,
        local_types=local_types,
        local_regs=local_regs,
        global_writes=tuple(global_writes),
        blocking_calls=tuple(blocking),
        fs_writes=tuple(fs_writes),
    )
    return sym, suppressed


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        text = _dotted(target)
        if text.rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _class_facts(
    ctx: ModuleContext,
    info: ClassInfo,
    module: str,
    fn_quals: Dict[str, str],
) -> ClassSym:
    """Summarise one class definition."""
    node = info.node
    qualname = f"{module}.{info.qualname}"
    bases = tuple(t for t in (_dotted(b) for b in node.bases) if t)
    methods: Dict[str, str] = {}
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            key = f"{info.qualname}.{child.name}"
            if key in fn_quals:
                methods[child.name] = fn_quals[key]
    attr_types: Dict[str, str] = {}
    fields: List[Tuple[str, str, int, str]] = []
    for child in node.body:
        if isinstance(child, ast.AnnAssign) and isinstance(child.target,
                                                           ast.Name):
            ann = _ann_text(child.annotation)
            if ann:
                attr_types[child.target.id] = ann
            fields.append((
                child.target.id,
                ann,
                child.lineno,
                ctx.source_line(child.lineno),
            ))
    init = next(
        (c for c in node.body
         if isinstance(c, ast.FunctionDef) and c.name == "__init__"),
        None,
    )
    if init is not None:
        init_anns = {
            a.arg: _ann_text(a.annotation)
            for a in init.args.args
            if a.annotation is not None
        }
        for sub in _body_walk(init):
            if isinstance(sub, ast.AnnAssign):
                target = sub.target
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    ann = _ann_text(sub.annotation)
                    if ann:
                        attr_types.setdefault(target.attr, ann)
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                value = sub.value
                if isinstance(value, ast.Call):
                    callee = _dotted(value.func)
                    if callee:
                        attr_types.setdefault(target.attr, callee)
                elif isinstance(value, ast.Name) and value.id in init_anns:
                    attr_types.setdefault(target.attr, init_anns[value.id])
    return ClassSym(
        qualname=qualname,
        module=module,
        name=node.name,
        line=node.lineno,
        path=ctx.path,
        source=ctx.source_line(node.lineno),
        anchors=tuple(sorted(info.anchors)),
        bases=bases,
        methods=methods,
        attr_types=attr_types,
        is_dataclass=_is_dataclass_def(node),
        fields=tuple(fields),
    )


def _registry_tables(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = {...: SomeClass}`` dispatch tables."""
    registries: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        value: Optional[ast.AST] = None
        name: Optional[str] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                name = node.target.id
                value = node.value
        if name is None or not isinstance(value, ast.Dict):
            continue
        members = tuple(t for t in (_dotted(v) for v in value.values) if t)
        if members and len(members) == len(value.values):
            registries[name] = members
    return registries


def extract_symbols(path: str, source: Optional[str] = None) -> ModuleSymbols:
    """Parse and summarise one file (the per-file half of the scan).

    Raises:
        LintError: when the file cannot be read or parsed.
    """
    ctx = build_context(path, source)
    module = module_name_for(path, ctx.rel)
    imports = _resolve_imports(ctx.tree, module)
    fn_quals = {fn.qualname: f"{module}.{fn.qualname}" for fn in ctx.functions}
    class_quals = {c.qualname for c in ctx.classes}

    # HOT discipline findings are computed for *every* function here;
    # the deep driver selects the transitively-hot subset.
    from repro.checks.rules.hot import HOT_RULES

    suppressed = 0
    functions: List[FunctionSym] = []
    for fn in ctx.functions:
        cls: Optional[str] = None
        if "." in fn.qualname:
            enclosing = fn.qualname.rsplit(".", 1)[0]
            if enclosing in class_quals:
                cls = f"{module}.{enclosing}"
        sym, fn_suppressed = _function_facts(
            ctx, fn, fn_quals[fn.qualname], module, cls, imports
        )
        suppressed += fn_suppressed
        hot: List[Finding] = []
        for rule_ in HOT_RULES:
            for finding in rule_.check_function(ctx, fn):
                if ctx.is_suppressed(finding.rule_id, finding.line):
                    suppressed += 1
                else:
                    hot.append(finding)
        sym.hot_findings = tuple(hot)
        functions.append(sym)

    classes = [
        _class_facts(ctx, info, module, fn_quals) for info in ctx.classes
    ]
    return ModuleSymbols(
        module=module,
        path=path,
        rel=ctx.rel,
        imports=imports,
        functions=functions,
        classes=classes,
        registries=_registry_tables(ctx.tree),
        suppressions={
            line: tuple(sorted(ids))
            for line, ids in ctx.suppressions.items()
        },
        markers=tuple(sorted(ctx.markers)),
        suppressed=suppressed,
    )


# ---------------------------------------------------------------------------
# the project index
# ---------------------------------------------------------------------------
class ProjectIndex:
    """Cross-module resolution and reachability over scanned symbols."""

    def __init__(self, modules: Sequence[ModuleSymbols]) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionSym] = {}
        self.classes: Dict[str, ClassSym] = {}
        for msym in modules:
            self.modules[msym.module] = msym
            for fn in msym.functions:
                self.functions[fn.qualname] = fn
            for cls in msym.classes:
                self.classes[cls.qualname] = cls
        self._subclasses: Dict[str, Set[str]] = {}
        for cls in self.classes.values():
            for base in cls.bases:
                resolved = self.resolve_class(cls.module, base)
                if resolved:
                    self._subclasses.setdefault(resolved, set()).add(
                        cls.qualname
                    )
        self._edges: Dict[str, Set[str]] = {}
        for fn in self.functions.values():
            self._edges[fn.qualname] = self._callees(fn)

    # -- name resolution ------------------------------------------------
    def _candidates(self, module: str, text: str) -> List[str]:
        """Possible project-qualified spellings of ``text`` in ``module``."""
        if not text:
            return []
        out: List[str] = []
        msym = self.modules.get(module)
        head, _, tail = text.partition(".")
        if msym and head in msym.imports:
            root = msym.imports[head]
            out.append(f"{root}.{tail}" if tail else root)
        out.append(f"{module}.{text}")
        out.append(text)
        return out

    def resolve_class(self, module: str, text: str) -> Optional[str]:
        """Resolve dotted ``text`` (seen in ``module``) to a class key."""
        for cand in self._candidates(module, text):
            if cand in self.classes:
                return cand
        # Unresolved import targets (fixtures referring to classes by
        # bare name defined elsewhere in the same scan) fall back to a
        # unique-by-name match.
        tail = text.rsplit(".", 1)[-1]
        matches = [q for q, c in self.classes.items() if c.name == tail]
        return matches[0] if len(matches) == 1 else None

    def resolve_function(self, module: str, text: str) -> Optional[str]:
        """Resolve dotted ``text`` to a function key (not methods)."""
        for cand in self._candidates(module, text):
            if cand in self.functions:
                return cand
        return None

    # -- class hierarchy ------------------------------------------------
    def mro(self, cls_qual: str) -> List[str]:
        """Ancestor linearisation (self first); unresolved bases skipped."""
        out: List[str] = []
        seen: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop(0)
            if cur in seen or cur not in self.classes:
                continue
            seen.add(cur)
            out.append(cur)
            csym = self.classes[cur]
            for base in csym.bases:
                resolved = self.resolve_class(csym.module, base)
                if resolved:
                    stack.append(resolved)
        return out

    def transitive_subclasses(self, cls_qual: str) -> Set[str]:
        out: Set[str] = set()
        stack = [cls_qual]
        while stack:
            cur = stack.pop()
            for sub in self._subclasses.get(cur, ()):
                if sub not in out:
                    out.add(sub)
                    stack.append(sub)
        return out

    def find_method(self, cls_qual: str, name: str) -> Optional[str]:
        """Statically-resolved method: first definition along the MRO."""
        for cand in self.mro(cls_qual):
            methods = self.classes[cand].methods
            if name in methods:
                return methods[name]
        return None

    def method_targets(self, cls_qual: str, name: str) -> Set[str]:
        """Possible runtime targets: static + subclass overrides."""
        out: Set[str] = set()
        static = self.find_method(cls_qual, name)
        if static:
            out.add(static)
        for sub in self.transitive_subclasses(cls_qual):
            methods = self.classes[sub].methods
            if name in methods:
                out.add(methods[name])
        return out

    def attr_class(self, cls_qual: str, attr: str) -> Optional[str]:
        """Class of ``self.<attr>``, merged over the MRO."""
        for cand in self.mro(cls_qual):
            csym = self.classes[cand]
            text = csym.attr_types.get(attr)
            if text:
                return self.resolve_class(csym.module, text)
        return None

    # -- call edges -----------------------------------------------------
    def _receiver_class(self, fn: FunctionSym, recv: str) -> Optional[str]:
        """Class of a dotted receiver expression inside ``fn``."""
        parts = recv.split(".")
        head = parts[0]
        cur: Optional[str]
        rest: List[str]
        if head in ("self", "cls"):
            cur = fn.cls
            rest = parts[1:]
        else:
            text = fn.local_types.get(head) or fn.param_types.get(head)
            if text:
                cur = self.resolve_class(fn.module, text)
            else:
                cur = None
            rest = parts[1:]
        if cur is None:
            return None
        for attr in rest:
            cur = self.attr_class(cur, attr)
            if cur is None:
                return None
        return cur

    def _class_targets(self, cls_qual: str) -> Set[str]:
        """Edges for instantiating a class: its reachable ``__init__``."""
        init = self.find_method(cls_qual, "__init__")
        return {init} if init else set()

    def _registry_members(self, fn: FunctionSym, table: str) -> Set[str]:
        msym = self.modules.get(fn.module)
        out: Set[str] = set()
        if not msym:
            return out
        for text in msym.registries.get(table, ()):
            resolved = self.resolve_class(fn.module, text)
            if resolved:
                out.add(resolved)
            else:
                target = self.resolve_function(fn.module, text)
                if target:
                    out.add(target)
        return out

    def _callees(self, fn: FunctionSym) -> Set[str]:
        out: Set[str] = set(q for q in fn.nested if q in self.functions)
        for site in fn.calls:
            if site.kind == "name":
                target = self.resolve_function(fn.module, site.func)
                if target:
                    out.add(target)
                    continue
                cls = None
                for cand in self._candidates(fn.module, site.func):
                    if cand in self.classes:
                        cls = cand
                        break
                if cls:
                    out.update(self._class_targets(cls))
            elif site.kind in ("self", "cls"):
                if fn.cls:
                    out.update(self.method_targets(fn.cls, site.func))
            elif site.kind == "super":
                if fn.cls:
                    for base in self.classes[fn.cls].bases:
                        resolved = self.resolve_class(
                            self.classes[fn.cls].module, base
                        )
                        if resolved:
                            target = self.find_method(resolved, site.func)
                            if target:
                                out.add(target)
                                break
            elif site.kind == "registry":
                for member in self._registry_members(fn, site.recv):
                    if member in self.classes:
                        out.update(self._class_targets(member))
                    else:
                        out.add(member)
            elif site.kind == "attr":
                recv_cls = self._receiver_class(fn, site.recv)
                if recv_cls:
                    out.update(self.method_targets(recv_cls, site.func))
                    continue
                # receiver held a registry lookup result: dispatch to
                # every member class's method.
                head = site.recv.split(".", 1)[0]
                table = fn.local_regs.get(head)
                if table:
                    for member in self._registry_members(fn, table):
                        if member in self.classes:
                            out.update(
                                self.method_targets(member, site.func)
                            )
                    continue
                target = self.resolve_function(
                    fn.module, f"{site.recv}.{site.func}"
                )
                if target:
                    out.add(target)
                else:
                    for cand in self._candidates(
                        fn.module, f"{site.recv}.{site.func}"
                    ):
                        if cand in self.classes:
                            out.update(self._class_targets(cand))
                            break
        return out

    def callees(self, qualname: str) -> Set[str]:
        return self._edges.get(qualname, set())

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure over call edges (cycle-safe BFS)."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.functions]
        seen.update(queue)
        while queue:
            cur = queue.pop()
            for nxt in self._edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    # -- analysis entry points ------------------------------------------
    def functions_with_anchor(self, anchor: str) -> List[FunctionSym]:
        return sorted(
            (f for f in self.functions.values() if anchor in f.anchors),
            key=lambda f: f.qualname,
        )

    def worker_roots(self) -> Set[str]:
        """Functions shipped to pool workers (WorkerPool worker fns).

        A worker root is any function reference passed as an argument
        to a ``WorkerPool(...)`` construction (or to a ``.map``-style
        call on a receiver of that class), resolved through imports
        and enclosing-class attribute types.
        """
        roots: Set[str] = set()
        for fn in self.functions.values():
            for site in fn.calls:
                is_pool = False
                if site.kind == "name" and site.func == "WorkerPool":
                    is_pool = True
                elif site.kind == "attr" and site.func == "WorkerPool":
                    is_pool = True
                elif site.kind == "name":
                    for cand in self._candidates(fn.module, site.func):
                        cls = self.classes.get(cand)
                        if cls is not None and cls.name == "WorkerPool":
                            is_pool = True
                            break
                if not is_pool:
                    continue
                for ref in site.arg_refs:
                    target = self.resolve_function(fn.module, ref)
                    if target:
                        roots.add(target)
                        continue
                    if "." in ref:
                        recv, _, name = ref.rpartition(".")
                        recv_cls = self._receiver_class(fn, recv)
                        if recv_cls:
                            roots.update(
                                self.method_targets(recv_cls, name)
                            )
        return roots

    def async_roots(self) -> Set[str]:
        return {f.qualname for f in self.functions.values() if f.is_async}

    def is_suppressed(self, module: str, rule_id: str, line: int) -> bool:
        """Suppression check for findings built at index time."""
        msym = self.modules.get(module)
        if msym is None:
            return False
        family = rule_id.rstrip("0123456789")
        for cand in (line, line - 1):
            allowed = msym.suppressions.get(cand)
            if allowed and (rule_id in allowed or family in allowed):
                return True
        return False


# ---------------------------------------------------------------------------
# graph rules (the deep families: CONC, FFC)
# ---------------------------------------------------------------------------
class GraphRule:
    """One whole-program invariant check.

    Mirrors :class:`repro.checks.engine.Rule` but runs once over the
    merged :class:`ProjectIndex` instead of per module, and yields
    ``(finding, suppressed)`` pairs so the driver can keep the
    suppression count accurate for findings minted at index time.
    """

    id: str = ""
    family: str = ""
    severity: str = Severity.ERROR
    description: str = ""

    def check(self, index: ProjectIndex) -> Iterable[Tuple[Finding, bool]]:
        raise NotImplementedError


#: rule id -> GraphRule instance (populated by the rules package).
GRAPH_REGISTRY: Dict[str, GraphRule] = {}


def graph_rule(cls):
    """Class decorator registering a :class:`GraphRule` subclass."""
    instance = cls()
    if not instance.id or not instance.family:
        raise LintError(f"graph rule {cls.__name__} must define id/family")
    if instance.id in GRAPH_REGISTRY:
        raise LintError(f"duplicate graph rule id {instance.id!r}")
    GRAPH_REGISTRY[instance.id] = instance
    return cls


def all_graph_rules() -> List[GraphRule]:
    """Registered graph rules in id order (imports the deep families)."""
    import repro.checks.rules.conc  # noqa: F401  (registration)
    import repro.checks.rules.ffc  # noqa: F401  (registration)

    return [GRAPH_REGISTRY[rid] for rid in sorted(GRAPH_REGISTRY)]
