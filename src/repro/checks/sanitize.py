"""Runtime kernel sanitizer: invariant assertions around the queues.

``REPRO_SANITIZE=1`` (or building a simulator from code that wraps
its queue in :class:`SanitizingQueue`) interposes a checking layer
between :class:`repro.sim.kernel.Simulator` and either scheduler
backend.  The wrapper is a pure observer of the queue protocol --
push/pop order, sequence numbering and therefore every simulation
result are byte-identical with the sanitizer on or off -- but it
raises :class:`repro.errors.SanitizerError`, with the offending
event's provenance, the moment an invariant breaks:

* **Monotonic dispatch** -- a popped event's time may never precede
  an already-dispatched cycle, and a push may never schedule below
  the last dispatched cycle.
* **No double-free** -- an event already returned to the free list
  cannot be recycled again (the refcount guard in production makes
  this near-impossible; the sanitizer makes it loud).
* **No post-free mutation** -- a freed event's identity fields must
  stay untouched until the pool legitimately re-arms it.
* **Occupancy consistency** -- the backend's O(1) accounting
  (``live_foreground``, ring counts, occupancy bits, cancelled
  shells) must agree with a full structural scan of its contents.

Cost model: per-operation checks are O(1); the structural audit runs
every :data:`AUDIT_INTERVAL` operations (and on ``clear``), so a
sanitized run is a few times slower -- a debugging build, not a
production mode.  Event pooling is disabled while sanitizing (the
wrapper's provenance table holds references, which the refcount guard
correctly treats as escapes); pooling is a pure allocation
optimization, so results are unaffected.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.errors import SanitizerError

if TYPE_CHECKING:  # avoid a cycle: sim.kernel imports this module
    from repro.sim.event import Event

#: Environment knob enabling the sanitizer ("1"/"on"/...).
SANITIZE_ENV = "REPRO_SANITIZE"

#: Wrapper operations between structural audits.
AUDIT_INTERVAL = 2048

#: Freed events tracked for double-free/mutation detection (FIFO cap,
#: mirroring the production pool cap).
_FREED_CAP = 4096


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` asks for a sanitized kernel."""
    value = os.environ.get(SANITIZE_ENV, "").strip().lower()  # repro: allow[DET003]
    return value not in ("", "0", "off", "no", "false")


def _describe(event: "Event") -> str:
    """Provenance string for error messages."""
    callback = getattr(event, "callback", None)
    name = getattr(callback, "__qualname__", repr(callback))
    return (
        f"Event(t={event.time}, prio={event.priority}, seq={event.seq}, "
        f"daemon={event.daemon}, callback={name})"
    )


class SanitizingQueue:
    """Checking proxy implementing the scheduler queue protocol.

    Args:
        inner: A :class:`CalendarQueue` or :class:`EventQueue` (any
            object with the queue protocol works; the structural
            audit recognises the two builtin backends and limits
            itself to protocol-level checks for anything else).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self._last_time: Optional[int] = None  # last dispatched cycle
        #: id(event) -> provenance of events currently queued.
        self._resident: Dict[int, str] = {}
        #: id(event) -> (event, identity snapshot) of freed events.
        self._freed: "OrderedDict[int, Tuple[Event, Tuple]]" = OrderedDict()
        self._ops = 0
        self._audits = 0
        self._violations = 0

    # ------------------------------------------------------------------
    # queue protocol
    # ------------------------------------------------------------------
    def push(
        self,
        time: int,
        priority: int,
        callback: Callable[[], Any],
        daemon: bool = False,
    ) -> "Event":
        if self._last_time is not None and time < self._last_time:
            self._violations += 1
            raise SanitizerError(
                f"push at t={time} rewinds behind the last dispatched "
                f"cycle {self._last_time} (priority={priority}, "
                f"callback={getattr(callback, '__qualname__', callback)!r})"
            )
        event = self.inner.push(time, priority, callback, daemon=daemon)
        # A pushed object must not be one the wrapper still considers
        # freed-and-dead: the inner pool cannot re-arm events while the
        # sanitizer holds their references, so resurrection here means
        # the free list leaked a live handle.
        if id(event) in self._freed:
            self._violations += 1
            raise SanitizerError(
                f"freed event resurrected by push: {_describe(event)}"
            )
        self._resident[id(event)] = _describe(event)
        self._tick()
        return event

    def pop(self) -> "Event":
        event = self.inner.pop()
        self._check_popped(event)
        self._tick()
        return event

    def pop_if_at(self, time: int) -> Optional["Event"]:
        event = self.inner.pop_if_at(time)
        if event is not None:
            if event.time != time:
                self._violations += 1
                raise SanitizerError(
                    f"pop_if_at({time}) returned {_describe(event)}"
                )
            self._check_popped(event)
        self._tick()
        return event

    def peek_time(self) -> Optional[int]:
        t = self.inner.peek_time()
        if (
            t is not None
            and self._last_time is not None
            and t < self._last_time
        ):
            self._violations += 1
            raise SanitizerError(
                f"peek_time()={t} rewinds behind the last dispatched "
                f"cycle {self._last_time}"
            )
        return t

    def recycle(self, event: "Event") -> None:
        key = id(event)
        if key in self._freed:
            self._violations += 1
            raise SanitizerError(
                f"double-free into the event pool: "
                f"{self._freed[key][1][4]} freed again as {_describe(event)}"
            )
        if key in self._resident:
            self._violations += 1
            raise SanitizerError(
                f"recycle of a still-queued event: {_describe(event)}"
            )
        # Track instead of delegating: the snapshot pins the object so
        # the id stays valid, which (deliberately) also disables inner
        # pooling -- see the module docstring's cost model.
        self._freed[key] = (event, self._snapshot(event))
        while len(self._freed) > _FREED_CAP:
            _, (old, snap) = self._freed.popitem(last=False)
            self._check_unmutated(old, snap)
        self._tick()

    # ------------------------------------------------------------------
    # the batched dispatch protocol
    # ------------------------------------------------------------------
    def pop_cycle_batch(self, time, out, owner=None, limit=None) -> int:
        """Batched twin of :meth:`pop_if_at` (one chunk per call).

        Every delivered event runs through the same per-event checks
        as a single pop (cancelled / freed / time-rewind / residency),
        but the wrapper ticks once per *batch*, matching the kernel's
        one-flush-per-cycle discipline.
        """
        before = len(out)
        fg = self.inner.pop_cycle_batch(time, out, owner, limit)
        for i in range(before, len(out)):
            event = out[i][-1]  # entries are queue tuples, event last
            if event.time != time:
                self._violations += 1
                raise SanitizerError(
                    f"pop_cycle_batch({time}) delivered {_describe(event)}"
                )
            self._check_popped(event)
        self._tick()
        return fg

    def requeue_batch(self, time, events, start) -> None:
        """Restore an interrupted batch's tail (see the backends).

        Requeued events become resident again; landing them back at
        the just-dispatched cycle is legal (``push`` rejects only
        times strictly below it).
        """
        self.inner.requeue_batch(time, events, start)
        for i in range(start, len(events)):
            event = events[i][-1]  # tail slots still hold entry tuples
            if not event.cancelled:
                self._resident[id(event)] = _describe(event)
        self._tick()

    def recycle_batch(self, events, count) -> None:
        """Batched twin of :meth:`recycle`: one call per cycle.

        Applies the same double-free / still-resident checks and the
        same track-instead-of-delegate discipline (the snapshots pin
        the objects, keeping ids valid and inner pooling disabled);
        cancelled-in-batch shells are skipped exactly as the backends'
        ``recycle_batch`` skips them.  Always clears the buffer --
        with the sanitizer on, the inner pool must never see it.
        """
        for i in range(count):
            event = events[i]
            if event.cancelled:
                continue
            key = id(event)
            if key in self._freed:
                self._violations += 1
                raise SanitizerError(
                    f"double-free into the event pool: "
                    f"{self._freed[key][1][4]} freed again as {_describe(event)}"
                )
            if key in self._resident:
                self._violations += 1
                raise SanitizerError(
                    f"recycle of a still-queued event: {_describe(event)}"
                )
            self._freed[key] = (event, self._snapshot(event))
        while len(self._freed) > _FREED_CAP:
            _, (old, snap) = self._freed.popitem(last=False)
            self._check_unmutated(old, snap)
        del events[:]
        self._tick()

    def clear(self) -> None:
        self.inner.clear()
        self._resident.clear()
        self.audit()

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def live_foreground(self) -> int:
        return self.inner.live_foreground

    @property
    def cancelled_pending(self) -> int:
        return self.inner.cancelled_pending

    def stats(self) -> dict:
        stats = self.inner.stats()
        stats.update(
            sanitizer_ops=self._ops,
            sanitizer_audits=self._audits,
            sanitizer_freed_tracked=len(self._freed),
        )
        return stats

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _check_popped(self, event: "Event") -> None:
        if event.cancelled:
            self._violations += 1
            raise SanitizerError(
                f"pop delivered a cancelled event: {_describe(event)}"
            )
        if id(event) in self._freed:
            self._violations += 1
            raise SanitizerError(
                f"pop delivered a freed event: {_describe(event)}"
            )
        if self._last_time is not None and event.time < self._last_time:
            self._violations += 1
            raise SanitizerError(
                f"dispatch-time rewind: {_describe(event)} popped after "
                f"cycle {self._last_time} was already dispatched"
            )
        self._last_time = event.time
        self._resident.pop(id(event), None)

    @staticmethod
    def _snapshot(event: "Event") -> Tuple:
        return (
            event.time,
            event.priority,
            event.seq,
            event.callback,
            _describe(event),
        )

    def _check_unmutated(self, event: "Event", snap: Tuple) -> None:
        current = (event.time, event.priority, event.seq, event.callback)
        if current != snap[:4]:
            self._violations += 1
            raise SanitizerError(
                f"post-free mutation of a pooled event: {snap[4]} "
                f"now reads {_describe(event)}"
            )

    def _tick(self) -> None:
        self._ops += 1
        if self._ops % AUDIT_INTERVAL == 0:
            self.audit()

    # ------------------------------------------------------------------
    # the structural audit
    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Full-scan consistency check of freed events and the backend.

        O(pool + pending); runs every :data:`AUDIT_INTERVAL`
        operations, on :meth:`clear`, and on demand from tests.
        """
        self._audits += 1
        # Imported here, not at module top: repro.sim.kernel imports
        # this module, so a top-level backend import would be a cycle.
        from repro.sim.calendar import CalendarQueue
        from repro.sim.event import EventQueue

        for event, snap in self._freed.values():
            self._check_unmutated(event, snap)
        inner = self.inner
        if isinstance(inner, EventQueue):
            actual = self._audit_heap(inner)
        elif isinstance(inner, CalendarQueue):
            actual = self._audit_calendar(inner)
        else:
            return
        # Prune provenance of events that left the queue without a pop
        # (cancelled shells dropped by purge/compaction paths), so the
        # table tracks only what is actually resident.
        self._resident = {
            key: desc for key, desc in self._resident.items() if key in actual
        }

    def _fail(self, message: str) -> None:
        self._violations += 1
        raise SanitizerError(message)

    def _audit_heap(self, q: Any) -> set:
        live = cancelled = 0
        actual = set()
        for entry in q._heap:
            event = entry[3]
            actual.add(id(event))
            if event.cancelled:
                cancelled += 1
            elif not event.daemon:
                live += 1
        if live != q.live_foreground:
            self._fail(
                f"heap live_foreground={q.live_foreground} but a full "
                f"scan finds {live} live foreground events"
            )
        if cancelled != q.cancelled_pending:
            self._fail(
                f"heap cancelled_pending={q.cancelled_pending} but a "
                f"full scan finds {cancelled} cancelled shells"
            )
        return actual

    def _audit_calendar(self, q: Any) -> set:
        from repro.sim.calendar import _BUCKETS

        ring_count = 0
        live = cancelled = 0
        actual = set()
        cursor = q._cursor
        limit = cursor + _BUCKETS
        for index, bucket in enumerate(q._ring):
            if bucket and not (q._occupied >> index) & 1:
                self._fail(
                    f"calendar occupancy bit {index} clear but its "
                    f"bucket holds {len(bucket)} entries"
                )
            for entry in bucket:
                event = entry[2]
                actual.add(id(event))
                ring_count += 1
                if event.cancelled:
                    cancelled += 1
                    continue  # shells may sit outside the window
                if not event.daemon:
                    live += 1
                if not cursor <= event.time < limit:
                    self._fail(
                        f"calendar ring bucket {index} holds "
                        f"{_describe(event)} outside the window "
                        f"[{cursor}, {limit})"
                    )
        if ring_count != q._ring_count:
            self._fail(
                f"calendar ring_count={q._ring_count} but the ring "
                f"holds {ring_count} entries"
            )
        for entry in q._overflow:
            event = entry[3]
            actual.add(id(event))
            if event.cancelled:
                cancelled += 1
                continue
            if not event.daemon:
                live += 1
            if event.time < limit:
                self._fail(
                    f"calendar overflow holds {_describe(event)} inside "
                    f"the ring window [{cursor}, {limit})"
                )
        if live != q.live_foreground:
            self._fail(
                f"calendar live_foreground={q.live_foreground} but a "
                f"full scan finds {live} live foreground events"
            )
        if cancelled != q.cancelled_pending:
            self._fail(
                f"calendar cancelled_pending={q.cancelled_pending} but "
                f"a full scan finds {cancelled} cancelled shells"
            )
        return actual
