"""The ``repro check deep`` driver: whole-program analyses.

Where ``repro check lint`` runs per-module rules, ``deep`` builds the
project symbol table and call graph (:mod:`repro.checks.graph`) and
runs the analyses that need them:

* **hot-path propagation** -- HOT discipline findings for every
  function transitively reachable from a ``# repro: hot`` anchor,
  not just the anchored bodies;
* **CONC** -- fork- and event-loop-boundary rules
  (:mod:`repro.checks.rules.conc`);
* **FFC** -- the fast-forward analytic contract on regulators
  (:mod:`repro.checks.rules.ffc`).

The per-file half of the scan (parse + symbol extraction + the
location-bound fact tables) is embarrassingly parallel and fans out
over the existing :class:`~repro.runner.pool.WorkerPool`; results
merge order-independently because ``map`` returns submission order.
Serial execution is the fallback wherever pools cannot run.

Baselining mirrors the linter but uses its own file
(``.repro-deep-baseline.json``): propagation can surface legitimate
debt in code that never opted into HOT discipline, and recording it
beats hiding it.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from repro.checks.baseline import load_baseline, write_baseline
from repro.checks.engine import REGISTRY, all_rules, iter_python_files
from repro.checks.findings import Finding, Severity, finding_sort_key
from repro.checks.graph import (
    GRAPH_REGISTRY,
    ModuleSymbols,
    ProjectIndex,
    all_graph_rules,
    extract_symbols,
)

__all__ = [
    "DEFAULT_DEEP_BASELINE",
    "DeepResult",
    "scan_file",
    "scan_paths",
    "run_deep",
    "format_deep_report",
    "run_deep_cli",
]

#: Default deep baseline, relative to the working directory.
DEFAULT_DEEP_BASELINE = ".repro-deep-baseline.json"

#: File count below which forking a pool costs more than it saves.
_PARALLEL_THRESHOLD = 16


def scan_file(path: str) -> ModuleSymbols:
    """Pool-worker entry point (module-level so it pickles)."""
    return extract_symbols(path)


def scan_paths(
    paths: Sequence[str], jobs: Optional[int] = None
) -> List[ModuleSymbols]:
    """Extract symbols for every python file under ``paths``.

    Args:
        paths: Files and/or directories.
        jobs: Worker processes; ``None``/``0`` picks automatically
            (serial below :data:`_PARALLEL_THRESHOLD` files), ``1``
            forces serial.  Pool failure always falls back to serial.
    """
    files = list(iter_python_files(paths))
    if jobs is None or jobs == 0:
        import os

        jobs = min(8, os.cpu_count() or 1)
        if len(files) < _PARALLEL_THRESHOLD:
            jobs = 1
    if jobs > 1 and len(files) > 1:
        from repro.runner.pool import PoolUnavailable, WorkerPool

        pool = WorkerPool(min(jobs, len(files)), scan_file)
        try:
            return pool.map(files)
        except PoolUnavailable:
            pass  # restricted environment: fall through to serial
        finally:
            pool.close()
    return [scan_file(path) for path in files]


@dataclass
class DeepResult:
    """Outcome of one deep run."""

    findings: List[Finding]  #: live findings (baseline applied)
    baselined: List[Finding]
    suppressed: int
    files: int
    analyses: Dict[str, Dict[str, object]] = field(default_factory=dict)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]


def _hot_analysis(
    index: ProjectIndex,
) -> Tuple[List[Finding], Dict[str, object]]:
    """Propagated HOT findings plus the ``hot`` summary block."""
    roots = [fn.qualname for fn in index.functions_with_anchor("hot")]
    reachable = index.reachable(roots)
    findings: List[Finding] = []
    for qual in sorted(reachable):
        findings.extend(index.functions[qual].hot_findings)
    summary: Dict[str, object] = {
        "roots": sorted(roots),
        "anchored": len(roots),
        "reachable": len(reachable),
        "propagated": len(reachable) - len(set(roots) & reachable),
    }
    return findings, summary


def run_deep(
    paths: Sequence[str],
    baseline: Optional[Dict[str, int]] = None,
    jobs: Optional[int] = None,
) -> DeepResult:
    """Scan, index, and run every whole-program analysis."""
    from repro.checks.rules import conc, ffc

    modules = scan_paths(paths, jobs)
    index = ProjectIndex(modules)
    suppressed = sum(m.suppressed for m in modules)

    raw: List[Finding] = []
    hot_findings, hot_summary = _hot_analysis(index)
    raw.extend(hot_findings)
    for rule_ in all_graph_rules():
        for finding, was_suppressed in rule_.check(index):
            if was_suppressed:
                suppressed += 1
            else:
                raw.append(finding)

    raw.sort(key=finding_sort_key)
    remaining = dict(baseline or {})
    live: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in raw:
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            grandfathered.append(finding)
        else:
            live.append(finding)

    return DeepResult(
        findings=live,
        baselined=grandfathered,
        suppressed=suppressed,
        files=len(modules),
        analyses={
            "hot": hot_summary,
            "conc": conc.analysis_summary(index),
            "ffc": ffc.analysis_summary(index),
        },
    )


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------
_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def _sarif_rules(result: DeepResult) -> List[Dict[str, object]]:
    """Rule metadata for every rule id appearing in the report."""
    ids = sorted({f.rule_id for f in result.findings + result.baselined})
    all_rules()  # ensure REGISTRY is populated
    catalogue: Dict[str, Tuple[str, str]] = {}
    for registry in (REGISTRY, GRAPH_REGISTRY):
        for rid, rule_ in registry.items():
            catalogue[rid] = (rule_.description, rule_.severity)
    out = []
    for rid in ids:
        description, severity = catalogue.get(rid, (rid, Severity.ERROR))
        out.append({
            "id": rid,
            "shortDescription": {"text": description},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL.get(severity, "error")
            },
        })
    return out


def _sarif_result(finding: Finding, baselined: bool) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": _SARIF_LEVEL.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "partialFingerprints": {"reproFingerprint": finding.fingerprint()},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    if baselined:
        entry["suppressions"] = [{"kind": "external"}]
    return entry


def format_deep_report(result: DeepResult, fmt: str = "human") -> str:
    """Render a :class:`DeepResult` as human text, JSON, or SARIF."""
    if fmt == "json":
        return json.dumps(
            {
                "files": result.files,
                "errors": len(result.errors),
                "warnings": len(result.warnings),
                "suppressed": result.suppressed,
                "baselined": len(result.baselined),
                "analyses": result.analyses,
                "findings": [f.to_dict() for f in result.findings],
            },
            indent=2,
        )
    if fmt == "sarif":
        return json.dumps(
            {
                "$schema": (
                    "https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                ),
                "version": "2.1.0",
                "runs": [{
                    "tool": {
                        "driver": {
                            "name": "repro-check-deep",
                            "informationUri": (
                                "https://example.invalid/repro/docs/"
                                "static-analysis"
                            ),
                            "rules": _sarif_rules(result),
                        },
                    },
                    "results": (
                        [_sarif_result(f, False) for f in result.findings]
                        + [_sarif_result(f, True) for f in result.baselined]
                    ),
                }],
            },
            indent=2,
        )
    lines: List[str] = [f.format_human() for f in result.findings]
    for finding in result.baselined:
        lines.append(f"{finding.format_human()} (baselined)")
    hot = result.analyses.get("hot", {})
    conc = result.analyses.get("conc", {})
    ffc = result.analyses.get("ffc", {})
    lines.append(
        f"hot set: {hot.get('reachable', 0)} reachable from "
        f"{hot.get('anchored', 0)} anchors "
        f"({hot.get('propagated', 0)} by propagation)"
    )
    lines.append(
        f"workers: {conc.get('worker_reachable', 0)} functions reachable "
        f"from {len(conc.get('worker_roots', []))} pool root(s); "
        f"async: {conc.get('async_reachable', 0)} from "
        f"{conc.get('async_roots', 0)} handler(s)"
    )
    lines.append(
        f"ff contract: {len(ffc.get('implemented', []))} implemented, "
        f"{len(ffc.get('opted_out', []))} opted out, "
        f"{len(ffc.get('missing', []))} missing"
    )
    lines.append(
        f"{result.files} files: {len(result.errors)} errors, "
        f"{len(result.warnings)} warnings, {result.suppressed} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    return "\n".join(lines)


def run_deep_cli(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    fmt: str = "human",
    update_baseline: bool = False,
    jobs: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> int:
    """Full CLI behaviour; returns the process exit code.

    Exit codes mirror ``repro check lint``: 0 clean (warnings
    allowed), 1 error findings, 2 engine failure (via
    :class:`repro.errors.LintError` translated by the CLI).
    """
    if stream is None:
        stream = sys.stdout  # resolved per call so capture hooks see it
    target = baseline_path or DEFAULT_DEEP_BASELINE
    baseline = load_baseline(target)
    result = run_deep(paths, baseline=baseline, jobs=jobs)
    if update_baseline:
        write_baseline(target, result.findings + result.baselined)
        print(
            f"baseline {target}: "
            f"{len(result.findings) + len(result.baselined)} findings "
            "recorded",
            file=stream,
        )
        return 0
    print(format_deep_report(result, fmt), file=stream)
    return 1 if result.errors else 0
