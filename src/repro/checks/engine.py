"""The rule framework: contexts, the registry, and the lint driver.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`)
and yields :class:`~repro.checks.findings.Finding` objects.  The
:class:`LintEngine` walks the input paths, builds a context per file,
runs every registered rule, and applies the two escape hatches:

* **Inline suppressions** -- ``# repro: allow[DET002]`` (or a whole
  family, ``allow[DET]``) on the offending line or the line directly
  above silences that occurrence.  Suppressions are deliberate and
  reviewable; prefer them over baselining for code that is correct
  for a reason the rule cannot see.
* **Baseline** -- a JSON file of fingerprint counts for grandfathered
  findings (see :mod:`repro.checks.baseline`); old findings are
  reported as baselined, new ones fail.

Module-level policy markers (``# repro: config-layer``) and function
anchors (``# repro: hot``, ``# repro: telemetry-bind``) are parsed
here once and exposed on the context so rules stay declarative.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.checks.findings import Finding, Severity, repro_relpath
from repro.errors import LintError

#: ``# repro: allow[DET002, HOT]`` -- inline suppression.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")

#: ``# repro: config-layer`` -- module-level policy marker.
_MARKER_RE = re.compile(r"#\s*repro:\s*([a-z][a-z-]*)\s*(?:$|[^[])")

#: Function anchors recognised on/above a ``def`` (or its decorators).
#: ``claim-protocol`` marks a function whose shared-state writes go
#: through an atomic claim (O_EXCL file, exclusive mkdir) -- see the
#: CONC rules in :mod:`repro.checks.rules.conc`.
FUNCTION_ANCHORS = ("hot", "telemetry-bind", "claim-protocol")

#: Class anchors recognised on/above a ``class`` statement.
#: ``ff-opt-out`` declares a regulator deliberately outside the
#: fast-forward analytic contract (see :mod:`repro.checks.rules.ffc`).
CLASS_ANCHORS = ("ff-opt-out",)


@dataclass
class FunctionInfo:
    """One function definition plus its recognised anchors."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str
    anchors: Set[str] = field(default_factory=set)


@dataclass
class ClassInfo:
    """One class definition plus its recognised anchors."""

    node: ast.ClassDef
    qualname: str
    anchors: Set[str] = field(default_factory=set)


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    path: str  #: path as given on the command line (reports print it)
    rel: Optional[str]  #: ``repro/...`` package-relative path, or None
    tree: ast.Module
    lines: List[str]  #: raw source lines (1-based access via line - 1)
    markers: Set[str]  #: module-level ``# repro: <marker>`` comments
    suppressions: Dict[int, Set[str]]  #: line -> allowed rule ids/families
    functions: List[FunctionInfo]
    classes: List[ClassInfo] = field(default_factory=list)

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def functions_with(self, anchor: str) -> List[FunctionInfo]:
        return [fn for fn in self.functions if anchor in fn.anchors]

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` (or the line above) allows ``rule_id``.

        A family name (``DET``) suppresses every rule of that family.
        """
        family = rule_id.rstrip("0123456789")
        for candidate in (line, line - 1):
            allowed = self.suppressions.get(candidate)
            if allowed and (rule_id in allowed or family in allowed):
                return True
        return False


class Rule:
    """One invariant check.

    Subclasses set the class attributes and implement :meth:`check`;
    instances are registered in :data:`REGISTRY` via :func:`rule`.
    """

    id: str = ""
    family: str = ""
    severity: str = Severity.ERROR
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            source=ctx.source_line(line),
        )


#: rule id -> Rule instance (populated by the ``rules`` package).
REGISTRY: Dict[str, Rule] = {}


def rule(cls):
    """Class decorator registering a :class:`Rule` subclass."""
    instance = cls()
    if not instance.id or not instance.family:
        raise LintError(f"rule {cls.__name__} must define id and family")
    if instance.id in REGISTRY:
        raise LintError(f"duplicate rule id {instance.id!r}")
    REGISTRY[instance.id] = instance
    return cls


def all_rules() -> List[Rule]:
    """Registered rules in id order (imports the builtin families)."""
    import repro.checks.rules  # noqa: F401  (registration side effect)

    return [REGISTRY[rid] for rid in sorted(REGISTRY)]


# ---------------------------------------------------------------------------
# context construction
# ---------------------------------------------------------------------------
def _comment_tables(
    source: str,
) -> Tuple[Set[str], Dict[int, Set[str]], Dict[int, Set[str]]]:
    """Extract (markers, suppressions, anchors-by-line) from comments.

    Uses the tokenizer rather than line regexes so a ``# repro:``
    inside a string literal never counts.
    """
    markers: Set[str] = set()
    suppressions: Dict[int, Set[str]] = {}
    anchors: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string
            line = tok.start[0]
            allow = _ALLOW_RE.search(text)
            if allow:
                ids = {part.strip() for part in allow.group(1).split(",")}
                suppressions.setdefault(line, set()).update(p for p in ids if p)
                continue
            marker = _MARKER_RE.search(text)
            if marker:
                name = marker.group(1)
                if name in FUNCTION_ANCHORS or name in CLASS_ANCHORS:
                    anchors.setdefault(line, set()).add(name)
                else:
                    markers.add(name)
    except tokenize.TokenError:
        pass  # partial tables are fine; ast.parse reports real errors
    return markers, suppressions, anchors


def _collect_functions(
    tree: ast.Module, anchors_by_line: Dict[int, Set[str]]
) -> List[FunctionInfo]:
    """All function defs with their qualnames and comment anchors.

    An anchor comment binds to a function when it sits on the ``def``
    line, on any decorator line, or on the line directly above the
    first decorator/def line.
    """
    functions: List[FunctionInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                start = min(
                    [child.lineno]
                    + [d.lineno for d in child.decorator_list]
                )
                bound: Set[str] = set()
                for line in range(start - 1, child.lineno + 1):
                    bound.update(anchors_by_line.get(line, ()))
                for deco in child.decorator_list:
                    name = deco
                    if isinstance(name, ast.Call):
                        name = name.func
                    if isinstance(name, ast.Attribute):
                        name = name.attr
                    elif isinstance(name, ast.Name):
                        name = name.id
                    if name == "hot_path":
                        bound.add("hot")
                functions.append(FunctionInfo(child, qual, bound))
                visit(child, f"{qual}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return functions


def _collect_classes(
    tree: ast.Module, anchors_by_line: Dict[int, Set[str]]
) -> List[ClassInfo]:
    """All class defs with their qualnames and comment anchors.

    Anchor binding mirrors :func:`_collect_functions`: the comment may
    sit on the ``class`` line, on a decorator line, or on the line
    directly above the first decorator/class line.
    """
    classes: List[ClassInfo] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                start = min(
                    [child.lineno]
                    + [d.lineno for d in child.decorator_list]
                )
                bound: Set[str] = set()
                for line in range(start - 1, child.lineno + 1):
                    bound.update(
                        a for a in anchors_by_line.get(line, ())
                        if a in CLASS_ANCHORS
                    )
                classes.append(ClassInfo(child, qual, bound))
                visit(child, f"{qual}.")
            elif not isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                visit(child, prefix)
            else:
                visit(child, f"{prefix}{child.name}.")

    visit(tree, "")
    return classes


def build_context(path: str, source: Optional[str] = None) -> ModuleContext:
    """Parse one file into a :class:`ModuleContext`.

    Raises:
        LintError: when the file cannot be read or parsed.
    """
    if source is None:
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    markers, suppressions, anchors = _comment_tables(source)
    return ModuleContext(
        path=path,
        rel=repro_relpath(path),
        tree=tree,
        lines=source.splitlines(),
        markers=markers,
        suppressions=suppressions,
        functions=_collect_functions(tree, anchors),
        classes=_collect_classes(tree, anchors),
    )


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        elif path.endswith(".py"):
            yield path
        else:
            raise LintError(f"not a python file or directory: {path}")


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding]  #: live findings (suppressed/baselined removed)
    baselined: List[Finding]  #: matched a baseline entry
    suppressed: int  #: count silenced by inline ``allow`` comments
    files: int  #: files scanned

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]


def _lint_file_worker(path: str) -> Tuple[List[Finding], int]:
    """Pool-worker entry: lint one file with the default rule set.

    Module-level so it pickles by qualified name; each worker process
    re-imports the rule packages on first use.  Returns the file's
    live findings plus its inline-suppression count -- merging is
    order-independent because the parent sorts the union.
    """
    ctx = build_context(path)
    findings: List[Finding] = []
    suppressed = 0
    for rule_ in all_rules():
        for finding in rule_.check(ctx):
            if ctx.is_suppressed(finding.rule_id, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


class LintEngine:
    """Run a rule set over files, applying suppressions and a baseline.

    Args:
        rules: Rule instances; defaults to every registered rule.
        baseline: Fingerprint -> grandfathered count (see
            :mod:`repro.checks.baseline`); matching findings are
            reported separately and do not fail the run.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        baseline: Optional[Dict[str, int]] = None,
    ) -> None:
        self._default_rules = rules is None
        self.rules = list(rules) if rules is not None else all_rules()
        self.baseline = dict(baseline or {})

    def _run_parallel(
        self, files: Sequence[str], jobs: int
    ) -> Optional[Tuple[List[Finding], int]]:
        """Fan the per-file scans over a WorkerPool; ``None`` = fall back.

        Only the default rule set can cross the process boundary (the
        workers re-import it); a custom rule list stays serial.
        """
        if not self._default_rules or jobs < 2 or len(files) < 2:
            return None
        from repro.runner.pool import PoolUnavailable, WorkerPool

        pool = WorkerPool(min(jobs, len(files)), _lint_file_worker)
        try:
            per_file = pool.map(list(files))
        except PoolUnavailable:
            return None
        finally:
            pool.close()
        raw: List[Finding] = []
        suppressed = 0
        for findings, count in per_file:
            raw.extend(findings)
            suppressed += count
        return raw, suppressed

    def run(
        self, paths: Sequence[str], jobs: Optional[int] = None
    ) -> LintResult:
        files_list = list(iter_python_files(paths))
        parallel = self._run_parallel(files_list, jobs or 1)
        if parallel is not None:
            raw, suppressed = parallel
            files = len(files_list)
        else:
            raw = []
            suppressed = 0
            files = 0
            for path in files_list:
                ctx = build_context(path)
                files += 1
                for rule_ in self.rules:
                    for finding in rule_.check(ctx):
                        if ctx.is_suppressed(finding.rule_id, finding.line):
                            suppressed += 1
                        else:
                            raw.append(finding)
        raw.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        remaining = dict(self.baseline)
        live: List[Finding] = []
        baselined: List[Finding] = []
        for finding in raw:
            fp = finding.fingerprint()
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
                baselined.append(finding)
            else:
                live.append(finding)
        return LintResult(
            findings=live,
            baselined=baselined,
            suppressed=suppressed,
            files=files,
        )
