"""Builtin rule families.

Importing this package registers every rule in
:data:`repro.checks.engine.REGISTRY`:

* ``DET`` -- determinism: wall-clock reads, the global ``random``
  module, environment reads outside the config layer, iteration over
  sets where order reaches results (:mod:`.det`).
* ``HOT`` -- hot-path discipline inside ``# repro: hot`` functions:
  no comprehensions, closures, ``**`` fan-out, or repeated attribute
  chains in loops (:mod:`.hot`).
* ``TEL`` -- telemetry discipline: handles bound at construction,
  literal label sets (:mod:`.tel`).
* ``ERR`` -- error hygiene: raise :mod:`repro.errors` types, not
  blanket builtins (:mod:`.err`).
* ``API`` -- surface hygiene: no wildcard imports, no mutable
  default arguments (:mod:`.api`).
"""

from repro.checks.rules import api, det, err, hot, tel

__all__ = ["api", "det", "err", "hot", "tel"]
