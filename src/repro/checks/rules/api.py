"""API: surface hygiene.

Small, generic rules that keep the import graph and call signatures
honest: wildcard imports defeat both readers and the other rule
families (call-site provenance becomes unknowable), and mutable
default arguments are shared across calls -- a classic source of
state bleeding between experiments that is indistinguishable from
nondeterminism when it bites.
"""

from __future__ import annotations

import ast
from itertools import chain
from typing import Iterable

from repro.checks.engine import ModuleContext, Rule, rule
from repro.checks.findings import Finding

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CALLS = ("list", "dict", "set", "bytearray", "deque", "defaultdict",
                  "Counter", "OrderedDict")


@rule
class WildcardImportRule(Rule):
    """``from x import *`` makes provenance unknowable."""

    id = "API001"
    family = "API"
    description = "wildcard import"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == "*" for alias in node.names
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"wildcard import from {node.module!r}; import names "
                    "explicitly",
                )


@rule
class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls."""

    id = "API002"
    family = "API"
    description = "mutable default argument"

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS and not node.args \
                and not node.keywords
        return False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for fn in ctx.functions:
            args = fn.node.args
            for default in chain(args.defaults, args.kw_defaults):
                if default is not None and self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in {fn.qualname}(); default to "
                        "None and build the container inside",
                    )
